//! `miso-chaos` — deterministic fault injection for the multistore engine.
//!
//! The engine's riskiest paths — store execution, mid-query working-set
//! transfers, and the tuner's view reorganizations — are guarded by named
//! **fail points**. A [`FaultPlan`] decides, per hit, whether a point
//! proceeds normally, returns a transient error, suffers a latency spike,
//! or "crashes the process" (simulated: the caller's recovery path runs as
//! if the process had died and restarted).
//!
//! Design mirrors `miso-obs`: **zero external dependencies**, global state
//! behind a `OnceLock`, and **off by default** — every disabled-path
//! [`hit`] costs one relaxed atomic load. Injection decisions draw from the
//! workspace's own [`DetRng`], so a seeded plan replays bit-identically.
//!
//! # Fail points
//!
//! | point           | location                              | meaningful kinds             |
//! |-----------------|---------------------------------------|------------------------------|
//! | `hv.execute`    | HV store execution entry              | error, delay, stall, hog     |
//! | `dw.execute`    | DW store execution entry              | error, delay, stall, hog     |
//! | `hv.view_read`  | each HV view consulted by a rewrite   | corrupt                      |
//! | `dw.view_read`  | each DW view consulted by a rewrite   | corrupt                      |
//! | `transfer.ship` | each working-set cut shipment (HV→DW) | error, delay, stall, corrupt |
//! | `etl.run`       | each DW-ONLY ETL extraction           | error, delay                 |
//! | `reorg.step`    | before every reorg journal step       | crash, corrupt               |
//!
//! `reorg.step` is hit once per journal step (stage / commit / apply /
//! enforce), so an `OnHit(n)` trigger lands a crash before or after the
//! commit record at will. A `corrupt` action at `reorg.step` silently
//! flips rows in the staging copy the step just wrote (a torn transfer);
//! at the `*.view_read` points it flips rows in the resident copy being
//! read — detection relies entirely on the integrity layer's checksums.
//!
//! # Enabling
//!
//! Programmatically via [`install`], or from the environment:
//!
//! ```text
//! MISO_CHAOS="seed=42;dw.execute=error@p0.3;transfer.ship=error@p0.25;reorg.step=crash@n4"
//! ```
//!
//! Spec grammar (entries separated by `;`):
//!
//! * `seed=<u64>` — RNG seed (default 0);
//! * `<point>=<kind>[@<trigger>]` where
//!   * kind: `error` | `delay:<factor>` | `crash` | `corrupt` | `stall` |
//!     `hog[:<factor>]`;
//!   * trigger: `p<float>` (probability per hit), `n<int>` (exactly the
//!     n-th hit, 1-based), `u<int>` (every hit up to and including the
//!     n-th), or omitted (every hit).
//!
//! `stall` is a delay so severe (×[`STALL_FACTOR`]) that the operation
//! holds the store past any sane query deadline — the guard layer's
//! deadline checks are what turns it into a contained failure. `hog`
//! inflates the query's *charged bytes* by the factor (default 8×) at the
//! stores' guarded entry points, driving the query into its memory budget;
//! without an active guard it is a no-op.

use miso_common::DetRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// What a fail point should do on one particular hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// No fault: run the real code.
    Proceed,
    /// Fail with a transient error (the retry layer may re-attempt).
    Fail,
    /// Latency spike: multiply the operation's simulated cost by the factor.
    Delay(f64),
    /// Simulated process crash: volatile state is lost and recovery runs.
    Crash,
    /// Silent data corruption: the caller flips rows in the affected copy
    /// and continues as if nothing happened. Only checksums can tell.
    Corrupt,
    /// Pathological stall: multiply the operation's simulated cost by
    /// [`STALL_FACTOR`] — guaranteed to blow any reasonable deadline, so
    /// only the guard layer can contain it.
    Stall,
    /// Memory hog: inflate the query's charged bytes by this factor at the
    /// guarded store entry points.
    Hog(f64),
}

/// The cost multiplier a [`Action::Stall`] applies: large enough that one
/// stalled store call exceeds any deadline a test or bench would configure.
pub const STALL_FACTOR: f64 = 10_000.0;

/// The kind of fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Transient error.
    Error,
    /// Latency spike with the given cost multiplier (> 1.0 slows down).
    Delay(f64),
    /// Simulated crash.
    Crash,
    /// Silent row corruption.
    Corrupt,
    /// Pathological stall (cost × [`STALL_FACTOR`]).
    Stall,
    /// Memory hog with the given charged-bytes multiplier (> 1.0 inflates).
    Hog(f64),
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every hit.
    Always,
    /// Each hit independently with this probability.
    Prob(f64),
    /// Exactly the n-th hit of the point (1-based), once.
    OnHit(u64),
    /// Every hit up to and including the n-th (an outage that ends).
    UpTo(u64),
}

/// One injection rule: at `point`, inject `kind` when `trigger` fires.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Fail-point name (exact match).
    pub point: String,
    /// Fault to inject.
    pub kind: FaultKind,
    /// Firing condition.
    pub trigger: Trigger,
}

impl FaultRule {
    /// Convenience constructor.
    pub fn new(point: impl Into<String>, kind: FaultKind, trigger: Trigger) -> Self {
        FaultRule {
            point: point.into(),
            kind,
            trigger,
        }
    }
}

/// A complete, deterministic fault plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the injection RNG (probabilistic triggers).
    pub seed: u64,
    /// Rules, consulted in order; the first matching rule that fires wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

struct Inner {
    plan: FaultPlan,
    rng: DetRng,
    hits: HashMap<&'static str, u64>,
}

struct ChaosState {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

fn state() -> &'static ChaosState {
    static STATE: OnceLock<ChaosState> = OnceLock::new();
    STATE.get_or_init(|| ChaosState {
        enabled: AtomicBool::new(false),
        inner: Mutex::new(Inner {
            plan: FaultPlan::default(),
            rng: DetRng::new(0),
            hits: HashMap::new(),
        }),
    })
}

/// Whether fault injection is active. This is the disabled-path cost of
/// every fail point: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Installs a fault plan and switches injection on. Hit counters reset.
pub fn install(plan: FaultPlan) {
    let s = state();
    {
        let mut inner = s.inner.lock().expect("chaos lock");
        inner.rng = DetRng::new(plan.seed);
        inner.hits.clear();
        inner.plan = plan;
    }
    s.enabled.store(true, Ordering::Relaxed);
}

/// Switches fault injection off (fail points become free again).
pub fn disable() {
    state().enabled.store(false, Ordering::Relaxed);
}

/// Temporarily switches injection off, returning whether it was on.
///
/// Unlike [`install`]/[`disable`], the plan, RNG stream, and hit counters
/// are all preserved, so a `suspend`/[`resume`] bracket is invisible to the
/// fault sequence around it. The serving layer uses this to compute
/// fault-free oracle/base runs in the middle of a chaos storm.
pub fn suspend() -> bool {
    state().enabled.swap(false, Ordering::Relaxed)
}

/// Undoes [`suspend`]: re-enables injection iff `was_on` (the value
/// `suspend` returned), leaving RNG and hit counters untouched.
pub fn resume(was_on: bool) {
    if was_on {
        state().enabled.store(true, Ordering::Relaxed);
    }
}

/// Reads `MISO_CHAOS` and installs the parsed plan. Returns whether
/// injection ended up enabled; a malformed spec is reported on stderr and
/// leaves injection off.
pub fn init_from_env() -> bool {
    let Some(spec) = std::env::var_os("MISO_CHAOS") else {
        return false;
    };
    let spec = spec.to_string_lossy();
    if spec.is_empty() || spec == "0" {
        return false;
    }
    match parse_spec(&spec) {
        Ok(plan) => {
            install(plan);
            true
        }
        Err(e) => {
            eprintln!("miso-chaos: ignoring malformed MISO_CHAOS: {e}");
            false
        }
    }
}

/// Consults the plan at a named fail point. Returns [`Action::Proceed`]
/// (after one relaxed atomic load) whenever injection is disabled.
#[inline]
pub fn hit(point: &'static str) -> Action {
    if !enabled() {
        return Action::Proceed;
    }
    hit_slow(point)
}

#[cold]
fn hit_slow(point: &'static str) -> Action {
    let mut inner = state().inner.lock().expect("chaos lock");
    let count = inner.hits.entry(point).or_insert(0);
    *count += 1;
    let count = *count;
    let matching: Vec<(FaultKind, Trigger)> = inner
        .plan
        .rules
        .iter()
        .filter(|r| r.point == point)
        .map(|r| (r.kind, r.trigger))
        .collect();
    let mut fired = None;
    for (kind, trigger) in matching {
        let fires = match trigger {
            Trigger::Always => true,
            Trigger::Prob(p) => inner.rng.chance(p),
            Trigger::OnHit(n) => count == n,
            Trigger::UpTo(n) => count <= n,
        };
        if fires {
            fired = Some(kind);
            break;
        }
    }
    drop(inner);
    let Some(kind) = fired else {
        return Action::Proceed;
    };
    match kind {
        FaultKind::Error => {
            miso_obs::count("chaos.errors_injected", 1);
            Action::Fail
        }
        FaultKind::Delay(f) => {
            miso_obs::count("chaos.delays_injected", 1);
            Action::Delay(f)
        }
        FaultKind::Crash => {
            miso_obs::count("chaos.crashes_injected", 1);
            Action::Crash
        }
        FaultKind::Corrupt => {
            miso_obs::count("chaos.corruptions_injected", 1);
            Action::Corrupt
        }
        FaultKind::Stall => {
            miso_obs::count("chaos.stalls_injected", 1);
            Action::Stall
        }
        FaultKind::Hog(f) => {
            miso_obs::count("chaos.hogs_injected", 1);
            Action::Hog(f)
        }
    }
}

/// How many times `point` has been hit since the plan was installed.
pub fn hit_count(point: &str) -> u64 {
    state()
        .inner
        .lock()
        .expect("chaos lock")
        .hits
        .get(point)
        .copied()
        .unwrap_or(0)
}

// ---- MISO_CHAOS spec parsing --------------------------------------------

/// Parses a `MISO_CHAOS` specification (see crate docs for the grammar).
pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once('=')
            .ok_or_else(|| format!("entry `{entry}` is not `key=value`"))?;
        let (key, value) = (key.trim(), value.trim());
        if key == "seed" {
            plan.seed = value
                .parse()
                .map_err(|_| format!("seed `{value}` is not a u64"))?;
            continue;
        }
        let (kind_part, trigger_part) = match value.split_once('@') {
            Some((k, t)) => (k, Some(t)),
            None => (value, None),
        };
        let kind = parse_kind(kind_part)?;
        let trigger = match trigger_part {
            None => Trigger::Always,
            Some(t) => parse_trigger(t)?,
        };
        plan.rules.push(FaultRule::new(key, kind, trigger));
    }
    Ok(plan)
}

fn parse_kind(s: &str) -> Result<FaultKind, String> {
    match s.split_once(':') {
        None => match s {
            "error" => Ok(FaultKind::Error),
            "crash" => Ok(FaultKind::Crash),
            "delay" => Ok(FaultKind::Delay(2.0)),
            "corrupt" => Ok(FaultKind::Corrupt),
            "stall" => Ok(FaultKind::Stall),
            "hog" => Ok(FaultKind::Hog(8.0)),
            other => Err(format!("unknown fault kind `{other}`")),
        },
        Some(("delay", f)) => {
            let factor: f64 = f
                .parse()
                .map_err(|_| format!("delay factor `{f}` is not a float"))?;
            if !factor.is_finite() || factor < 0.0 {
                return Err(format!("delay factor `{f}` must be finite and >= 0"));
            }
            Ok(FaultKind::Delay(factor))
        }
        Some(("hog", f)) => {
            let factor: f64 = f
                .parse()
                .map_err(|_| format!("hog factor `{f}` is not a float"))?;
            if !factor.is_finite() || factor < 1.0 {
                return Err(format!("hog factor `{f}` must be finite and >= 1"));
            }
            Ok(FaultKind::Hog(factor))
        }
        Some((other, _)) => Err(format!("unknown fault kind `{other}`")),
    }
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    let (tag, rest) = s.split_at(1.min(s.len()));
    match tag {
        "p" => {
            let p: f64 = rest
                .parse()
                .map_err(|_| format!("probability `{rest}` is not a float"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability `{rest}` must be in [0, 1]"));
            }
            Ok(Trigger::Prob(p))
        }
        "n" => rest
            .parse()
            .map(Trigger::OnHit)
            .map_err(|_| format!("hit index `{rest}` is not a u64")),
        "u" => rest
            .parse()
            .map(Trigger::UpTo)
            .map_err(|_| format!("hit bound `{rest}` is not a u64")),
        _ => Err(format!("unknown trigger `{s}` (expected p<f>, n<u>, u<u>)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Chaos state is process-global; serialize tests touching it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_is_proceed() {
        let _g = TEST_LOCK.lock().unwrap();
        disable();
        assert_eq!(hit("hv.execute"), Action::Proceed);
        assert!(!enabled());
    }

    #[test]
    fn on_hit_fires_exactly_once() {
        let _g = TEST_LOCK.lock().unwrap();
        install(FaultPlan::seeded(1).with_rule(FaultRule::new(
            "reorg.step",
            FaultKind::Crash,
            Trigger::OnHit(3),
        )));
        assert_eq!(hit("reorg.step"), Action::Proceed);
        assert_eq!(hit("reorg.step"), Action::Proceed);
        assert_eq!(hit("reorg.step"), Action::Crash);
        assert_eq!(hit("reorg.step"), Action::Proceed);
        assert_eq!(hit_count("reorg.step"), 4);
        disable();
    }

    #[test]
    fn up_to_models_a_finite_outage() {
        let _g = TEST_LOCK.lock().unwrap();
        install(FaultPlan::seeded(1).with_rule(FaultRule::new(
            "dw.execute",
            FaultKind::Error,
            Trigger::UpTo(2),
        )));
        assert_eq!(hit("dw.execute"), Action::Fail);
        assert_eq!(hit("dw.execute"), Action::Fail);
        assert_eq!(hit("dw.execute"), Action::Proceed);
        disable();
    }

    #[test]
    fn probability_is_seeded_and_deterministic() {
        let _g = TEST_LOCK.lock().unwrap();
        let run = |seed: u64| -> Vec<Action> {
            install(FaultPlan::seeded(seed).with_rule(FaultRule::new(
                "transfer.ship",
                FaultKind::Error,
                Trigger::Prob(0.5),
            )));
            (0..32).map(|_| hit("transfer.ship")).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed replays identically");
        assert_ne!(a, c, "different seeds diverge");
        assert!(a.contains(&Action::Fail) && a.contains(&Action::Proceed));
        disable();
    }

    #[test]
    fn unmatched_points_proceed() {
        let _g = TEST_LOCK.lock().unwrap();
        install(FaultPlan::seeded(1).with_rule(FaultRule::new(
            "dw.execute",
            FaultKind::Error,
            Trigger::Always,
        )));
        assert_eq!(hit("hv.execute"), Action::Proceed);
        assert_eq!(hit("dw.execute"), Action::Fail);
        disable();
    }

    #[test]
    fn spec_round_trip() {
        let plan = parse_spec(
            "seed=42;dw.execute=error@p0.3;hv.execute=delay:1.5@p0.1;reorg.step=crash@n4",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].kind, FaultKind::Error);
        assert_eq!(plan.rules[0].trigger, Trigger::Prob(0.3));
        assert_eq!(plan.rules[1].kind, FaultKind::Delay(1.5));
        assert_eq!(plan.rules[2].kind, FaultKind::Crash);
        assert_eq!(plan.rules[2].trigger, Trigger::OnHit(4));
    }

    #[test]
    fn spec_accepts_outage_and_bare_kinds() {
        let plan = parse_spec("dw.execute=error@u5; transfer.ship=delay ;etl.run=error").unwrap();
        assert_eq!(plan.rules[0].trigger, Trigger::UpTo(5));
        assert_eq!(plan.rules[1].kind, FaultKind::Delay(2.0));
        assert_eq!(plan.rules[2].trigger, Trigger::Always);
    }

    #[test]
    fn corrupt_kind_parses_and_fires() {
        let _g = TEST_LOCK.lock().unwrap();
        let plan = parse_spec("dw.view_read=corrupt@p0.5;transfer.ship=corrupt").unwrap();
        assert_eq!(plan.rules[0].kind, FaultKind::Corrupt);
        assert_eq!(plan.rules[0].trigger, Trigger::Prob(0.5));
        assert_eq!(plan.rules[1].trigger, Trigger::Always);

        install(FaultPlan::seeded(3).with_rule(FaultRule::new(
            "dw.view_read",
            FaultKind::Corrupt,
            Trigger::OnHit(2),
        )));
        assert_eq!(hit("dw.view_read"), Action::Proceed);
        assert_eq!(hit("dw.view_read"), Action::Corrupt);
        assert_eq!(hit("dw.view_read"), Action::Proceed);
        disable();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(parse_spec("noequals").is_err());
        assert!(parse_spec("seed=abc").is_err());
        assert!(parse_spec("dw.execute=explode").is_err());
        assert!(parse_spec("dw.execute=error@p1.5").is_err());
        assert!(parse_spec("dw.execute=error@x3").is_err());
        assert!(parse_spec("dw.execute=delay:NaN").is_err());
        assert!(parse_spec("dw.execute=hog:0.5").is_err());
        assert!(parse_spec("dw.execute=hog:NaN").is_err());
        assert!(parse_spec("dw.execute=stall:3").is_err());
    }

    #[test]
    fn stall_and_hog_kinds_parse_and_fire() {
        let _g = TEST_LOCK.lock().unwrap();
        let plan = parse_spec("hv.execute=stall@p0.5;dw.execute=hog;transfer.ship=hog:16").unwrap();
        assert_eq!(plan.rules[0].kind, FaultKind::Stall);
        assert_eq!(plan.rules[0].trigger, Trigger::Prob(0.5));
        assert_eq!(plan.rules[1].kind, FaultKind::Hog(8.0));
        assert_eq!(plan.rules[2].kind, FaultKind::Hog(16.0));

        install(
            FaultPlan::seeded(5)
                .with_rule(FaultRule::new(
                    "hv.execute",
                    FaultKind::Stall,
                    Trigger::OnHit(2),
                ))
                .with_rule(FaultRule::new(
                    "dw.execute",
                    FaultKind::Hog(4.0),
                    Trigger::Always,
                )),
        );
        assert_eq!(hit("hv.execute"), Action::Proceed);
        assert_eq!(hit("hv.execute"), Action::Stall);
        assert_eq!(hit("hv.execute"), Action::Proceed);
        assert_eq!(hit("dw.execute"), Action::Hog(4.0));
        disable();
    }
}
