//! Global verify-on-read toggle for the data-integrity layer.
//!
//! Checksums are always *computed* at materialization and transfer time
//! (that cost is part of writing data). Re-*verifying* them on every view
//! read is an opt-in defense: off by default, one relaxed atomic load on
//! the disabled path — the same discipline `miso-chaos` uses for its fail
//! points, so fault-free benchmark output stays byte-identical.
//!
//! Enable programmatically via [`set_verify_on_read`] or from the
//! environment with `MISO_INTEGRITY=1` (any value other than empty or `0`).

use std::sync::atomic::{AtomicBool, Ordering};

static VERIFY_ON_READ: AtomicBool = AtomicBool::new(false);

/// Whether view reads re-verify content checksums. One relaxed atomic load.
#[inline]
pub fn verify_on_read() -> bool {
    VERIFY_ON_READ.load(Ordering::Relaxed)
}

/// Switches read-time checksum verification on or off.
pub fn set_verify_on_read(on: bool) {
    VERIFY_ON_READ.store(on, Ordering::Relaxed);
}

/// Reads `MISO_INTEGRITY` and enables verification unless it is unset,
/// empty, or `0`. Returns the resulting state.
pub fn init_from_env() -> bool {
    if let Some(v) = std::env::var_os("MISO_INTEGRITY") {
        let v = v.to_string_lossy();
        if !v.is_empty() && v != "0" {
            set_verify_on_read(true);
        }
    }
    verify_on_read()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let before = verify_on_read();
        set_verify_on_read(true);
        assert!(verify_on_read());
        set_verify_on_read(false);
        assert!(!verify_on_read());
        set_verify_on_read(before);
    }
}
