//! Shared primitives for the MISO multistore reproduction.
//!
//! This crate deliberately contains no query-processing logic. It provides the
//! vocabulary types every other crate speaks:
//!
//! * [`time`] — the **simulated clock**. The paper measures time-to-insight
//!   (TTI) on real clusters; we charge calibrated simulated seconds instead so
//!   experiments are deterministic and laptop-scale while keeping paper-scale
//!   magnitudes.
//! * [`bytesize`] — byte quantities (view sizes, budgets, working sets).
//! * [`ids`] — strongly-typed identifiers.
//! * [`error`] — the crate-spanning error type, with transient/permanent
//!   failure classification for the retry layer.
//! * [`rng`] — seedable deterministic randomness.
//! * [`budget`] — the tuner's storage/transfer budget types.
//! * [`retry`] — exponential backoff + jitter and per-store circuit
//!   breakers over simulated time.
//! * [`integrity`] — the global verify-on-read toggle for view content
//!   checksums (`MISO_INTEGRITY`).
//! * [`pool`] — the miso-par scoped worker pool (`MISO_THREADS`) with a
//!   deterministic-ordering batch primitive for the tuner's what-if probes.
//! * [`guard`] — the per-query lifecycle guard (`MISO_GUARD`): deadline,
//!   cooperative cancellation token, and byte-denominated memory budget.

pub mod budget;
pub mod bytesize;
pub mod error;
pub mod guard;
pub mod ids;
pub mod integrity;
pub mod pool;
pub mod retry;
pub mod rng;
pub mod time;

pub use budget::{Budgets, DiscretizedBudget};
pub use bytesize::ByteSize;
pub use error::{MisoError, Result};
pub use guard::QueryGuard;
pub use retry::{BreakerState, CircuitBreaker, RetryPolicy};
pub use rng::{DetRng, RandomSource};
pub use time::{SimClock, SimDuration, SimInstant};
