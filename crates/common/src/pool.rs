//! miso-par: a zero-dependency scoped worker pool for batch fan-out.
//!
//! The tuner's what-if probes are embarrassingly parallel — each probe is a
//! pure re-optimization of one history query under one hypothetical design —
//! but the system must stay byte-deterministic: every figure and table is
//! diffed across runs. This module therefore offers exactly one primitive,
//! [`run_batch`], with a hard ordering contract: the result vector is indexed
//! by task, never by completion order, so `run_batch(n, f)` returns the same
//! value as `(0..n).map(f)` regardless of thread count or scheduling.
//!
//! Worker count resolution, cheapest first:
//!
//! 1. a programmatic [`set_threads`] override (tests, benches);
//! 2. the `MISO_THREADS` environment variable (read once per process);
//! 3. [`std::thread::available_parallelism`].
//!
//! The pool is *scoped* (`std::thread::scope`): threads are spawned per
//! batch and joined before `run_batch` returns, so borrowed task closures
//! need no `'static` bound and no threads outlive their data. Batches on
//! the tuner hot path are hundreds-to-thousands of optimizer probes, each
//! orders of magnitude more expensive than a thread spawn.

use crate::error::{MisoError, Result};
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Whether the current thread *is* a pool worker. A task that itself
    /// calls [`run_batch`]/[`run_chunks`] (e.g. a serve worker running a
    /// vex query that morsel-dispatches) must not spawn a second tier of
    /// workers under the first: nested dispatch runs inline on the worker
    /// thread instead. Results are position-keyed, so inlining cannot
    /// change any output.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is currently inside a pool worker task
/// (nested dispatch from such a thread runs inline).
pub fn in_worker() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

/// Upper bound on worker threads (a safety clamp for absurd `MISO_THREADS`).
const MAX_THREADS: usize = 256;

/// Resolved worker count; 0 means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached physical parallelism; 0 means "not resolved yet".
static CORES: AtomicUsize = AtomicUsize::new(0);

/// The machine's available parallelism (cached after the first call).
fn cores() -> usize {
    let c = CORES.load(Ordering::Relaxed);
    if c != 0 {
        return c;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = CORES.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
    CORES.load(Ordering::Relaxed)
}

fn resolve_from_env() -> usize {
    if let Some(v) = std::env::var_os("MISO_THREADS") {
        if let Ok(n) = v.to_string_lossy().trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
        eprintln!("miso-par: ignoring malformed MISO_THREADS ({v:?})");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The worker count batches run with. One relaxed atomic load after the
/// first call, matching the chaos/integrity gate convention.
#[inline]
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let n = resolve_from_env().max(1);
    // First resolver wins; racing resolvers computed the same value anyway.
    let _ = THREADS.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

/// Overrides the worker count (clamped to `1..=256`). Benches use this to
/// compare serial and parallel runs inside one process; the equivalence
/// tests use it to prove thread count cannot change results.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Runs one task with a panic fence: a panicking task becomes an `Err`
/// carrying the panic message instead of unwinding through the pool.
fn fenced<T>(i: usize, f: impl FnOnce() -> T) -> std::result::Result<T, String> {
    std::panic::catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("worker panicked on task {i}: {msg}")
    })
}

/// Runs `f(0), f(1), …, f(n-1)` across the pool and returns the results in
/// task order — byte-identical to the serial `(0..n).map(f).collect()`.
///
/// Tasks are pulled from a shared atomic counter (dynamic load balancing:
/// probe costs vary wildly between a cached rewrite and a full split
/// enumeration). A panicking task does **not** unwind through the pool or
/// poison other workers: remaining tasks still run, and the batch returns
/// `MisoError::Execution` for the lowest-indexed panicking task — the same
/// error for every thread count, so one bad morsel kills one query, never
/// the process.
pub fn run_batch<T, F>(n: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // `threads()` is the configured concurrency ceiling; actually spawning
    // more workers than the machine has cores only adds context-switch and
    // cache-thrash overhead (results are position-keyed, so the worker
    // count can never change the output anyway). Re-entrant dispatch — a
    // pool task calling back into the pool — runs inline: the outer batch
    // already owns the worker budget, and blocking a worker on a nested
    // scope would oversubscribe (or, with a bounded queue, deadlock).
    let workers = if in_worker() {
        1
    } else {
        threads().min(n).min(cores())
    };
    if workers <= 1 {
        // Same panic fence as the parallel path: thread count must not
        // change whether a panic surfaces as an error or an unwind.
        return (0..n)
            .map(|i| fenced(i, || f(i)).map_err(MisoError::Execution))
            .collect();
    }
    let next = AtomicUsize::new(0);
    type Bucket<T> = Vec<(usize, std::result::Result<T, String>)>;
    let buckets: Vec<Bucket<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    IN_POOL_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, fenced(i, || f(i))));
                    }
                    // Scoped threads die with the batch, but reset anyway in
                    // case a runtime ever pools/reuses them.
                    IN_POOL_WORKER.with(|w| w.set(false));
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                // Tasks are fenced, so this is pool infrastructure dying —
                // nothing sane to report, propagate.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Deterministic ordering: place every result by its task index.
    let mut out: Vec<Option<std::result::Result<T, String>>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, v) in bucket {
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|v| {
            v.expect("every batch index is claimed exactly once")
                .map_err(MisoError::Execution)
        })
        .collect()
}

/// Runs `f` over fixed-size chunks of a borrowed slice and returns the
/// per-chunk results in chunk order — the morsel dispatch primitive of the
/// execution engine. `f(i, chunk)` receives the chunk index and the items
/// `[i*chunk_size .. (i+1)*chunk_size)` (the last chunk may be short).
///
/// Chunk boundaries depend only on `chunk_size`, never on the worker count,
/// so any per-chunk computation reassembled in chunk order is byte-identical
/// for every `MISO_THREADS` value.
pub fn run_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let n = items.len().div_ceil(chunk_size);
    run_batch(n, |i| {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(items.len());
        f(i, &items[start..end])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_matches_serial_map() {
        let before = threads();
        for t in [1, 2, 8] {
            set_threads(t);
            let got = run_batch(100, |i| i * i).unwrap();
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={t}");
        }
        set_threads(before);
    }

    #[test]
    fn empty_and_single_batches() {
        let before = threads();
        set_threads(4);
        assert_eq!(run_batch(0, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(run_batch(1, |i| i + 7).unwrap(), vec![7]);
        set_threads(before);
    }

    #[test]
    fn worker_panic_becomes_execution_error() {
        let before = threads();
        for t in [1, 2, 8] {
            set_threads(t);
            let err = run_batch(32, |i| {
                if i == 5 {
                    panic!("morsel {i} exploded");
                }
                i
            })
            .unwrap_err();
            assert_eq!(err.kind(), "execution", "threads={t}");
            assert!(
                err.message().contains("morsel 5 exploded"),
                "threads={t}: {err}"
            );
            assert!(err.is_permanent(), "a panic is not retryable");
        }
        set_threads(before);
    }

    #[test]
    fn lowest_indexed_panic_wins_for_every_thread_count() {
        let before = threads();
        for t in [1, 4] {
            set_threads(t);
            let err = run_batch(64, |i| {
                if i == 9 || i == 40 {
                    panic!("task {i}");
                }
                i
            })
            .unwrap_err();
            assert!(
                err.message().contains("task 9"),
                "threads={t}: reported {err}"
            );
        }
        set_threads(before);
    }

    #[test]
    fn chunk_panic_surfaces_from_run_chunks() {
        let before = threads();
        set_threads(4);
        let items: Vec<u32> = (0..100).collect();
        let err = run_chunks(&items, 10, |i, _chunk| {
            if i == 3 {
                panic!("bad chunk");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.kind(), "execution");
        assert!(err.message().contains("bad chunk"));
        set_threads(before);
    }

    #[test]
    fn set_threads_clamps() {
        let before = threads();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(1_000_000);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(before);
    }

    #[test]
    fn chunks_cover_slice_in_order() {
        let before = threads();
        let items: Vec<u64> = (0..1000).collect();
        for t in [1, 2, 8] {
            set_threads(t);
            // Sum + span per chunk; reassembled order must be chunk order.
            let parts = run_chunks(&items, 64, |i, chunk| {
                (i, chunk[0], chunk.iter().copied().sum::<u64>())
            })
            .unwrap();
            assert_eq!(parts.len(), 1000usize.div_ceil(64), "threads={t}");
            for (idx, &(i, first, _)) in parts.iter().enumerate() {
                assert_eq!(i, idx);
                assert_eq!(first, (idx * 64) as u64);
            }
            let total: u64 = parts.iter().map(|&(_, _, s)| s).sum();
            assert_eq!(total, items.iter().sum::<u64>());
        }
        set_threads(before);
    }

    #[test]
    fn chunks_on_empty_and_short_inputs() {
        let before = threads();
        set_threads(4);
        assert_eq!(
            run_chunks(&[] as &[u8], 16, |_, c| c.len()).unwrap(),
            Vec::<usize>::new()
        );
        assert_eq!(
            run_chunks(&[1u8, 2, 3], 16, |_, c| c.len()).unwrap(),
            vec![3]
        );
        set_threads(before);
    }

    #[test]
    fn nested_dispatch_runs_inline_and_correctly() {
        let before = threads();
        for t in [1, 4] {
            set_threads(t);
            // Each outer task fans out again: the inner batch must run
            // inline on the outer worker's thread (never a second tier of
            // workers) and still return position-keyed results.
            let got = run_batch(6, |i| {
                let outer_thread = std::thread::current().id();
                let inner = run_chunks(&[1u64, 2, 3, 4, 5], 2, |ci, chunk| {
                    assert!(in_worker() || threads() == 1 || cores() == 1);
                    assert_eq!(
                        std::thread::current().id(),
                        outer_thread,
                        "nested dispatch must not hop threads"
                    );
                    (ci, chunk.iter().sum::<u64>())
                })
                .unwrap();
                assert_eq!(inner, vec![(0, 3), (1, 7), (2, 5)]);
                i * 10
            })
            .unwrap();
            assert_eq!(got, vec![0, 10, 20, 30, 40, 50], "threads={t}");
        }
        set_threads(before);
    }

    #[test]
    fn nested_panic_still_classified() {
        let before = threads();
        set_threads(4);
        let err = run_batch(3, |i| {
            run_chunks(&[0u8; 8], 4, move |ci, _| {
                if i == 1 && ci == 1 {
                    panic!("nested task blew up");
                }
                ci
            })
        })
        .unwrap()
        .into_iter()
        .find_map(|r| r.err())
        .expect("the nested panic surfaces as an error");
        assert_eq!(err.kind(), "execution");
        assert!(err.message().contains("nested task blew up"));
        set_threads(before);
    }

    #[test]
    fn in_worker_is_false_outside_the_pool() {
        assert!(!in_worker());
    }

    #[test]
    fn borrowed_data_is_usable() {
        let before = threads();
        set_threads(3);
        let data: Vec<String> = (0..20).map(|i| format!("item-{i}")).collect();
        let lens = run_batch(data.len(), |i| data[i].len()).unwrap();
        assert_eq!(lens.len(), 20);
        assert_eq!(lens[0], 6);
        assert_eq!(lens[10], 7);
        set_threads(before);
    }
}
