//! Simulated time.
//!
//! Every engine action in the reproduction (an HV MapReduce stage, a DW scan,
//! a working-set transfer, a tuning phase) charges *simulated seconds* derived
//! from calibrated cost models instead of consuming wall-clock time. This is
//! the substitution that lets a 2 TB / 24-node experiment run deterministically
//! on a laptop: the data is scaled down, but costs are expressed at paper
//! scale.
//!
//! [`SimDuration`] is a length of simulated time, [`SimInstant`] a point on
//! the simulated timeline, and [`SimClock`] an advancing cursor that the
//! multistore driver threads through query execution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A non-negative span of simulated time with microsecond resolution.
///
/// Stored as integer microseconds so that accumulation across tens of
/// thousands of operator invocations is exact and platform-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * 1_000,
        }
    }

    /// Creates a duration from whole simulated seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * 1_000_000,
        }
    }

    /// Creates a duration from fractional simulated seconds.
    ///
    /// Negative or non-finite inputs saturate to zero; this keeps cost models
    /// (which occasionally produce tiny negative values through float
    /// cancellation) total rather than panicking mid-experiment.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration {
            micros: (secs * 1e6).round() as u64,
        }
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// This duration in whole seconds, truncating.
    pub fn as_secs(&self) -> u64 {
        self.micros / 1_000_000
    }

    /// This duration in whole microseconds.
    pub fn as_micros(&self) -> u64 {
        self.micros
    }

    /// True iff this is the zero duration.
    pub fn is_zero(&self) -> bool {
        self.micros == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.micros
            .checked_add(rhs.micros)
            .map(|micros| SimDuration { micros })
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros += rhs.micros;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros - rhs.micros,
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.micros -= rhs.micros;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros * rhs,
        }
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1000.0 {
            write!(f, "{:.1}ks", s / 1000.0)
        } else if s >= 1.0 {
            write!(f, "{s:.2}s")
        } else {
            write!(f, "{:.1}ms", s * 1000.0)
        }
    }
}

/// A point on the simulated timeline, measured from experiment start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant {
    since_start: SimDuration,
}

impl SimInstant {
    /// The experiment origin.
    pub const EPOCH: SimInstant = SimInstant {
        since_start: SimDuration::ZERO,
    };

    /// Instant at `d` after the epoch.
    pub const fn at(d: SimDuration) -> Self {
        SimInstant { since_start: d }
    }

    /// Elapsed time since the epoch.
    pub fn elapsed_since_epoch(&self) -> SimDuration {
        self.since_start
    }

    /// Duration from `earlier` to `self`; zero if `earlier` is later.
    pub fn duration_since(&self, earlier: SimInstant) -> SimDuration {
        self.since_start.saturating_sub(earlier.since_start)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            since_start: self.since_start + rhs,
        }
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", self.since_start)
    }
}

/// An advancing simulated-time cursor.
///
/// The multistore driver owns one clock per experiment; engines report costs
/// as [`SimDuration`]s and the driver advances the clock. The clock records
/// nothing about *what* consumed the time — attribution (HV-EXE vs DW-EXE vs
/// TRANSFER vs TUNE vs ETL) lives in `miso-core`'s metrics.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimInstant,
}

impl SimClock {
    /// A clock at the experiment origin.
    pub fn new() -> Self {
        SimClock {
            now: SimInstant::EPOCH,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimInstant {
        self.now = self.now + d;
        self.now
    }

    /// Total simulated time elapsed since the origin.
    pub fn elapsed(&self) -> SimDuration {
        self.now.elapsed_since_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_roundtrips_seconds() {
        let d = SimDuration::from_secs_f64(12.5);
        assert_eq!(d.as_secs_f64(), 12.5);
        assert_eq!(d.as_secs(), 12);
        assert_eq!(d.as_micros(), 12_500_000);
    }

    #[test]
    fn duration_saturates_on_negative_and_nan() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(10);
        let b = SimDuration::from_secs(4);
        assert_eq!((a + b).as_secs(), 14);
        assert_eq!((a - b).as_secs(), 6);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!((a * 2u64).as_secs(), 20);
        assert_eq!((a * 0.5).as_secs_f64(), 5.0);
        assert_eq!((a / 4.0).as_secs_f64(), 2.5);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total.as_secs(), 10);
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(SimDuration::from_secs(2500).to_string(), "2.5ks");
        assert_eq!(SimDuration::from_secs_f64(2.25).to_string(), "2.25s");
        assert_eq!(SimDuration::from_millis(120).to_string(), "120.0ms");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
        clock.advance(SimDuration::from_secs(3));
        clock.advance(SimDuration::from_secs(4));
        assert_eq!(clock.elapsed().as_secs(), 7);
    }

    #[test]
    fn instant_duration_since_is_saturating() {
        let a = SimInstant::at(SimDuration::from_secs(5));
        let b = SimInstant::at(SimDuration::from_secs(9));
        assert_eq!(b.duration_since(a).as_secs(), 4);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn checked_add_detects_overflow() {
        let max = SimDuration::from_micros(u64::MAX);
        assert!(max.checked_add(SimDuration::from_micros(1)).is_none());
        assert!(max.checked_add(SimDuration::ZERO).is_some());
    }
}
