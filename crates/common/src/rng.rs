//! Deterministic randomness.
//!
//! Every stochastic component (log generators, workload mutation, background
//! query arrivals) draws from a [`DetRng`] seeded explicitly, so experiments
//! and tests replay bit-identically. The core generator is SplitMix64 — tiny,
//! fast, and with well-understood statistical quality for simulation use.
//! We intentionally avoid external RNG crates entirely: the [`RandomSource`]
//! trait below covers the byte/word-filling surface the repo needs, keeping
//! the build free of crates.io dependencies and the streams
//! stability-guaranteed forever.

/// The generic randomness surface, an in-crate stand-in for `rand::RngCore`.
///
/// Anything that needs "some generator" rather than [`DetRng`] specifically
/// should accept `&mut dyn RandomSource` (or be generic over it).
pub trait RandomSource {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit value (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// A deterministic, seedable 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Derives an independent child stream, e.g. one per analyst or table.
    ///
    /// Mixing the label through one SplitMix64 step decorrelates children of
    /// the same parent.
    pub fn fork(&self, label: u64) -> DetRng {
        let mut child = DetRng::new(self.state ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        child.next_u64();
        DetRng::new(child.next_u64())
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. Panics on `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire-style rejection-free multiply-shift is fine for simulation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` inclusive. Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range is empty");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// A Zipf-distributed rank in `[0, n)` with exponent `s`.
    ///
    /// Uses inverse-CDF over the (precomputable but here on-the-fly) harmonic
    /// normalizer; `n` is expected to be small (item popularity skew in log
    /// generation), so the O(n) walk is acceptable.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.f64() * norm;
        for k in 1..=n {
            u -= 1.0 / (k as f64).powf(s);
            if u <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// A Zipf sampler with a precomputed CDF for O(log n) draws.
///
/// Use this instead of [`DetRng::zipf`] whenever many draws share the same
/// `(n, s)` — e.g. per-record user popularity during log generation.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `[0, n)` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        ZipfSampler { cdf }
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.f64();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose CDF reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

impl RandomSource for DetRng {
    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_replay() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be near-independent");
    }

    #[test]
    fn fork_decorrelates() {
        let parent = DetRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = DetRng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            match rng.range_inclusive(5, 8) {
                5 => seen_lo = true,
                8 => seen_hi = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zipf_is_skewed_to_low_ranks() {
        let mut rng = DetRng::new(13);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.0)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 should dominate: {counts:?}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(17);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn zipf_sampler_matches_direct_zipf_distribution() {
        let sampler = ZipfSampler::new(10, 1.0);
        let mut rng = DetRng::new(13);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 should dominate: {counts:?}"
        );
        // every rank reachable
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn random_source_fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::new(19);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
