//! miso-guard: the per-query lifecycle guard.
//!
//! A [`QueryGuard`] travels with one query from admission in the multistore
//! driver, through every store call, down into the vex engine's morsel
//! dispatch. It carries three cooperative controls:
//!
//! * a **cancellation token** — once tripped (explicitly, by a deadline, or
//!   by the memory budget) every subsequent [`QueryGuard::check`] fails with
//!   a tagged [`MisoError`], so the query unwinds at the next dispatch
//!   boundary while the process and all other queries stay healthy;
//! * a **deadline** on the simulated timeline — the driver owns the clock,
//!   so it calls [`QueryGuard::check_deadline`] at store-call boundaries
//!   (the engine itself only ever observes the resulting cancellation);
//! * a **byte-denominated memory budget** — the engine charges join build
//!   tables, aggregate accumulator tables, and materialization buffers via
//!   [`QueryGuard::try_charge`]; an over-budget charge is refused (so the
//!   recorded peak never exceeds the budget) and trips the token.
//!
//! Two performance rules, matching the chaos/integrity/xray gates:
//!
//! 1. the process-global [`enabled`] toggle (`MISO_GUARD`) is one relaxed
//!    atomic load;
//! 2. the **inert** guard — what every pre-existing entry point passes —
//!    short-circuits on a plain `bool` before touching any atomic, so
//!    guard-free execution costs one predictable branch per check.
//!
//! State changes (cancel, deadline trip, budget trip) only ever happen at
//! serial points in the driver or engine — never inside pool workers — so a
//! query's outcome is identical for every `MISO_THREADS` value.

use crate::error::{MisoError, Result};
use crate::time::SimInstant;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Global gate
// ---------------------------------------------------------------------------

/// Whether query guards are globally enabled (`MISO_GUARD`).
static GUARDS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the guard layer is enabled. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    GUARDS_ENABLED.load(Ordering::Relaxed)
}

/// Programmatically toggles the guard layer (tests, benches).
pub fn set_enabled(on: bool) {
    GUARDS_ENABLED.store(on, Ordering::Relaxed);
}

/// Initializes the gate from `MISO_GUARD`: unset, empty, or `0` disable
/// guards; anything else enables them.
pub fn init_from_env() {
    let on = std::env::var("MISO_GUARD").is_ok_and(|v| !v.is_empty() && v != "0");
    set_enabled(on);
}

// ---------------------------------------------------------------------------
// Guard state
// ---------------------------------------------------------------------------

/// Token states. `LIVE` is the fast path; everything else is a trip reason.
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;
const MEMORY: u8 = 3;

#[derive(Debug)]
struct GuardInner {
    /// `false` only for the shared inert guard: every check short-circuits
    /// on this plain bool before touching an atomic.
    active: bool,
    /// One of `LIVE`/`CANCELLED`/`DEADLINE`/`MEMORY`.
    state: AtomicU8,
    /// Absolute simulated deadline; `None` = no deadline.
    deadline: Option<SimInstant>,
    /// Memory budget in bytes; 0 = unlimited.
    budget: u64,
    /// Bytes currently charged.
    used: AtomicU64,
    /// High-water mark of `used`. Because over-budget charges are refused
    /// before they are recorded, `peak <= budget` always holds.
    peak: AtomicU64,
    /// Testing hook: trip the token after this many successful checks
    /// (0 = disabled). Mirrors the chaos registry's `OnHit` trigger and
    /// powers the cancel-at-every-operator sweep.
    cancel_after: AtomicU64,
}

/// The per-query guard: deadline + cancellation token + memory gauge.
///
/// Cheap to clone (an `Arc`); all clones observe the same token and budget.
#[derive(Debug, Clone)]
pub struct QueryGuard(Arc<GuardInner>);

impl QueryGuard {
    /// A live guard with the given absolute deadline and byte budget
    /// (`budget == 0` means unlimited).
    pub fn new(deadline: Option<SimInstant>, budget: u64) -> Self {
        QueryGuard(Arc::new(GuardInner {
            active: true,
            state: AtomicU8::new(LIVE),
            deadline,
            budget,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            cancel_after: AtomicU64::new(0),
        }))
    }

    /// The shared inert guard: never trips, never charges, checks cost one
    /// branch. Every legacy entry point passes this.
    pub fn inert() -> QueryGuard {
        Self::inert_ref().clone()
    }

    /// Borrow of the shared inert guard (no refcount traffic).
    pub fn inert_ref() -> &'static QueryGuard {
        static INERT: OnceLock<QueryGuard> = OnceLock::new();
        INERT.get_or_init(|| {
            QueryGuard(Arc::new(GuardInner {
                active: false,
                state: AtomicU8::new(LIVE),
                deadline: None,
                budget: 0,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                cancel_after: AtomicU64::new(0),
            }))
        })
    }

    /// Whether this is a real (non-inert) guard.
    pub fn is_active(&self) -> bool {
        self.0.active
    }

    /// The error corresponding to a tripped state.
    #[cold]
    fn tripped_error(state: u8) -> MisoError {
        match state {
            DEADLINE => MisoError::Cancelled {
                reason: "deadline",
                message: "query deadline exceeded".into(),
            },
            MEMORY => MisoError::ResourceExhausted {
                resource: "memory",
                message: "query memory budget exhausted".into(),
            },
            _ => MisoError::Cancelled {
                reason: "explicit",
                message: "query cancelled".into(),
            },
        }
    }

    /// Cooperative cancellation check: `Ok` while the query is live, the
    /// tagged trip error once the token has tripped. One relaxed load on
    /// the active fast path, one branch on the inert one.
    ///
    /// Call this only at serial points (node boundaries, morsel-dispatch
    /// boundaries, store-call boundaries) so the trip is observed at the
    /// same operation for every thread count.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if !self.0.active {
            return Ok(());
        }
        let state = self.0.state.load(Ordering::Relaxed);
        if state != LIVE {
            return Err(Self::tripped_error(state));
        }
        self.count_check()
    }

    /// Countdown half of the `cancel_after_checks` testing hook.
    #[inline]
    fn count_check(&self) -> Result<()> {
        let n = self.0.cancel_after.load(Ordering::Relaxed);
        if n == 0 {
            return Ok(());
        }
        if n == 1 {
            self.0.cancel_after.store(0, Ordering::Relaxed);
            self.trip(CANCELLED);
            return Err(Self::tripped_error(CANCELLED));
        }
        self.0.cancel_after.store(n - 1, Ordering::Relaxed);
        Ok(())
    }

    /// Whether the token has tripped (for any reason).
    pub fn is_cancelled(&self) -> bool {
        self.0.active && self.0.state.load(Ordering::Relaxed) != LIVE
    }

    /// Explicitly cancels the query: every later check fails.
    pub fn cancel(&self) {
        if self.0.active {
            self.trip(CANCELLED);
        }
    }

    /// Testing hook: trips the token on the `n`-th subsequent successful
    /// [`QueryGuard::check`] — the cancel-at-every-operator sweep primitive.
    pub fn cancel_after_checks(&self, n: u64) {
        self.0.cancel_after.store(n, Ordering::Relaxed);
    }

    /// First trip wins: the recorded reason is the original cause.
    fn trip(&self, state: u8) {
        let _ = self
            .0
            .state
            .compare_exchange(LIVE, state, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<SimInstant> {
        if self.0.active {
            self.0.deadline
        } else {
            None
        }
    }

    /// Deadline check against the driver's clock: trips the token and fails
    /// once `now` passes the deadline. Also surfaces any earlier trip, so
    /// store-call boundaries need only this one call.
    pub fn check_deadline(&self, now: SimInstant) -> Result<()> {
        if !self.0.active {
            return Ok(());
        }
        self.check()?;
        if let Some(deadline) = self.0.deadline {
            if now > deadline {
                self.trip(DEADLINE);
                return Err(Self::tripped_error(DEADLINE));
            }
        }
        Ok(())
    }

    /// Charges `bytes` against the memory budget. An over-budget charge is
    /// refused *without* being recorded (so `peak() <= budget()` is an
    /// invariant), trips the token, and returns `ResourceExhausted`.
    ///
    /// Call only at serial points; charging from pool workers would make
    /// the trip order depend on scheduling.
    pub fn try_charge(&self, bytes: u64) -> Result<()> {
        if !self.0.active || bytes == 0 {
            return Ok(());
        }
        let now = self.0.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if self.0.budget != 0 && now > self.0.budget {
            self.0.used.fetch_sub(bytes, Ordering::Relaxed);
            self.trip(MEMORY);
            return Err(Self::tripped_error(MEMORY));
        }
        self.0.peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    /// Releases previously charged bytes.
    pub fn release(&self, bytes: u64) {
        if !self.0.active || bytes == 0 {
            return;
        }
        // Saturate: a release can never drive the gauge negative.
        let _ = self
            .0
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                Some(u.saturating_sub(bytes))
            });
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.0.used.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Ordering::Relaxed)
    }

    /// The configured byte budget (0 = unlimited).
    pub fn budget(&self) -> u64 {
        self.0.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn inert_guard_never_trips_or_charges() {
        let g = QueryGuard::inert();
        assert!(!g.is_active());
        g.cancel();
        assert!(!g.is_cancelled());
        assert!(g.check().is_ok());
        assert!(g
            .check_deadline(SimInstant::at(SimDuration::from_secs(1_000_000)))
            .is_ok());
        assert!(g.try_charge(u64::MAX).is_ok());
        assert_eq!(g.used(), 0);
        assert_eq!(g.peak(), 0);
        assert_eq!(g.deadline(), None);
    }

    #[test]
    fn explicit_cancel_fails_every_later_check() {
        let g = QueryGuard::new(None, 0);
        assert!(g.check().is_ok());
        g.cancel();
        assert!(g.is_cancelled());
        let e = g.check().unwrap_err();
        assert_eq!(e.kind(), "cancelled");
        // Clones share the token.
        let e2 = g.clone().check().unwrap_err();
        assert_eq!(e2.kind(), "cancelled");
    }

    #[test]
    fn deadline_trips_once_passed_and_sticks() {
        let d = SimInstant::at(SimDuration::from_secs(10));
        let g = QueryGuard::new(Some(d), 0);
        assert!(g
            .check_deadline(SimInstant::at(SimDuration::from_secs(10)))
            .is_ok());
        let e = g
            .check_deadline(SimInstant::at(SimDuration::from_secs(11)))
            .unwrap_err();
        assert_eq!(e.kind(), "cancelled");
        assert!(e.to_string().contains("deadline"));
        // Sticky: even an in-deadline check now fails.
        assert!(g.check_deadline(SimInstant::EPOCH).is_err());
        assert!(g.check().is_err());
    }

    #[test]
    fn budget_refuses_over_charge_and_peak_stays_bounded() {
        let g = QueryGuard::new(None, 100);
        g.try_charge(60).unwrap();
        g.try_charge(40).unwrap();
        assert_eq!(g.used(), 100);
        let e = g.try_charge(1).unwrap_err();
        assert_eq!(e.kind(), "resource_exhausted");
        assert_eq!(g.used(), 100, "refused charge is not recorded");
        assert!(g.peak() <= g.budget());
        assert!(g.check().is_err(), "budget trip cancels the query");
        g.release(100);
        assert_eq!(g.used(), 0);
        assert_eq!(g.peak(), 100, "peak is a high-water mark");
        g.release(50);
        assert_eq!(g.used(), 0, "release saturates at zero");
    }

    #[test]
    fn first_trip_reason_wins() {
        let g = QueryGuard::new(Some(SimInstant::EPOCH), 10);
        let e = g.try_charge(11).unwrap_err();
        assert_eq!(e.kind(), "resource_exhausted");
        // The later deadline check reports the original memory trip.
        let e2 = g
            .check_deadline(SimInstant::at(SimDuration::from_secs(1)))
            .unwrap_err();
        assert_eq!(e2.kind(), "resource_exhausted");
    }

    #[test]
    fn cancel_after_checks_counts_down_deterministically() {
        let g = QueryGuard::new(None, 0);
        g.cancel_after_checks(3);
        assert!(g.check().is_ok());
        assert!(g.check().is_ok());
        let e = g.check().unwrap_err();
        assert_eq!(e.kind(), "cancelled");
        assert!(g.is_cancelled());
    }

    #[test]
    fn env_gate_parses_like_the_other_toggles() {
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
