//! Tuning budgets.
//!
//! The MISO tuner is constrained by three quantities (paper Section 4.1):
//!
//! * `B_h` — HV view storage budget,
//! * `B_d` — DW view storage budget,
//! * `B_t` — view transfer budget per reorganization phase.
//!
//! All three are byte quantities; the knapsack discretizes them at factor `d`
//! (default 1 GiB in the paper, configurable here because our synthetic data
//! is smaller).

use crate::bytesize::ByteSize;

/// The three budget constraints handed to the tuner, plus the knapsack
/// discretization unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budgets {
    /// HV view storage budget (`B_h`).
    pub hv_storage: ByteSize,
    /// DW view storage budget (`B_d`).
    pub dw_storage: ByteSize,
    /// Per-reorganization view transfer budget (`B_t`).
    pub transfer: ByteSize,
    /// Knapsack discretization unit (`d`). Sizes are rounded **up** to whole
    /// units, so a unit larger than typical view sizes over-charges capacity.
    pub discretization: ByteSize,
}

impl Budgets {
    /// Budgets with the paper's default 1 GiB discretization.
    pub fn new(hv_storage: ByteSize, dw_storage: ByteSize, transfer: ByteSize) -> Self {
        Budgets {
            hv_storage,
            dw_storage,
            transfer,
            discretization: ByteSize::from_gib(1),
        }
    }

    /// Overrides the discretization unit.
    pub fn with_discretization(mut self, unit: ByteSize) -> Self {
        self.discretization = unit;
        self
    }

    /// Validates internal consistency (non-zero discretization).
    pub fn validate(&self) -> crate::Result<()> {
        if self.discretization.is_zero() {
            return Err(crate::MisoError::Tuning(
                "knapsack discretization unit must be non-zero".into(),
            ));
        }
        Ok(())
    }

    /// `B_h` in discrete units (rounded down — capacity never rounds up).
    pub fn hv_units(&self) -> u64 {
        self.hv_storage.as_bytes() / self.discretization.as_bytes()
    }

    /// `B_d` in discrete units.
    pub fn dw_units(&self) -> u64 {
        self.dw_storage.as_bytes() / self.discretization.as_bytes()
    }

    /// `B_t` in discrete units.
    pub fn transfer_units(&self) -> u64 {
        self.transfer.as_bytes() / self.discretization.as_bytes()
    }
}

/// A mutable budget that tracks remaining capacity in discrete units.
///
/// Used while *applying* a computed design: the execution layer debits
/// transferred view sizes against the reorganization's transfer budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscretizedBudget {
    unit: ByteSize,
    remaining_units: u64,
}

impl DiscretizedBudget {
    /// A budget of `total` bytes discretized at `unit` (capacity rounds down).
    pub fn new(total: ByteSize, unit: ByteSize) -> Self {
        assert!(!unit.is_zero(), "discretization unit must be non-zero");
        DiscretizedBudget {
            unit,
            remaining_units: total.as_bytes() / unit.as_bytes(),
        }
    }

    /// Remaining capacity in units.
    pub fn remaining_units(&self) -> u64 {
        self.remaining_units
    }

    /// Remaining capacity in bytes.
    pub fn remaining_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.remaining_units * self.unit.as_bytes())
    }

    /// Whether an item of `size` bytes fits.
    pub fn fits(&self, size: ByteSize) -> bool {
        size.units_ceil(self.unit) <= self.remaining_units
    }

    /// Debits an item; returns `false` (and debits nothing) if it doesn't fit.
    pub fn debit(&mut self, size: ByteSize) -> bool {
        let units = size.units_ceil(self.unit);
        if units > self.remaining_units {
            return false;
        }
        self.remaining_units -= units;
        true
    }

    /// Credits capacity back (e.g. a view evicted mid-application).
    pub fn credit(&mut self, size: ByteSize) {
        self.remaining_units += size.units_ceil(self.unit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gib(n: u64) -> ByteSize {
        ByteSize::from_gib(n)
    }

    #[test]
    fn budgets_units_round_down() {
        let b = Budgets::new(gib(3) + ByteSize::from_mib(512), gib(2), gib(1));
        assert_eq!(b.hv_units(), 3);
        assert_eq!(b.dw_units(), 2);
        assert_eq!(b.transfer_units(), 1);
    }

    #[test]
    fn budgets_validate_rejects_zero_unit() {
        let b = Budgets::new(gib(1), gib(1), gib(1)).with_discretization(ByteSize::ZERO);
        assert!(b.validate().is_err());
        assert!(Budgets::new(gib(1), gib(1), gib(1)).validate().is_ok());
    }

    #[test]
    fn debit_and_credit_roundtrip() {
        let mut b = DiscretizedBudget::new(gib(4), gib(1));
        assert_eq!(b.remaining_units(), 4);
        assert!(b.debit(ByteSize::from_mib(1500))); // ceil -> 2 units
        assert_eq!(b.remaining_units(), 2);
        assert!(!b.debit(gib(3)));
        assert_eq!(b.remaining_units(), 2, "failed debit must not consume");
        b.credit(ByteSize::from_mib(1500));
        assert_eq!(b.remaining_units(), 4);
    }

    #[test]
    fn fits_matches_debit() {
        let mut b = DiscretizedBudget::new(gib(1), gib(1));
        assert!(b.fits(gib(1)));
        assert!(!b.fits(gib(1) + ByteSize::from_bytes(1)));
        assert!(b.debit(gib(1)));
        assert!(!b.fits(ByteSize::from_bytes(1)));
    }

    #[test]
    fn remaining_bytes_reflects_units() {
        let b = DiscretizedBudget::new(ByteSize::from_mib(2560), ByteSize::from_mib(1024));
        assert_eq!(b.remaining_units(), 2);
        assert_eq!(b.remaining_bytes(), ByteSize::from_mib(2048));
    }
}
