//! Strongly-typed identifiers.
//!
//! Queries, views, plan nodes, analysts, and reorganization phases each get
//! their own id type so they can't be confused at call sites. All ids are
//! plain `u64` newtypes; allocation is the responsibility of whichever
//! component mints them (e.g. the plan builder mints [`NodeId`]s).

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub fn raw(&self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// A query within the input stream (position-independent identity).
    QueryId, "q"
);
define_id!(
    /// A materialized view (opportunistic or migrated).
    ViewId, "v"
);
define_id!(
    /// A node within a logical plan DAG.
    NodeId, "n"
);
define_id!(
    /// An analyst in the evolutionary workload (paper: A1..A8).
    AnalystId, "A"
);
define_id!(
    /// A reorganization phase (tuning invocation).
    ReorgId, "R"
);
define_id!(
    /// A MapReduce-style stage within an HV job.
    StageId, "s"
);
define_id!(
    /// A table registered in the DW catalog.
    TableId, "t"
);

/// A monotonically increasing id allocator.
///
/// Not thread-safe by design: each component owns its own allocator. Use an
/// atomic wrapper if a component ever shares one across threads.
#[derive(Debug, Clone, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// An allocator starting at zero.
    pub fn new() -> Self {
        IdGen { next: 0 }
    }

    /// Allocates the next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Allocates the next id of type `T`.
    pub fn next_id<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(QueryId(7).to_string(), "q7");
        assert_eq!(ViewId(3).to_string(), "v3");
        assert_eq!(AnalystId(1).to_string(), "A1");
        assert_eq!(ReorgId(2).to_string(), "R2");
    }

    #[test]
    fn idgen_is_monotonic_and_typed() {
        let mut gen = IdGen::new();
        let a: ViewId = gen.next_id();
        let b: ViewId = gen.next_id();
        assert_eq!(a, ViewId(0));
        assert_eq!(b, ViewId(1));
        assert!(a < b);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; we just confirm raw round-trips.
        let q = QueryId::from(5u64);
        assert_eq!(q.raw(), 5);
    }
}
