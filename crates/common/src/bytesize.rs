//! Byte quantities.
//!
//! View sizes, working-set sizes, and the tuner's budgets (`B_h`, `B_d`,
//! `B_t`) are all byte counts. The paper expresses budgets in GB and
//! discretizes the knapsack dimensions at 1 GB granularity; [`ByteSize`]
//! carries exact bytes and offers the discretization used by `miso-core`'s
//! knapsack.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An exact, non-negative number of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize {
    bytes: u64,
}

pub const KIB: u64 = 1024;
pub const MIB: u64 = 1024 * KIB;
pub const GIB: u64 = 1024 * MIB;

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize { bytes: 0 };

    /// Exact byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize { bytes }
    }

    /// Whole kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize { bytes: kib * KIB }
    }

    /// Whole mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize { bytes: mib * MIB }
    }

    /// Whole gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize { bytes: gib * GIB }
    }

    /// Fractional gibibytes, rounding to the nearest byte; saturates at zero.
    pub fn from_gib_f64(gib: f64) -> Self {
        if !gib.is_finite() || gib <= 0.0 {
            return ByteSize::ZERO;
        }
        ByteSize {
            bytes: (gib * GIB as f64).round() as u64,
        }
    }

    /// Exact bytes.
    pub fn as_bytes(&self) -> u64 {
        self.bytes
    }

    /// Fractional mebibytes.
    pub fn as_mib_f64(&self) -> f64 {
        self.bytes as f64 / MIB as f64
    }

    /// Fractional gibibytes.
    pub fn as_gib_f64(&self) -> f64 {
        self.bytes as f64 / GIB as f64
    }

    /// True iff zero bytes.
    pub fn is_zero(&self) -> bool {
        self.bytes == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize {
            bytes: self.bytes.saturating_sub(rhs.bytes),
        }
    }

    /// Number of discrete units of width `unit`, rounding **up** — a view that
    /// occupies any part of a unit consumes the whole unit. This matches the
    /// knapsack discretization in the paper (Section 4.4.2, factor `d`).
    pub fn units_ceil(&self, unit: ByteSize) -> u64 {
        assert!(!unit.is_zero(), "discretization unit must be non-zero");
        self.bytes.div_ceil(unit.bytes)
    }

    /// Scales the size by a non-negative factor, rounding to nearest byte.
    pub fn scale(&self, factor: f64) -> ByteSize {
        if !factor.is_finite() || factor <= 0.0 {
            return ByteSize::ZERO;
        }
        ByteSize {
            bytes: (self.bytes as f64 * factor).round() as u64,
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize {
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.bytes += rhs.bytes;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize {
            bytes: self.bytes - rhs.bytes,
        }
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.bytes -= rhs.bytes;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize {
            bytes: self.bytes * rhs,
        }
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bytes;
        if b >= GIB {
            write!(f, "{:.2}GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2}MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_bytes(), 1024 * 1024);
        assert_eq!(ByteSize::from_gib(2), ByteSize::from_mib(2048));
        assert_eq!(ByteSize::from_gib_f64(0.5), ByteSize::from_mib(512));
    }

    #[test]
    fn fractional_gib_saturates() {
        assert_eq!(ByteSize::from_gib_f64(-1.0), ByteSize::ZERO);
        assert_eq!(ByteSize::from_gib_f64(f64::NAN), ByteSize::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::from_mib(10);
        let b = ByteSize::from_mib(4);
        assert_eq!((a + b).as_mib_f64(), 14.0);
        assert_eq!((a - b).as_mib_f64(), 6.0);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        assert_eq!((a * 3).as_mib_f64(), 30.0);
        assert_eq!(a.scale(0.5), ByteSize::from_mib(5));
    }

    #[test]
    fn units_ceil_rounds_up() {
        let gib = ByteSize::from_gib(1);
        assert_eq!(ByteSize::ZERO.units_ceil(gib), 0);
        assert_eq!(ByteSize::from_bytes(1).units_ceil(gib), 1);
        assert_eq!(ByteSize::from_gib(1).units_ceil(gib), 1);
        assert_eq!(
            (ByteSize::from_gib(1) + ByteSize::from_bytes(1)).units_ceil(gib),
            2
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn units_ceil_rejects_zero_unit() {
        ByteSize::from_gib(1).units_ceil(ByteSize::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::from_bytes(42).to_string(), "42B");
        assert_eq!(ByteSize::from_kib(3).to_string(), "3.00KiB");
        assert_eq!(ByteSize::from_mib(1536).to_string(), "1.50GiB");
    }

    #[test]
    fn sum_accumulates() {
        let total: ByteSize = (1..=3).map(ByteSize::from_mib).sum();
        assert_eq!(total, ByteSize::from_mib(6));
    }
}
