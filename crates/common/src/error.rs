//! Error handling.
//!
//! A single error enum spans the workspace. Variants are deliberately
//! coarse-grained — the library is a research system, and the useful
//! distinction for callers is *which layer* failed, carried alongside a
//! human-readable message.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, MisoError>;

/// All failures the MISO stack can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MisoError {
    /// Lexing/parsing a HiveQL query failed.
    Parse(String),
    /// A query referenced an unknown table, column, or UDF, or types
    /// don't line up.
    Analysis(String),
    /// Plan construction or manipulation produced an inconsistent DAG.
    Plan(String),
    /// Runtime failure inside an operator (e.g. malformed log line where the
    /// SerDe expected JSON).
    Execution(String),
    /// A store rejected a request (missing table, exhausted storage, ...).
    Store(String),
    /// The optimizer could not produce any valid plan (e.g. a UDF pinned to
    /// HV below a forced DW-only region).
    Optimize(String),
    /// The tuner was invoked with inconsistent inputs (e.g. overlapping
    /// designs, zero discretization).
    Tuning(String),
    /// Experiment/driver-level configuration error.
    Config(String),
    /// A store or channel call failed *transiently* (timeout, injected
    /// outage, overload): the operation may succeed if retried. `source`
    /// tags the failing component (`"hv"`, `"dw"`, `"transfer"`, `"etl"`).
    Transient {
        /// The failing store/channel.
        source: &'static str,
        /// Human-readable description.
        message: String,
    },
    /// A simulated process crash injected at a named fail point (chaos
    /// testing). Never retried: callers must run their crash-recovery path
    /// (journal rollback/replay) instead.
    Crash {
        /// The component that "died".
        source: &'static str,
        /// The fail point that fired.
        point: &'static str,
    },
    /// Data-integrity violation: a materialized view's stored content no
    /// longer matches its recorded checksum, or the catalog and the stores
    /// disagree about where a view lives. Raised by read-time verification
    /// and by the between-epoch auditor; permanent (the copy must be
    /// quarantined and recomputed, not retried).
    Integrity {
        /// The affected view (or invariant label for catalog-level drift).
        view: String,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The query's guard tripped: it was cancelled explicitly or its
    /// deadline expired. Permanent for this query (the *query* may be
    /// resubmitted, the failed operation must not be retried in place).
    Cancelled {
        /// Why the token tripped (`"explicit"`, `"deadline"`).
        reason: &'static str,
        /// Human-readable description.
        message: String,
    },
    /// A bounded resource was exhausted: the query's memory budget, or the
    /// system's admission capacity (overload shedding). Permanent for this
    /// attempt; shed queries carry a retry-after hint at the driver level.
    ResourceExhausted {
        /// The exhausted resource (`"memory"`, `"admission"`).
        resource: &'static str,
        /// Human-readable description.
        message: String,
    },
}

impl MisoError {
    /// Builds a transient (retryable) failure tagged with its source store.
    pub fn transient(source: &'static str, message: impl Into<String>) -> Self {
        MisoError::Transient {
            source,
            message: message.into(),
        }
    }

    /// Builds a simulated-crash failure for the given fail point.
    pub fn crash(source: &'static str, point: &'static str) -> Self {
        MisoError::Crash { source, point }
    }

    /// Builds a data-integrity violation for the given view (or invariant
    /// label, for catalog↔store drift not tied to a single view).
    pub fn integrity(view: impl Into<String>, message: impl Into<String>) -> Self {
        MisoError::Integrity {
            view: view.into(),
            message: message.into(),
        }
    }

    /// The failing layer, as a static label (useful in logs and tests).
    pub fn layer(&self) -> &'static str {
        match self {
            MisoError::Parse(_) => "parse",
            MisoError::Analysis(_) => "analysis",
            MisoError::Plan(_) => "plan",
            MisoError::Execution(_) => "execution",
            MisoError::Store(_) => "store",
            MisoError::Optimize(_) => "optimize",
            MisoError::Tuning(_) => "tuning",
            MisoError::Config(_) => "config",
            MisoError::Transient { .. } => "transient",
            MisoError::Crash { .. } => "crash",
            MisoError::Integrity { .. } => "integrity",
            MisoError::Cancelled { .. } => "guard",
            MisoError::ResourceExhausted { .. } => "guard",
        }
    }

    /// A stable per-variant tag. Failure counters and the driver's failure
    /// records key on these strings, so they are part of the observable
    /// contract: never reuse or rename a tag, and keep this match
    /// wildcard-free so a new variant cannot silently miscount.
    pub fn kind(&self) -> &'static str {
        match self {
            MisoError::Parse(_) => "parse",
            MisoError::Analysis(_) => "analysis",
            MisoError::Plan(_) => "plan",
            MisoError::Execution(_) => "execution",
            MisoError::Store(_) => "store",
            MisoError::Optimize(_) => "optimize",
            MisoError::Tuning(_) => "tuning",
            MisoError::Config(_) => "config",
            MisoError::Transient { .. } => "transient",
            MisoError::Crash { .. } => "crash",
            MisoError::Integrity { .. } => "integrity",
            MisoError::Cancelled { .. } => "cancelled",
            MisoError::ResourceExhausted { .. } => "resource_exhausted",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            MisoError::Parse(m)
            | MisoError::Analysis(m)
            | MisoError::Plan(m)
            | MisoError::Execution(m)
            | MisoError::Store(m)
            | MisoError::Optimize(m)
            | MisoError::Tuning(m)
            | MisoError::Config(m) => m,
            MisoError::Transient { message, .. } => message,
            MisoError::Crash { point, .. } => point,
            MisoError::Integrity { message, .. } => message,
            MisoError::Cancelled { message, .. } => message,
            MisoError::ResourceExhausted { message, .. } => message,
        }
    }

    /// Whether retrying the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, MisoError::Transient { .. })
    }

    /// Whether this failure is permanent: neither retryable nor a crash.
    pub fn is_permanent(&self) -> bool {
        !matches!(self, MisoError::Transient { .. } | MisoError::Crash { .. })
    }

    /// Whether this is a simulated crash (recovery must run, never retry).
    pub fn is_crash(&self) -> bool {
        matches!(self, MisoError::Crash { .. })
    }

    /// The store/channel tag of a transient or crash failure.
    pub fn source(&self) -> Option<&'static str> {
        match self {
            MisoError::Transient { source, .. } | MisoError::Crash { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl fmt::Display for MisoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisoError::Transient { source, message } => {
                write!(f, "transient error in {source}: {message}")
            }
            MisoError::Crash { source, point } => {
                write!(f, "simulated crash in {source} at fail point `{point}`")
            }
            MisoError::Integrity { view, message } => {
                write!(f, "integrity error for view `{view}`: {message}")
            }
            MisoError::Cancelled { reason, message } => {
                write!(f, "query cancelled ({reason}): {message}")
            }
            MisoError::ResourceExhausted { resource, message } => {
                write!(f, "resource exhausted ({resource}): {message}")
            }
            _ => write!(f, "{} error: {}", self.layer(), self.message()),
        }
    }
}

impl std::error::Error for MisoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = MisoError::Parse("unexpected token `FROM`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `FROM`");
        assert_eq!(e.layer(), "parse");
        assert_eq!(e.message(), "unexpected token `FROM`");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MisoError::Store("full".into()),
            MisoError::Store("full".into())
        );
        assert_ne!(
            MisoError::Store("full".into()),
            MisoError::Plan("full".into())
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MisoError::Config("bad".into()));
    }

    #[test]
    fn transient_classification_and_source_tag() {
        let t = MisoError::transient("dw", "injected outage");
        assert!(t.is_transient());
        assert!(!t.is_permanent());
        assert!(!t.is_crash());
        assert_eq!(t.source(), Some("dw"));
        assert_eq!(t.layer(), "transient");
        assert_eq!(t.to_string(), "transient error in dw: injected outage");

        let c = MisoError::crash("tuner", "reorg.step");
        assert!(c.is_crash());
        assert!(!c.is_transient());
        assert!(!c.is_permanent());
        assert_eq!(c.source(), Some("tuner"));
        assert!(c.to_string().contains("reorg.step"));

        let p = MisoError::Store("full".into());
        assert!(p.is_permanent());
        assert!(!p.is_transient());
        assert_eq!(p.source(), None);
    }

    #[test]
    fn guard_errors_are_permanent_and_tagged() {
        let c = MisoError::Cancelled {
            reason: "deadline",
            message: "query deadline exceeded".into(),
        };
        assert!(c.is_permanent());
        assert!(!c.is_transient());
        assert!(!c.is_crash());
        assert_eq!(c.kind(), "cancelled");
        assert_eq!(c.layer(), "guard");
        assert_eq!(c.source(), None);
        assert_eq!(
            c.to_string(),
            "query cancelled (deadline): query deadline exceeded"
        );

        let r = MisoError::ResourceExhausted {
            resource: "memory",
            message: "budget exhausted".into(),
        };
        assert!(r.is_permanent());
        assert_eq!(r.kind(), "resource_exhausted");
        assert_eq!(
            r.to_string(),
            "resource exhausted (memory): budget exhausted"
        );
    }

    /// One instance of every variant. Extending `MisoError` without
    /// extending this list fails the exhaustiveness test below — which is
    /// the point: `kind()` feeds failure counters, and a missed arm would
    /// silently miscount.
    fn one_of_each() -> Vec<MisoError> {
        vec![
            MisoError::Parse("p".into()),
            MisoError::Analysis("a".into()),
            MisoError::Plan("p".into()),
            MisoError::Execution("e".into()),
            MisoError::Store("s".into()),
            MisoError::Optimize("o".into()),
            MisoError::Tuning("t".into()),
            MisoError::Config("c".into()),
            MisoError::transient("dw", "m"),
            MisoError::crash("dw", "point"),
            MisoError::integrity("v", "m"),
            MisoError::Cancelled {
                reason: "explicit",
                message: "m".into(),
            },
            MisoError::ResourceExhausted {
                resource: "memory",
                message: "m".into(),
            },
        ]
    }

    #[test]
    fn every_variant_has_a_stable_unique_kind_tag() {
        let errors = one_of_each();
        // Stability: these exact strings are the observable contract.
        let expected = [
            "parse",
            "analysis",
            "plan",
            "execution",
            "store",
            "optimize",
            "tuning",
            "config",
            "transient",
            "crash",
            "integrity",
            "cancelled",
            "resource_exhausted",
        ];
        let kinds: Vec<&'static str> = errors.iter().map(MisoError::kind).collect();
        assert_eq!(kinds, expected);
        // Uniqueness: two variants sharing a tag would merge their counters.
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "kind tags must be unique");
        // Coverage: `one_of_each` must track the enum. This count is the
        // one line to update when adding a variant — the compiler forces
        // the `kind()` arm, this forces the test data.
        assert_eq!(errors.len(), 13, "update one_of_each() for new variants");
        for e in &errors {
            assert!(!e.message().is_empty());
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn integrity_errors_are_permanent_and_name_the_view() {
        let e = MisoError::integrity("v_00ff", "checksum mismatch");
        assert!(e.is_permanent());
        assert!(!e.is_transient());
        assert!(!e.is_crash());
        assert_eq!(e.layer(), "integrity");
        assert_eq!(e.message(), "checksum mismatch");
        assert_eq!(
            e.to_string(),
            "integrity error for view `v_00ff`: checksum mismatch"
        );
    }
}
