//! Error handling.
//!
//! A single error enum spans the workspace. Variants are deliberately
//! coarse-grained — the library is a research system, and the useful
//! distinction for callers is *which layer* failed, carried alongside a
//! human-readable message.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, MisoError>;

/// All failures the MISO stack can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MisoError {
    /// Lexing/parsing a HiveQL query failed.
    Parse(String),
    /// A query referenced an unknown table, column, or UDF, or types
    /// don't line up.
    Analysis(String),
    /// Plan construction or manipulation produced an inconsistent DAG.
    Plan(String),
    /// Runtime failure inside an operator (e.g. malformed log line where the
    /// SerDe expected JSON).
    Execution(String),
    /// A store rejected a request (missing table, exhausted storage, ...).
    Store(String),
    /// The optimizer could not produce any valid plan (e.g. a UDF pinned to
    /// HV below a forced DW-only region).
    Optimize(String),
    /// The tuner was invoked with inconsistent inputs (e.g. overlapping
    /// designs, zero discretization).
    Tuning(String),
    /// Experiment/driver-level configuration error.
    Config(String),
}

impl MisoError {
    /// The failing layer, as a static label (useful in logs and tests).
    pub fn layer(&self) -> &'static str {
        match self {
            MisoError::Parse(_) => "parse",
            MisoError::Analysis(_) => "analysis",
            MisoError::Plan(_) => "plan",
            MisoError::Execution(_) => "execution",
            MisoError::Store(_) => "store",
            MisoError::Optimize(_) => "optimize",
            MisoError::Tuning(_) => "tuning",
            MisoError::Config(_) => "config",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            MisoError::Parse(m)
            | MisoError::Analysis(m)
            | MisoError::Plan(m)
            | MisoError::Execution(m)
            | MisoError::Store(m)
            | MisoError::Optimize(m)
            | MisoError::Tuning(m)
            | MisoError::Config(m) => m,
        }
    }
}

impl fmt::Display for MisoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.layer(), self.message())
    }
}

impl std::error::Error for MisoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = MisoError::Parse("unexpected token `FROM`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `FROM`");
        assert_eq!(e.layer(), "parse");
        assert_eq!(e.message(), "unexpected token `FROM`");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MisoError::Store("full".into()),
            MisoError::Store("full".into())
        );
        assert_ne!(
            MisoError::Store("full".into()),
            MisoError::Plan("full".into())
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MisoError::Config("bad".into()));
    }
}
