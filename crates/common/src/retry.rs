//! Retry with exponential backoff, per-store deadlines, and a circuit
//! breaker — the failure-handling vocabulary the execution layer wraps
//! around store calls and transfers.
//!
//! Delays are *simulated* time: a retry charges its backoff to the
//! [`crate::SimClock`] (and the matching TTI bucket), so time-to-insight
//! accounting stays correct under injected faults. Jitter draws from the
//! workspace [`DetRng`], keeping chaos runs bit-replayable; when no fault
//! ever fires, the RNG is never consulted and runs are byte-identical to a
//! fault-free build.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimInstant};

/// Exponential-backoff retry policy for transient store/channel failures.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: SimDuration,
    /// Multiplier applied per further retry.
    pub multiplier: f64,
    /// Cap on any single backoff delay (the per-store deadline knob).
    pub max_delay: SimDuration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl RetryPolicy {
    /// Defaults calibrated for the simulated stores: 4 retries, 2 s base,
    /// doubling, capped at 60 s, 25% jitter.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: SimDuration::from_secs(2),
            multiplier: 2.0,
            max_delay: SimDuration::from_secs(60),
            jitter: 0.25,
        }
    }

    /// No retries: every transient failure is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: SimDuration::ZERO,
            multiplier: 1.0,
            max_delay: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// The backoff before retry `attempt` (1-based), jittered through `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut DetRng) -> SimDuration {
        let exp = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let raw = (self.base_delay * exp).min(self.max_delay);
        if self.jitter <= 0.0 {
            return raw;
        }
        let j = self.jitter.clamp(0.0, 1.0);
        let factor = 1.0 - j + 2.0 * j * rng.f64();
        raw * factor
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Circuit-breaker state for one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow normally.
    Closed,
    /// Unhealthy: calls are short-circuited until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial call (the probe) is allowed through.
    HalfOpen,
}

/// A per-store circuit breaker over simulated time.
///
/// After `failure_threshold` consecutive failures the breaker opens for
/// `cooldown` simulated seconds; the first call after the cooldown is the
/// probe — success closes the breaker, failure re-opens it for another
/// cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown: SimDuration,
    consecutive_failures: u32,
    state: BreakerState,
    open_until: Option<SimInstant>,
}

impl CircuitBreaker {
    /// A closed breaker with the given trip threshold and cooldown.
    pub fn new(failure_threshold: u32, cooldown: SimDuration) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until: None,
        }
    }

    /// Whether a call may proceed at `now`. Transitions Open → HalfOpen
    /// when the cooldown has elapsed (the allowed call is the probe).
    pub fn allow(&mut self, now: SimInstant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let elapsed = self.open_until.is_none_or(|until| now >= until);
                if elapsed {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: closes the breaker and clears failures.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
        self.open_until = None;
    }

    /// Records a failed call at `now`. Returns `true` when this failure
    /// tripped the breaker open (so callers can count transitions).
    pub fn record_failure(&mut self, now: SimInstant) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || (self.state == BreakerState::Closed
                && self.consecutive_failures >= self.failure_threshold);
        if trip {
            self.state = BreakerState::Open;
            self.open_until = Some(now + self.cooldown);
        }
        trip
    }

    /// The current state (without the time-based Open → HalfOpen shift).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker is currently open (store considered unhealthy).
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimClock;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        let mut rng = DetRng::new(1);
        assert_eq!(p.backoff(1, &mut rng), SimDuration::from_secs(2));
        assert_eq!(p.backoff(2, &mut rng), SimDuration::from_secs(4));
        assert_eq!(p.backoff(3, &mut rng), SimDuration::from_secs(8));
        assert_eq!(p.backoff(10, &mut rng), SimDuration::from_secs(60));
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let p = RetryPolicy::standard();
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for attempt in 1..=6 {
            let exp = p.multiplier.powi(attempt as i32 - 1);
            let raw = (p.base_delay * exp).min(p.max_delay);
            let d1 = p.backoff(attempt, &mut a);
            let d2 = p.backoff(attempt, &mut b);
            assert_eq!(d1, d2, "seeded jitter replays");
            let lo = raw * (1.0 - p.jitter);
            let hi = raw * (1.0 + p.jitter);
            assert!(d1 >= lo && d1 <= hi, "{d1} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn breaker_trips_cools_down_and_probes() {
        let mut clock = SimClock::new();
        let mut cb = CircuitBreaker::new(3, SimDuration::from_secs(100));
        assert!(allow_now(&mut cb, &clock));
        assert!(!cb.record_failure(clock.now()));
        assert!(!cb.record_failure(clock.now()));
        assert!(cb.record_failure(clock.now()), "third failure trips");
        assert!(cb.is_open());
        assert!(!allow_now(&mut cb, &clock), "open: calls short-circuit");
        clock.advance(SimDuration::from_secs(99));
        assert!(!allow_now(&mut cb, &clock), "cooldown not elapsed");
        clock.advance(SimDuration::from_secs(1));
        assert!(allow_now(&mut cb, &clock), "probe allowed after cooldown");
        assert_eq!(cb.state(), BreakerState::HalfOpen);
        // Probe fails: re-open immediately.
        assert!(cb.record_failure(clock.now()));
        assert!(!allow_now(&mut cb, &clock));
        clock.advance(SimDuration::from_secs(100));
        assert!(allow_now(&mut cb, &clock));
        cb.record_success();
        assert_eq!(cb.state(), BreakerState::Closed);
        assert!(allow_now(&mut cb, &clock));
    }

    fn allow_now(cb: &mut CircuitBreaker, clock: &SimClock) -> bool {
        cb.allow(clock.now())
    }

    #[test]
    fn half_open_probe_success_closes_and_resets_failure_count() {
        let mut clock = SimClock::new();
        let mut cb = CircuitBreaker::new(2, SimDuration::from_secs(10));
        assert!(!cb.record_failure(clock.now()));
        assert!(cb.record_failure(clock.now()));
        clock.advance(SimDuration::from_secs(10));
        assert!(
            allow_now(&mut cb, &clock),
            "cooldown elapsed: probe allowed"
        );
        assert_eq!(cb.state(), BreakerState::HalfOpen);
        cb.record_success();
        assert_eq!(cb.state(), BreakerState::Closed);
        assert!(!cb.is_open());
        // The failure streak was cleared: it takes the full threshold of
        // fresh failures to trip again, not a single one.
        assert!(!cb.record_failure(clock.now()), "streak restarted at zero");
        assert_eq!(cb.state(), BreakerState::Closed);
        assert!(cb.record_failure(clock.now()), "threshold reached again");
        assert!(cb.is_open());
    }

    #[test]
    fn half_open_probe_failure_reopens_for_a_full_cooldown() {
        let mut clock = SimClock::new();
        let mut cb = CircuitBreaker::new(1, SimDuration::from_secs(50));
        assert!(cb.record_failure(clock.now()), "threshold 1 trips at once");
        clock.advance(SimDuration::from_secs(50));
        assert!(allow_now(&mut cb, &clock));
        assert_eq!(cb.state(), BreakerState::HalfOpen);
        // A half-open failure trips regardless of the threshold count.
        assert!(cb.record_failure(clock.now()), "probe failure re-opens");
        assert_eq!(cb.state(), BreakerState::Open);
        // The new cooldown is anchored at the probe failure, not the
        // original trip: 49 s later the breaker is still open.
        clock.advance(SimDuration::from_secs(49));
        assert!(!allow_now(&mut cb, &clock));
        clock.advance(SimDuration::from_secs(1));
        assert!(
            allow_now(&mut cb, &clock),
            "second probe after full cooldown"
        );
    }

    #[test]
    fn half_open_allows_repeated_probes_until_resolution() {
        // `allow` in HalfOpen keeps returning true: the breaker does not
        // limit probe concurrency itself (the serial driver does), it only
        // classifies health transitions.
        let mut clock = SimClock::new();
        let mut cb = CircuitBreaker::new(1, SimDuration::from_secs(5));
        cb.record_failure(clock.now());
        clock.advance(SimDuration::from_secs(5));
        assert!(allow_now(&mut cb, &clock));
        assert!(allow_now(&mut cb, &clock));
        assert_eq!(cb.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn no_retry_policy_has_zero_budget() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        let mut rng = DetRng::new(1);
        assert_eq!(p.backoff(1, &mut rng), SimDuration::ZERO);
    }
}
