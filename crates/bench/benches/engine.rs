//! Criterion microbenchmarks for the execution substrate: JSON SerDe, the
//! row operators, and staged HV execution.
//!
//! Gated behind `extern-deps`: criterion comes from crates.io, which the
//! offline build cannot resolve.

#[cfg(feature = "extern-deps")]
mod real {
    use criterion::{criterion_group, criterion_main, Criterion};
    use miso_data::json::parse_json;
    use miso_data::logs::{Corpus, LogsConfig};
    use miso_exec::engine::{execute, MemSource};
    use miso_hv::HvStore;
    use miso_lang::compile;
    use miso_workload::{standard_udfs, workload_catalog};

    fn corpus() -> Corpus {
        Corpus::generate(&LogsConfig::tiny())
    }

    fn bench_serde(c: &mut Criterion) {
        let corpus = corpus();
        c.bench_function("json_parse_1200_tweets", |b| {
            b.iter(|| {
                corpus
                    .twitter
                    .lines
                    .iter()
                    .filter(|l| parse_json(l).is_ok())
                    .count()
            });
        });
    }

    fn bench_operators(c: &mut Criterion) {
        let corpus = corpus();
        let mut src = MemSource::new();
        src.add_log("twitter", corpus.twitter.lines.clone());
        src.add_log("foursquare", corpus.foursquare.lines.clone());
        src.add_log("landmarks", corpus.landmarks.lines.clone());
        let catalog = workload_catalog();
        let udfs = standard_udfs();

        let agg = compile(
            "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood \
             FROM twitter t WHERE t.followers > 50 GROUP BY t.city",
            &catalog,
        )
        .unwrap();
        c.bench_function("exec_filter_aggregate", |b| {
            b.iter(|| {
                execute(&agg, &src, &udfs)
                    .unwrap()
                    .root_rows()
                    .unwrap()
                    .len()
            });
        });

        let join = compile(
            "SELECT l.category AS cat, COUNT(*) AS n \
             FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
             GROUP BY l.category",
            &catalog,
        )
        .unwrap();
        c.bench_function("exec_hash_join_aggregate", |b| {
            b.iter(|| {
                execute(&join, &src, &udfs)
                    .unwrap()
                    .root_rows()
                    .unwrap()
                    .len()
            });
        });

        let udf_query = compile(
            "SELECT b.city AS city, MAX(b.buzz) AS peak \
             FROM APPLY(buzz_score, twitter) b GROUP BY b.city",
            &catalog,
        )
        .unwrap();
        c.bench_function("exec_udf_pipeline", |b| {
            b.iter(|| {
                execute(&udf_query, &src, &udfs)
                    .unwrap()
                    .root_rows()
                    .unwrap()
                    .len()
            });
        });
    }

    fn bench_staged_hv(c: &mut Criterion) {
        let corpus = corpus();
        let mut hv = HvStore::new();
        hv.add_log(corpus.twitter.clone());
        hv.add_log(corpus.foursquare.clone());
        hv.add_log(corpus.landmarks.clone());
        let catalog = workload_catalog();
        let udfs = standard_udfs();
        let q = compile(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 50 GROUP BY t.city ORDER BY n DESC",
            &catalog,
        )
        .unwrap();
        c.bench_function("hv_staged_execution_with_view_capture", |b| {
            b.iter(|| hv.execute(&q, None, &udfs).unwrap().materialized.len());
        });
    }

    fn bench_compile(c: &mut Criterion) {
        let catalog = workload_catalog();
        let sql = "SELECT l.category AS cat, COUNT(*) AS n, COUNT(DISTINCT t.user_id) AS users \
                   FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
                                  JOIN landmarks l ON f.venue_id = l.venue_id \
                   WHERE t.followers > 30000 AND f.likes > 10 AND l.rating > 4.0 \
                   GROUP BY l.category HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 10";
        c.bench_function("compile_three_way_join", |b| {
            b.iter(|| compile(sql, &catalog).unwrap().len());
        });
    }

    criterion_group!(
        benches,
        bench_serde,
        bench_operators,
        bench_staged_hv,
        bench_compile
    );
    criterion_main!(benches);
}

#[cfg(feature = "extern-deps")]
fn main() {
    real::main()
}

#[cfg(not(feature = "extern-deps"))]
fn main() {}
