//! Criterion microbenchmarks for the components the paper claims are
//! "lightweight": the knapsack DP, interaction analysis, view rewriting,
//! plan fingerprinting, and the full tuner invocation.
//!
//! Gated behind `extern-deps`: criterion comes from crates.io, which the
//! offline build cannot resolve.

#[cfg(feature = "extern-deps")]
mod real {
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
    use miso_common::{Budgets, ByteSize};
    use miso_core::{m_knapsack, MisoTuner, PackItem, TunerConfig};
    use miso_dw::DwCostModel;
    use miso_hv::HvCostModel;
    use miso_lang::compile;
    use miso_optimizer::cost::TransferModel;
    use miso_plan::estimate::MapStats;
    use miso_plan::fingerprint::{fingerprint_all, fingerprint_subtree};
    use miso_plan::split::enumerate_splits;
    use miso_plan::Operator;
    use miso_views::{rewrite_with_views, ViewCatalog, ViewDef};
    use miso_workload::{authored_queries, workload_catalog};
    use std::collections::{BTreeSet, HashSet};

    fn knapsack_items(n: usize) -> Vec<PackItem> {
        (0..n)
            .map(|i| PackItem {
                views: vec![format!("v{i}")],
                storage_units: (i as u64 * 7 + 3) % 20 + 1,
                transfer_units: (i as u64 * 5 + 1) % 10,
                benefit: ((i * 37) % 100) as f64 + 1.0,
            })
            .collect()
    }

    fn bench_knapsack(c: &mut Criterion) {
        let mut group = c.benchmark_group("m_knapsack");
        for &n in &[8usize, 32, 128] {
            let items = knapsack_items(n);
            group.bench_with_input(BenchmarkId::new("items", n), &items, |b, items| {
                b.iter(|| m_knapsack(items, 128, 64));
            });
        }
        group.finish();
    }

    fn bench_fingerprints(c: &mut Criterion) {
        let catalog = workload_catalog();
        let plans: Vec<_> = authored_queries()
            .into_iter()
            .map(|q| compile(&q.sql, &catalog).unwrap())
            .collect();
        c.bench_function("fingerprint_all_32_queries", |b| {
            b.iter(|| {
                plans
                    .iter()
                    .map(|p| fingerprint_all(p).len())
                    .sum::<usize>()
            });
        });
    }

    fn bench_split_enumeration(c: &mut Criterion) {
        let catalog = workload_catalog();
        let three_way = compile(
            &authored_queries()
                .into_iter()
                .find(|q| q.label == "A8v4")
                .unwrap()
                .sql,
            &catalog,
        )
        .unwrap();
        c.bench_function("enumerate_splits_A8v4", |b| {
            b.iter(|| enumerate_splits(&three_way).len());
        });
    }

    fn bench_rewrite(c: &mut Criterion) {
        let catalog = workload_catalog();
        let plans: Vec<_> = authored_queries()
            .into_iter()
            .map(|q| compile(&q.sql, &catalog).unwrap())
            .collect();
        // Materialize every filter view of the first 8 queries as candidates.
        let mut available: HashSet<String> = HashSet::new();
        for plan in plans.iter().take(8) {
            let fps = fingerprint_all(plan);
            for node in plan.nodes() {
                if matches!(node.op, Operator::Filter { .. }) {
                    available.insert(fps[&node.id].view_name());
                }
            }
        }
        c.bench_function("rewrite_32_queries_over_views", |b| {
            b.iter(|| {
                plans
                    .iter()
                    .map(|p| rewrite_with_views(p, &available).used.len())
                    .sum::<usize>()
            });
        });
    }

    fn bench_full_tuner(c: &mut Criterion) {
        // A realistic reorganization: ~12 candidate views, 6-query history.
        let catalog = workload_catalog();
        let plans: Vec<_> = authored_queries()
            .into_iter()
            .take(6)
            .map(|q| compile(&q.sql, &catalog).unwrap())
            .collect();
        let mut view_catalog = ViewCatalog::new();
        let mut hv_views = BTreeSet::new();
        let mut stats = MapStats::new();
        stats.set_log("twitter", 40_000.0, 40_000.0 * 280.0);
        stats.set_log("foursquare", 24_000.0, 24_000.0 * 160.0);
        stats.set_log("landmarks", 900.0, 900.0 * 190.0);
        for plan in &plans {
            for node in plan.nodes() {
                if matches!(
                    node.op,
                    Operator::Filter { .. } | Operator::Aggregate { .. }
                ) {
                    let sub = plan.subplan(node.id);
                    let def = ViewDef::from_plan(
                        sub,
                        ByteSize::from_kib(64),
                        1_000,
                        miso_common::ids::QueryId(0),
                    );
                    let fp = fingerprint_subtree(plan, node.id);
                    stats.set_view(fp.view_name(), 1_000.0, 64.0 * 1024.0);
                    hv_views.insert(def.name.clone());
                    view_catalog.register(def);
                }
            }
        }
        let budgets = Budgets::new(
            ByteSize::from_mib(16),
            ByteSize::from_mib(2),
            ByteSize::from_mib(1),
        )
        .with_discretization(ByteSize::from_kib(16));
        let tuner = MisoTuner::new(TunerConfig::paper_default(budgets));
        let hv_cost = HvCostModel::paper_default();
        let dw_cost = DwCostModel::paper_default();
        let transfer = TransferModel::paper_default();
        let dw_views = BTreeSet::new();
        c.bench_function("miso_tune_full_reorg", |b| {
            b.iter(|| {
                tuner.tune(
                    &hv_views,
                    &dw_views,
                    &view_catalog,
                    &plans,
                    &stats,
                    &hv_cost,
                    &dw_cost,
                    &transfer,
                )
            });
        });
    }

    criterion_group!(
        benches,
        bench_knapsack,
        bench_fingerprints,
        bench_split_enumeration,
        bench_rewrite,
        bench_full_tuner
    );
    criterion_main!(benches);
}

#[cfg(feature = "extern-deps")]
fn main() {
    real::main()
}

#[cfg(not(feature = "extern-deps"))]
fn main() {}
