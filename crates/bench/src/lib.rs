//! Shared harness for the evaluation reproductions.
//!
//! Every `fig*`/`table*` binary builds its systems through this module so
//! that all experiments run against the same corpus, workload, budgets, and
//! cost models. Budgets follow the paper's convention: `B_h`/`B_d` are
//! multiples of each store's "base data" size (§5.1) — all logs for HV, the
//! queries' relevant subset (we use 10%, matching the paper's 200 GB of
//! 2 TB) for DW.

use miso_common::{Budgets, ByteSize};
use miso_core::{ExperimentResult, MultistoreSystem, SystemConfig, Variant};
use miso_data::logs::{Corpus, LogsConfig};
use miso_data::Value;
use miso_dw::BackgroundSim;
use miso_plan::LogicalPlan;
use miso_workload::{compile_workload, standard_udfs, workload_catalog};

/// One prepared experiment context (corpus + workload).
pub struct Harness {
    /// The generated corpus.
    pub corpus: Corpus,
    /// The 32 compiled queries.
    pub workload: Vec<(String, LogicalPlan)>,
}

impl Harness {
    /// Builds the standard experiment harness.
    pub fn standard() -> Harness {
        let corpus = Corpus::generate(&LogsConfig::experiment());
        let catalog = workload_catalog();
        let workload = compile_workload(&catalog).expect("workload compiles");
        Harness { corpus, workload }
    }

    /// Base-data size used for HV budget multiples (all logs).
    pub fn hv_base(&self) -> ByteSize {
        self.corpus.total_size()
    }

    /// Base-data size used for DW budget multiples: the relevant subset of
    /// the logs (the paper's 200 GB ≈ 10% of 2 TB).
    pub fn dw_base(&self) -> ByteSize {
        self.hv_base().scale(0.1)
    }

    /// Budgets for storage multiple `x` (e.g. 2.0 = the paper's `2×`) and a
    /// transfer budget sized so that a handful of opportunistic views can
    /// move per reorganization phase — the same *role* the paper's 10 GB
    /// plays against its view working set (our synthetic predicates are
    /// milder than \[14\]'s, so views are a larger fraction of base data;
    /// see DESIGN.md §5).
    pub fn budgets(&self, storage_multiple: f64) -> Budgets {
        let bt = self.hv_base().scale(0.02);
        Budgets::new(
            self.hv_base().scale(storage_multiple),
            self.dw_base().scale(storage_multiple),
            bt,
        )
        .with_discretization(ByteSize::from_kib(8))
    }

    /// A fresh system with the given budgets and optional background load.
    pub fn system(&self, budgets: Budgets, background: Option<BackgroundSim>) -> MultistoreSystem {
        let mut config = SystemConfig::paper_default(budgets);
        config.background = background;
        MultistoreSystem::new(&self.corpus, workload_catalog(), standard_udfs(), config)
    }

    /// A fresh system from a fully custom [`SystemConfig`] (budgets
    /// included) — for benches that need non-default robustness or
    /// integrity settings.
    pub fn system_with(&self, config: SystemConfig) -> MultistoreSystem {
        MultistoreSystem::new(&self.corpus, workload_catalog(), standard_udfs(), config)
    }

    /// Runs one variant at the given storage multiple, no background load.
    pub fn run(&self, variant: Variant, storage_multiple: f64) -> ExperimentResult {
        let mut sys = self.system(self.budgets(storage_multiple), None);
        sys.run_workload(variant, &self.workload)
            .expect("experiment runs")
    }
}

/// Initializes observability from `MISO_TRACE` / `MISO_OBS`, the integrity
/// layer's read-verification from `MISO_INTEGRITY`, and per-operator
/// execution profiling from `MISO_XRAY`; every bench binary calls this
/// first thing in `main`. Returns whether tracing or metrics ended up
/// enabled.
pub fn obs_init() -> bool {
    miso_common::integrity::init_from_env();
    miso_common::guard::init_from_env();
    miso_exec::profile::init_from_env();
    miso_exec::col::init_from_env();
    miso_obs::init_from_env()
}

/// Encodes one experiment's TTI breakdown as a JSON object for run reports.
pub fn tti_value(result: &ExperimentResult) -> Value {
    Value::object(vec![
        ("variant".into(), Value::str(result.variant.as_str())),
        ("queries".into(), Value::Int(result.records.len() as i64)),
        (
            "hv_exe_s".into(),
            Value::Float(result.tti.hv_exe.as_secs_f64()),
        ),
        (
            "dw_exe_s".into(),
            Value::Float(result.tti.dw_exe.as_secs_f64()),
        ),
        (
            "transfer_s".into(),
            Value::Float(result.tti.transfer.as_secs_f64()),
        ),
        ("tune_s".into(), Value::Float(result.tti.tune.as_secs_f64())),
        ("etl_s".into(), Value::Float(result.tti.etl.as_secs_f64())),
        (
            "total_s".into(),
            Value::Float(result.tti_total().as_secs_f64()),
        ),
        ("reorgs".into(), Value::Int(result.reorgs.len() as i64)),
    ])
}

/// Writes the versioned run report for `name` under `results/` (metrics
/// snapshot + benchmark-specific `extra`) and flushes the trace sink.
/// Failures warn on stderr rather than failing the benchmark.
pub fn write_report(name: &str, extra: Value) {
    miso_obs::flush();
    if let Err(e) = miso_obs::write_report("results", name, extra) {
        eprintln!("warning: cannot write results/{name}.report.json: {e}");
    }
}

/// Formats a simulated-seconds quantity the way the paper's axes do (10³ s).
pub fn ks(d: miso_common::SimDuration) -> f64 {
    d.as_secs_f64() / 1000.0
}

/// Renders a simple fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Writes a CSV file under `results/` (created on demand) so the figure
/// data can be re-plotted outside this harness. Fields containing commas or
/// quotes are quoted per RFC 4180.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    use std::io::Write;
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create(format!("results/{name}.csv"))?;
    let escape = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(f, "{}", header.join(","))?;
    for r in rows {
        writeln!(
            f,
            "{}",
            r.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds() {
        let h = Harness::standard();
        assert_eq!(h.workload.len(), 32);
        assert!(h.hv_base().as_bytes() > 1_000_000);
        assert!(h.dw_base() < h.hv_base());
        let b = h.budgets(2.0);
        assert!(b.hv_storage > h.hv_base());
    }
}
