//! Figure 9: impact of the multistore workload on a DW with 40% spare IO
//! capacity — (a) IO/CPU utilization over time with R (reorg transfer),
//! T (working-set transfer), and Q (query execution) events; (b) average
//! background reporting-query latency over time.
//!
//! Paper shape: IO sits at 60% while only the background runs; R/T events
//! briefly push IO to ~100% and background latency from 1.06 s to >5 s;
//! long Q stretches barely register. Overall background slowdown ~2.5%.

use miso_bench::Harness;
use miso_core::Variant;
use miso_data::Value;
use miso_dw::{DwActivity, Resource};
use miso_workload::background::paper_profiles;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let profile = paper_profiles()
        .into_iter()
        .find(|p| p.resource == Resource::Io && p.spare_percent == 40)
        .unwrap();
    let mut sys = harness.system(harness.budgets(2.0), Some(profile.simulator()));
    let result = sys
        .run_workload(Variant::MsMiso, &harness.workload)
        .unwrap();
    let bg = sys.background().unwrap();

    println!(
        "Figure 9: DW with {} spare capacity (background template {} x{})\n",
        profile.label(),
        profile.template,
        profile.instances
    );
    println!("(a) resource timeline (one row per recorded interval, merged):");
    println!(
        "{:>10} {:>10} {:>6} {:>6} {:>9} {:>7}",
        "t(ks)", "dur(s)", "IO%", "CPU%", "bg_lat(s)", "mark"
    );
    let mut shown = 0;
    for s in bg.samples() {
        let mark = match s.activity {
            DwActivity::Idle => "",
            DwActivity::QueryExec => "Q",
            DwActivity::WorkingSetTransfer => "T",
            DwActivity::ViewTransfer => "R",
        };
        // Compress: show every non-idle event plus sparse idle context.
        if s.activity == DwActivity::Idle && shown % 6 != 0 {
            shown += 1;
            continue;
        }
        shown += 1;
        println!(
            "{:>10.1} {:>10.1} {:>6.0} {:>6.0} {:>9.2} {:>7}",
            s.start.elapsed_since_epoch().as_secs_f64() / 1000.0,
            s.duration.as_secs_f64(),
            s.io_util * 100.0,
            s.cpu_util * 100.0,
            s.bg_latency.as_secs_f64(),
            mark
        );
    }

    let peak = bg
        .samples()
        .iter()
        .map(|s| bg.bg_latency_peak(s.activity).as_secs_f64())
        .fold(0.0, f64::max);
    println!("\n(b) background-query latency:");
    println!(
        "  base latency          : {:.2}s (paper 1.06s)",
        bg.base_latency.as_secs_f64()
    );
    println!("  peak during transfers : {peak:.2}s (paper >5s)");
    println!(
        "  time-weighted average : {:.3}s -> {:.1}% slowdown (paper 2.5%)",
        bg.avg_bg_latency().as_secs_f64(),
        bg.bg_slowdown_percent()
    );

    // Multistore slowdown vs an idle DW.
    let mut sys2 = harness.system(harness.budgets(2.0), None);
    let quiet = sys2
        .run_workload(Variant::MsMiso, &harness.workload)
        .unwrap();
    let slow = (result.tti_total().as_secs_f64() / quiet.tti_total().as_secs_f64() - 1.0) * 100.0;
    println!("  multistore workload slowdown vs idle DW: {slow:.1}% (paper 2.5%)");
    let extra = Value::object(vec![
        ("busy_dw".into(), miso_bench::tti_value(&result)),
        ("idle_dw".into(), miso_bench::tti_value(&quiet)),
        ("bg_peak_latency_s".into(), Value::Float(peak)),
        ("multistore_slowdown_pct".into(), Value::Float(slow)),
    ]);
    miso_bench::write_report("fig9", extra);
}
