//! Table 2: mutual slowdown between the multistore workload and the DW
//! background reporting queries, for the four spare-capacity configurations.
//!
//! Paper:
//! ```text
//!   spare          DW-query slowdown   multistore slowdown
//!   IO  40%              1.1%                 2.5%
//!   IO  20%              1.7%                 4.0%
//!   CPU 40%              0.3%                 4.2%
//!   CPU 20%              0.8%                 5.0%
//! ```

use miso_bench::Harness;
use miso_core::Variant;
use miso_data::Value;
use miso_workload::background::paper_profiles;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    // Baseline: multistore workload against an idle DW.
    let mut quiet_sys = harness.system(harness.budgets(2.0), None);
    let quiet = quiet_sys
        .run_workload(Variant::MsMiso, &harness.workload)
        .unwrap();
    let quiet_total = quiet.tti_total().as_secs_f64();

    println!("Table 2: impact of multistore workload on DW queries and vice-versa\n");
    println!(
        "{:>10} {:>22} {:>24}",
        "spare", "DW-query slowdown", "multistore slowdown"
    );
    let paper = [(1.1, 2.5), (1.7, 4.0), (0.3, 4.2), (0.8, 5.0)];
    let mut report_rows = Vec::new();
    for (profile, (p_dw, p_ms)) in paper_profiles().into_iter().zip(paper) {
        let mut sys = harness.system(harness.budgets(2.0), Some(profile.simulator()));
        let result = sys
            .run_workload(Variant::MsMiso, &harness.workload)
            .unwrap();
        let bg = sys.background().unwrap();
        let dw_slow = bg.bg_slowdown_percent();
        let ms_slow = (result.tti_total().as_secs_f64() / quiet_total - 1.0) * 100.0;
        println!(
            "{:>10} {:>13.1}% ({p_dw}%) {:>16.1}% ({p_ms}%)",
            profile.label(),
            dw_slow,
            ms_slow
        );
        report_rows.push(Value::object(vec![
            ("spare".into(), Value::str(profile.label())),
            ("dw_slowdown_pct".into(), Value::Float(dw_slow)),
            ("multistore_slowdown_pct".into(), Value::Float(ms_slow)),
        ]));
    }
    println!("\n(parenthesized values: paper)");
    let extra = Value::object(vec![
        ("idle_baseline".into(), miso_bench::tti_value(&quiet)),
        ("rows".into(), Value::Array(report_rows)),
    ]);
    miso_bench::write_report("table2", extra);
}
