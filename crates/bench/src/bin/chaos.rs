//! Chaos benchmark: the standard 32-query stream (MS-MISO, 2× budgets)
//! under a seeded fault plan.
//!
//! Runs the workload twice — once fault-free, once with faults injected at
//! the `hv.execute` / `dw.execute` / `transfer.ship` / `reorg.step` fail
//! points — and verifies the robustness layer end to end: every query
//! completes, per-query results are identical to the fault-free run, and
//! crash-interrupted reorganizations recover. Exits non-zero on any
//! divergence, which makes this binary the CI chaos smoke test.
//!
//! Set `MISO_CHAOS=<spec>` to override the default fault plan (see the
//! `miso-chaos` crate docs for the grammar).

use miso_bench::{ks, tti_value, Harness};
use miso_core::Variant;
use miso_data::Value;

/// The default storm: an initial hard DW outage (the first 25 calls fail —
/// long enough to exhaust retries and trip the circuit breaker), then
/// intermittent DW and transfer failures, HV stragglers, and crashes
/// between reorg steps. No error injection at `hv.execute`: HV is the
/// fallback store, so an unlucky streak there is the one thing that
/// *should* fail a query.
const DEFAULT_SPEC: &str = "seed=42;dw.execute=error@u25;dw.execute=error@p0.2;\
                            transfer.ship=error@p0.25;hv.execute=delay:1.5@p0.1;\
                            reorg.step=crash@p0.15";

fn main() {
    if !miso_bench::obs_init() {
        // The report below surfaces the chaos/retry counters, so metrics
        // must flow even when MISO_OBS is unset.
        miso_obs::init(miso_obs::ObsConfig::ring(4096));
    }
    let harness = Harness::standard();

    // Fault-free baseline.
    let clean = harness.run(Variant::MsMiso, 2.0);

    // Faulted run under the (seeded, deterministic) plan.
    let spec = std::env::var("MISO_CHAOS").unwrap_or_else(|_| DEFAULT_SPEC.to_string());
    let plan = match miso_chaos::parse_spec(&spec) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("chaos: bad MISO_CHAOS spec: {e}");
            std::process::exit(2);
        }
    };
    miso_chaos::install(plan);
    let mut sys = harness.system(harness.budgets(2.0), None);
    let chaotic = match sys.run_workload(Variant::MsMiso, &harness.workload) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("chaos: workload failed under fault injection: {e}");
            std::process::exit(1);
        }
    };
    miso_chaos::disable();

    // Every query must complete with the fault-free answer.
    let mut mismatches = 0usize;
    for (c, f) in clean.records.iter().zip(&chaotic.records) {
        if c.result_rows != f.result_rows {
            eprintln!(
                "chaos: {} returned {} rows under faults, {} clean",
                f.label, f.result_rows, c.result_rows
            );
            mismatches += 1;
        }
    }
    if chaotic.records.len() != clean.records.len() {
        eprintln!(
            "chaos: {} of {} queries completed",
            chaotic.records.len(),
            clean.records.len()
        );
        mismatches += 1;
    }

    let recoveries: u64 = chaotic.reorgs.iter().map(|r| r.recoveries).sum();
    let rolled_back = chaotic.reorgs.iter().filter(|r| r.rolled_back).count();
    let snap = miso_obs::snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    println!("=== Chaos run (MS-MISO, 2x budgets, 32 queries) ===");
    println!("spec: {spec}");
    println!(
        "clean TTI: {:8.1} ks   under faults: {:8.1} ks ({:+.1}%)",
        ks(clean.tti_total()),
        ks(chaotic.tti_total()),
        100.0 * (chaotic.tti_total().as_secs_f64() / clean.tti_total().as_secs_f64() - 1.0),
    );
    println!(
        "queries: {}/{} completed, {} result mismatches",
        chaotic.records.len(),
        clean.records.len(),
        mismatches
    );
    println!(
        "injected: {} errors, {} delays, {} crashes",
        counter("chaos.errors_injected"),
        counter("chaos.delays_injected"),
        counter("chaos.crashes_injected"),
    );
    println!(
        "handled: {} retries, {} circuit opens, {} HV fallbacks, \
         {} reorg recoveries ({} rolled back)",
        counter("store.retries"),
        counter("store.circuit_open"),
        counter("query.hv_fallback"),
        recoveries,
        rolled_back,
    );

    miso_bench::write_report(
        "chaos",
        Value::object(vec![
            ("spec".into(), Value::str(spec.as_str())),
            ("clean".into(), tti_value(&clean)),
            ("faulted".into(), tti_value(&chaotic)),
            ("mismatches".into(), Value::Int(mismatches as i64)),
            ("reorg_recoveries".into(), Value::Int(recoveries as i64)),
            ("reorgs_rolled_back".into(), Value::Int(rolled_back as i64)),
        ]),
    );

    if mismatches > 0 {
        std::process::exit(1);
    }
    println!("chaos: all queries correct under fault injection");
}
