//! Figure 3: execution-time profile of *all* multistore plans of a single
//! query (each plan = one split), ordered by increasing total time, with the
//! HV / DUMP / TRANSFER+LOAD / DW component breakdown.
//!
//! Paper shape: the best plan (far left, "B") is only ~10% faster than the
//! HV-only plan ("H"); early splits (marked "S") that ship large working
//! sets are several times worse; good plans all transfer small, late
//! working sets.

use miso_bench::Harness;
use miso_common::SimDuration;
use miso_core::Variant;
use miso_data::Value;
use miso_dw::DwStore;
use miso_hv::HvStore;
use miso_optimizer::cost::{estimate_split_cost, TransferModel};
use miso_plan::estimate::estimate_plan;
use miso_plan::split::enumerate_splits;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let mut profiles = Vec::new();
    // The paper profiles A1v1, a complex query with joins, aggregates and
    // UDF-free structure; we use A8v1 (the three-way join) as the profiled
    // query since it has the richest split space, and also print A1v1.
    for target in ["A1v1", "A8v1"] {
        let (label, plan) = harness
            .workload
            .iter()
            .find(|(l, _)| l == target)
            .expect("workload query");
        println!("=== Figure 3 profile for {label} (cold design, all splits) ===");
        let hv_store = HvStore::new();
        let dw_store = DwStore::new();
        let transfer = TransferModel::paper_default();

        let mut stats = miso_plan::estimate::MapStats::new();
        stats.set_log(
            "twitter",
            harness.corpus.twitter.len() as f64,
            harness.corpus.twitter.size.as_bytes() as f64,
        );
        stats.set_log(
            "foursquare",
            harness.corpus.foursquare.len() as f64,
            harness.corpus.foursquare.size.as_bytes() as f64,
        );
        stats.set_log(
            "landmarks",
            harness.corpus.landmarks.len() as f64,
            harness.corpus.landmarks.size.as_bytes() as f64,
        );
        let estimates = estimate_plan(plan, &stats);

        let mut rows: Vec<(
            SimDuration,
            SimDuration,
            SimDuration,
            SimDuration,
            usize,
            bool,
        )> = Vec::new();
        let splits = enumerate_splits(plan);
        let mut hv_only_total = SimDuration::ZERO;
        for split in &splits {
            let c = estimate_split_cost(
                plan,
                split,
                &estimates,
                &hv_store.cost_model,
                &dw_store.cost_model,
                &transfer,
            );
            // Split the transfer bar into DUMP and TRANSFER+LOAD like the
            // paper's green/yellow components.
            let cut_bytes: u64 = split
                .cut_nodes(plan)
                .iter()
                .map(|c| estimates[c].bytes as u64)
                .sum();
            let dump = hv_store
                .cost_model
                .dump_cost(miso_common::ByteSize::from_bytes(cut_bytes));
            let xferload = c.transfer.saturating_sub(dump);
            let is_hv_only = split.is_hv_only(plan);
            if is_hv_only {
                hv_only_total = c.total();
            }
            rows.push((
                c.hv,
                dump,
                xferload,
                c.dw,
                split.hv_nodes().len(),
                is_hv_only,
            ));
        }
        rows.sort_by_key(|r| r.0 + r.1 + r.2 + r.3);

        println!(
            "{} plans (one per valid split); times in simulated seconds",
            rows.len()
        );
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>9} {:>10} {:>7} mark",
            "plan", "HV", "DUMP", "XFER+LOAD", "DW", "total", "hv_ops"
        );
        let best = rows.first().map(|r| r.0 + r.1 + r.2 + r.3).unwrap();
        for (i, (hv, dump, xl, dw, hv_ops, is_h)) in rows.iter().enumerate() {
            let total = *hv + *dump + *xl + *dw;
            let mark = if i == 0 {
                "B (best)"
            } else if *is_h {
                "H (HV-only)"
            } else if total.as_secs_f64() > hv_only_total.as_secs_f64() * 1.5 {
                "S (bad early split)"
            } else {
                ""
            };
            println!(
                "{:>5} {:>9.0} {:>9.0} {:>9.0} {:>9.1} {:>10.0} {:>7} {}",
                i + 1,
                hv.as_secs_f64(),
                dump.as_secs_f64(),
                xl.as_secs_f64(),
                dw.as_secs_f64(),
                total.as_secs_f64(),
                hv_ops,
                mark
            );
        }
        let gain = (1.0 - best.as_secs_f64() / hv_only_total.as_secs_f64()) * 100.0;
        println!(
            "\nbest plan vs HV-only: {gain:.1}% faster (paper: ~10%); worst/HV-only: {:.1}x\n",
            rows.last()
                .map(|r| (r.0 + r.1 + r.2 + r.3).as_secs_f64())
                .unwrap()
                / hv_only_total.as_secs_f64()
        );
        profiles.push(Value::object(vec![
            ("query".into(), Value::str(label.as_str())),
            ("plans".into(), Value::Int(rows.len() as i64)),
            ("best_s".into(), Value::Float(best.as_secs_f64())),
            (
                "hv_only_s".into(),
                Value::Float(hv_only_total.as_secs_f64()),
            ),
            ("gain_pct".into(), Value::Float(gain)),
        ]));
    }
    // The profile above is a static estimation pass; additionally run the
    // MS-MISO stream (silently — the printed figure is unchanged) so traces
    // carry the full query lifecycle (parse → optimize → split → hv/dw exec
    // → transfer) and the tuner epochs, and the run report carries the
    // optimizer/knapsack/tuner counters.
    let stream = harness.run(Variant::MsMiso, 2.0);

    // EXPLAIN ANALYZE: re-run the two profiled queries through a fresh
    // MS-MISO system with per-operator profiling forced on. The annotated
    // trees print only under MISO_XRAY=1 — the default figure output above
    // is byte-identical with profiling off — but the JSON artifacts always
    // land in the run report.
    let xray_queries: Vec<_> = harness
        .workload
        .iter()
        .filter(|(l, _)| l == "A1v1" || l == "A8v1")
        .cloned()
        .collect();
    let was_profiling = miso_exec::profile::enabled();
    miso_exec::profile::set_enabled(true);
    let mut sys = harness.system(harness.budgets(2.0), None);
    sys.run_workload(Variant::MsMiso, &xray_queries)
        .expect("xray mini-run");
    miso_exec::profile::set_enabled(was_profiling);
    let xrays = sys.take_xrays();
    if std::env::var_os("MISO_XRAY").is_some() {
        let snap = miso_obs::snapshot();
        for x in &xrays {
            println!("{}", miso_xray::explain_analyze_with_metrics(x, &snap));
        }
    }

    let extra = Value::object(vec![
        ("profiles".into(), Value::Array(profiles)),
        ("ms_miso_stream".into(), miso_bench::tti_value(&stream)),
        (
            "explain_analyze".into(),
            Value::Array(xrays.iter().map(|x| x.to_value()).collect()),
        ),
        (
            "calibration".into(),
            Value::Array(stream.calibrations.iter().map(|c| c.to_value()).collect()),
        ),
    ]);
    miso_bench::write_report("fig3", extra);
}
