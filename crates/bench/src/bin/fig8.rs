//! Figure 8: TTI of MS-LRU / MS-OFF / MS-MISO as the view storage budgets
//! sweep 0.125× → 4×, transfer budget held constant.
//!
//! Paper shape: MS-MISO best at every budget; MS-OFF and MS-LRU improve
//! with budget and all three converge at 2–4× where storage is plentiful.

use miso_bench::{ks, Harness};
use miso_core::Variant;
use miso_data::Value;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let multiples = [0.125, 0.5, 1.0, 2.0, 4.0];
    let variants = [Variant::MsLru, Variant::MsOff, Variant::MsMiso];
    println!("Figure 8: TTI (10^3 s) while sweeping view storage budgets\n");
    print!("{:>8}", "budget");
    for v in variants {
        print!(" {:>9}", v.name());
    }
    println!();
    let mut table = Vec::new();
    for &m in &multiples {
        print!("{:>8}", format!("{m}x"));
        let mut row = Vec::new();
        for v in variants {
            let r = harness.run(v, m);
            print!(" {:>9.1}", ks(r.tti_total()));
            row.push(r.tti_total().as_secs_f64());
        }
        println!();
        table.push(row);
    }
    let csv_rows: Vec<Vec<String>> = multiples
        .iter()
        .zip(&table)
        .map(|(m, r)| {
            let mut out = vec![format!("{m}")];
            out.extend(r.iter().map(|v| format!("{:.1}", v / 1000.0)));
            out
        })
        .collect();
    let _ = miso_bench::write_csv(
        "fig8",
        &["budget_multiple", "ms_lru_ks", "ms_off_ks", "ms_miso_ks"],
        &csv_rows,
    );
    // Shape checks.
    let miso_small = table[0][2];
    let lru_small = table[0][0];
    let off_small = table[0][1];
    println!("\nShape vs paper:");
    println!(
        "  at 0.125x MS-MISO beats MS-LRU by {:.0}% (paper large gap) and MS-OFF by {:.0}%",
        (1.0 - miso_small / lru_small) * 100.0,
        (1.0 - miso_small / off_small) * 100.0
    );
    let spread_small: f64 = table[0].iter().cloned().fold(f64::MIN, f64::max)
        / table[0].iter().cloned().fold(f64::MAX, f64::min);
    let spread_big: f64 = table[4].iter().cloned().fold(f64::MIN, f64::max)
        / table[4].iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "  spread (worst/best) at 0.125x: {spread_small:.2}; at 4x: {spread_big:.2} (paper: converging)"
    );
    let sweep: Vec<Value> = multiples
        .iter()
        .zip(&table)
        .map(|(&m, row)| {
            Value::object(vec![
                ("budget_multiple".into(), Value::Float(m)),
                ("ms_lru_s".into(), Value::Float(row[0])),
                ("ms_off_s".into(), Value::Float(row[1])),
                ("ms_miso_s".into(), Value::Float(row[2])),
            ])
        })
        .collect();
    let extra = Value::object(vec![("sweep".into(), Value::Array(sweep))]);
    miso_bench::write_report("fig8", extra);
}
