//! Figure 7: TTI comparison of multistore tuning techniques at constrained
//! budgets (`B_h = B_d = 0.125×`, `B_t = 10 GB`).
//!
//! Paper shape: MS-BASIC worst; MS-OFF worst among tuned (its one-shot
//! design can't track the workload under small budgets); MS-MISO ~60% better
//! than MS-OFF and ~56% better than MS-LRU; MS-ORA (oracle) ~32% better than
//! MS-MISO.

use miso_bench::{ks, row, Harness};
use miso_core::Variant;
use miso_data::Value;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let variants = [
        Variant::MsBasic,
        Variant::MsOff,
        Variant::MsLru,
        Variant::MsMiso,
        Variant::MsOra,
    ];
    println!("Figure 7: tuning-technique comparison at B = 0.125x\n");
    let widths = [9usize, 9, 9, 9, 9, 9];
    println!(
        "{}",
        row(
            &["variant", "DW-EXE", "TRANSFER", "TUNE", "HV-EXE", "TTI"].map(String::from),
            &widths
        )
    );
    let mut results = Vec::new();
    let mut report_variants = Vec::new();
    for variant in variants {
        let r = harness.run(variant, 0.125);
        println!(
            "{}",
            row(
                &[
                    variant.name().to_string(),
                    format!("{:.1}", ks(r.tti.dw_exe)),
                    format!("{:.1}", ks(r.tti.transfer)),
                    format!("{:.1}", ks(r.tti.tune)),
                    format!("{:.1}", ks(r.tti.hv_exe)),
                    format!("{:.1}", ks(r.tti_total())),
                ],
                &widths
            )
        );
        report_variants.push(miso_bench::tti_value(&r));
        results.push((variant, r.tti_total().as_secs_f64()));
    }
    let t = |v: Variant| results.iter().find(|(x, _)| *x == v).unwrap().1;
    println!("\nRelations vs paper:");
    println!(
        "  MS-MISO vs MS-OFF : {:+.0}% improvement (paper ~60%)",
        (1.0 - t(Variant::MsMiso) / t(Variant::MsOff)) * 100.0
    );
    println!(
        "  MS-MISO vs MS-LRU : {:+.0}% improvement (paper ~56%)",
        (1.0 - t(Variant::MsMiso) / t(Variant::MsLru)) * 100.0
    );
    println!(
        "  MS-MISO vs MS-ORA : {:+.0}% worse (paper ~32% worse)",
        (t(Variant::MsMiso) / t(Variant::MsOra) - 1.0) * 100.0
    );
    println!(
        "  MS-BASIC is worst : {}",
        results
            .iter()
            .all(|(v, total)| *v == Variant::MsBasic || *total <= t(Variant::MsBasic) + 1e-9)
    );
    let extra = Value::object(vec![("variants".into(), Value::Array(report_variants))]);
    miso_bench::write_report("fig7", extra);
}
