//! Ablation study: which of MISO's design choices actually matter?
//!
//! Knocks out one ingredient at a time (paper §4's heuristics and §6's
//! discussion knobs) and measures the damage on the standard workload:
//!
//! * **no benefit decay** — uniform weights over the history window;
//! * **short / long history** — window 3 vs 12 (default 6);
//! * **rare reorganization** — every 8 queries instead of every 3;
//! * **transfer budget sweep** — the §6 `B_t` trade-off;
//! * **no interactions** — doi threshold ∞ (each view independent).

use miso_bench::{ks, Harness};
use miso_core::{SystemConfig, Variant};
use miso_data::Value;

fn run_with(harness: &Harness, tweak: impl FnOnce(&mut SystemConfig)) -> f64 {
    let mut config = SystemConfig::paper_default(harness.budgets(2.0));
    tweak(&mut config);
    let mut sys = miso_core::MultistoreSystem::new(
        &harness.corpus,
        miso_workload::workload_catalog(),
        miso_workload::standard_udfs(),
        config,
    );
    let r = sys
        .run_workload(Variant::MsMiso, &harness.workload)
        .unwrap();
    ks(r.tti_total())
}

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    println!("Ablations of MS-MISO (B = 2x); TTI in 10^3 simulated seconds\n");
    let baseline = run_with(&harness, |_| {});
    println!("{:<34} {:>8.1}", "baseline (paper defaults)", baseline);

    type Tweak = Box<dyn FnOnce(&mut SystemConfig)>;
    let cases: Vec<(&str, Tweak)> = vec![
        (
            "no benefit decay (uniform weights)",
            Box::new(|c: &mut SystemConfig| c.decay = 1.0),
        ),
        (
            "short history (window 3)",
            Box::new(|c: &mut SystemConfig| c.history_len = 3),
        ),
        (
            "long history (window 12)",
            Box::new(|c: &mut SystemConfig| c.history_len = 12),
        ),
        (
            "rare reorganization (every 8)",
            Box::new(|c: &mut SystemConfig| c.reorg_every = 8),
        ),
        (
            "eager reorganization (every 1)",
            Box::new(|c: &mut SystemConfig| c.reorg_every = 1),
        ),
        (
            "no interaction handling",
            Box::new(|c: &mut SystemConfig| c.doi_threshold = f64::INFINITY),
        ),
        (
            "tiny transfer budget (Bt/8)",
            Box::new(|c: &mut SystemConfig| c.budgets.transfer = c.budgets.transfer.scale(0.125)),
        ),
        (
            "huge transfer budget (Bt*8)",
            Box::new(|c: &mut SystemConfig| c.budgets.transfer = c.budgets.transfer.scale(8.0)),
        ),
    ];
    let mut report_cases = vec![Value::object(vec![
        ("case".into(), Value::str("baseline")),
        ("tti_ks".into(), Value::Float(baseline)),
    ])];
    for (label, tweak) in cases {
        let total = run_with(&harness, tweak);
        println!(
            "{label:<34} {total:>8.1}  ({:+.1}% vs baseline)",
            (total / baseline - 1.0) * 100.0
        );
        report_cases.push(Value::object(vec![
            ("case".into(), Value::str(label)),
            ("tti_ks".into(), Value::Float(total)),
            (
                "delta_pct".into(),
                Value::Float((total / baseline - 1.0) * 100.0),
            ),
        ]));
    }
    println!(
        "\nreading: positive deltas mean the knocked-out ingredient was \
         pulling its weight; Bt rows reproduce the §6 discussion (too small \
         starves DW placement; larger helps with diminishing returns and \
         more DW impact per phase)."
    );
    let extra = Value::object(vec![("cases".into(), Value::Array(report_cases))]);
    miso_bench::write_report("ablation", extra);
}
