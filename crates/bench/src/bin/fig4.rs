//! Figure 4: TTI of the five system variants, with the component breakdown
//! (DW-EXE / TRANSFER / TUNE / HV-EXE / ETL).
//!
//! Paper result: MS-MISO best (4.3× over HV-ONLY, 3.1× over MS-BASIC, 1.8×
//! over HV-OP); DW-ONLY worst (ETL dominates, ~3% slower than HV-ONLY);
//! MS-BASIC ≈ 1.2× over HV-ONLY. Budgets: `B_h = B_d = 2×`, `B_t = 10 GB`.

use miso_bench::{ks, row, Harness};
use miso_core::Variant;
use miso_data::Value;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let variants = [
        Variant::HvOnly,
        Variant::DwOnly,
        Variant::MsBasic,
        Variant::HvOp,
        Variant::MsMiso,
    ];
    println!(
        "Figure 4: TTI by system variant (10^3 simulated seconds), B = 2x, Bt = 10GB-equivalent\n"
    );
    let widths = [9usize, 9, 9, 9, 9, 9, 9];
    println!(
        "{}",
        row(
            &["variant", "DW-EXE", "TRANSFER", "TUNE", "HV-EXE", "ETL", "TTI"].map(String::from),
            &widths
        )
    );
    let mut results = Vec::new();
    for variant in variants {
        let r = harness.run(variant, 2.0);
        println!(
            "{}",
            row(
                &[
                    variant.name().to_string(),
                    format!("{:.1}", ks(r.tti.dw_exe)),
                    format!("{:.1}", ks(r.tti.transfer)),
                    format!("{:.1}", ks(r.tti.tune)),
                    format!("{:.1}", ks(r.tti.hv_exe)),
                    format!("{:.1}", ks(r.tti.etl)),
                    format!("{:.1}", ks(r.tti_total())),
                ],
                &widths
            )
        );
        results.push((variant, r));
    }
    let csv_rows: Vec<Vec<String>> = results
        .iter()
        .map(|(v, r)| {
            vec![
                v.name().to_string(),
                format!("{:.3}", ks(r.tti.dw_exe)),
                format!("{:.3}", ks(r.tti.transfer)),
                format!("{:.3}", ks(r.tti.tune)),
                format!("{:.3}", ks(r.tti.hv_exe)),
                format!("{:.3}", ks(r.tti.etl)),
                format!("{:.3}", ks(r.tti_total())),
            ]
        })
        .collect();
    let _ = miso_bench::write_csv(
        "fig4",
        &[
            "variant",
            "dw_exe_ks",
            "transfer_ks",
            "tune_ks",
            "hv_exe_ks",
            "etl_ks",
            "tti_ks",
        ],
        &csv_rows,
    );
    let tti = |v: Variant| {
        results
            .iter()
            .find(|(x, _)| *x == v)
            .map(|(_, r)| r.tti_total().as_secs_f64())
            .unwrap()
    };
    println!("\nSpeedups vs paper:");
    println!(
        "  MS-MISO over HV-ONLY : {:.1}x   (paper 4.3x)",
        tti(Variant::HvOnly) / tti(Variant::MsMiso)
    );
    println!(
        "  MS-MISO over MS-BASIC: {:.1}x   (paper 3.1x)",
        tti(Variant::MsBasic) / tti(Variant::MsMiso)
    );
    println!(
        "  MS-MISO over HV-OP   : {:.1}x   (paper 1.8x)",
        tti(Variant::HvOp) / tti(Variant::MsMiso)
    );
    println!(
        "  MS-BASIC over HV-ONLY: {:.2}x   (paper ~1.2x)",
        tti(Variant::HvOnly) / tti(Variant::MsBasic)
    );
    println!(
        "  DW-ONLY vs HV-ONLY   : {:+.1}%  (paper +3% slower)",
        (tti(Variant::DwOnly) / tti(Variant::HvOnly) - 1.0) * 100.0
    );
    let extra = Value::object(vec![(
        "variants".into(),
        Value::Array(
            results
                .iter()
                .map(|(_, r)| miso_bench::tti_value(r))
                .collect(),
        ),
    )]);
    miso_bench::write_report("fig4", extra);
}
