//! Beyond the paper: view-maintenance policies under append-only log growth
//! (the §6 future-work scenario, implemented in `miso_core::maintenance`).
//!
//! Interleaves the evolutionary workload with tweet-log append batches and
//! compares total cost (query execution + maintenance) for the two
//! policies, against a no-append baseline.

use miso_bench::{ks, Harness};
use miso_core::{MaintenancePolicy, Variant};
use miso_data::logs::{generate_delta, LogKind, LogsConfig};
use miso_data::Value;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let cfg = LogsConfig::experiment();
    println!("View maintenance under streaming appends (4 batches x 2000 tweets)\n");
    println!(
        "{:>12} {:>11} {:>12} {:>11} {:>9}",
        "policy", "exec (ks)", "maint (ks)", "total (ks)", "views"
    );

    // Baseline: no appends.
    {
        let mut sys = harness.system(harness.budgets(2.0), None);
        let r = sys
            .run_workload(Variant::MsMiso, &harness.workload)
            .unwrap();
        println!(
            "{:>12} {:>11.1} {:>12.1} {:>11.1} {:>9}",
            "(no appends)",
            ks(r.tti_total()),
            0.0,
            ks(r.tti_total()),
            sys.catalog.len()
        );
    }

    let mut report_rows = Vec::new();
    for policy in [MaintenancePolicy::Invalidate, MaintenancePolicy::Refresh] {
        let mut sys = harness.system(harness.budgets(2.0), None);
        let mut clock = miso_common::SimClock::new();
        let mut exec = miso_common::SimDuration::ZERO;
        let mut maint = miso_common::SimDuration::ZERO;
        // 8 queries, then a batch, repeated.
        for (i, chunk) in harness.workload.chunks(8).enumerate() {
            let r = sys.run_workload(Variant::MsMiso, chunk).unwrap();
            exec += r.tti_total();
            let delta = generate_delta(&cfg, LogKind::Twitter, i as u64, 2000);
            let report = sys
                .append_log(LogKind::Twitter, delta, policy, &mut clock)
                .unwrap();
            maint += report.cost;
        }
        println!(
            "{:>12} {:>11.1} {:>12.1} {:>11.1} {:>9}",
            format!("{policy:?}"),
            ks(exec),
            ks(maint),
            ks(exec + maint),
            sys.catalog.len()
        );
        report_rows.push(Value::object(vec![
            ("policy".into(), Value::str(format!("{policy:?}"))),
            ("exec_ks".into(), Value::Float(ks(exec))),
            ("maint_ks".into(), Value::Float(ks(maint))),
            ("total_ks".into(), Value::Float(ks(exec + maint))),
            ("views".into(), Value::Int(sys.catalog.len() as i64)),
        ]));
    }
    println!(
        "\nnote: run_workload per chunk resets the stream clock, so exec \
         columns are comparable across rows; `views` is the live design at \
         the end."
    );
    let extra = Value::object(vec![("policies".into(), Value::Array(report_rows))]);
    miso_bench::write_report("maintenance", extra);
}
