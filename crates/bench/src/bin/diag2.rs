//! Diagnostic: MS-MISO per-query breakdown, reorg decisions, DW design.

use miso_bench::{ks, Harness};
use miso_core::Variant;

fn main() {
    let harness = Harness::standard();
    let mut sys = harness.system(harness.budgets(2.0), None);
    let r = sys
        .run_workload(Variant::MsMiso, &harness.workload)
        .unwrap();
    println!("label      hv(ks)  dw(s)  xfer(ks) views_used  hv_ops/dw_ops");
    for rec in &r.records {
        println!(
            "{:8} {:8.2} {:7.1} {:8.2} {:10} {}/{}",
            rec.label,
            ks(rec.hv),
            rec.dw.as_secs_f64(),
            ks(rec.transfer),
            rec.used_views.len(),
            rec.hv_ops,
            rec.dw_ops,
        );
    }
    println!("\nreorgs:");
    for (i, reorg) in r.reorgs.iter().enumerate() {
        println!(
            "  R{i}: to_dw={} to_hv={} dropped={} bytes={} dur={}",
            reorg.moved_to_dw.len(),
            reorg.moved_to_hv.len(),
            reorg.dropped.len(),
            reorg.bytes_moved,
            reorg.duration
        );
    }
    println!("\nfinal DW views: {:?}", sys.dw.view_names().len());
    println!("final HV views: {:?}", sys.hv.view_names().len());
    println!(
        "DW bytes: {} (budget {})",
        sys.dw.total_view_bytes(),
        harness.budgets(2.0).dw_storage
    );
}
