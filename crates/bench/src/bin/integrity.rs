//! Integrity benchmark: the standard 32-query stream (MS-MISO, 2× budgets)
//! under silent-corruption injection.
//!
//! Runs the workload twice with read-time verification and the
//! between-epoch auditor enabled — once clean, once with `corrupt` faults
//! injected at the `hv.view_read` / `dw.view_read` / `transfer.ship` /
//! `reorg.step` points — and verifies the integrity layer end to end:
//! every query returns the clean run's answer (corrupt views are
//! quarantined and re-planned around, never served), corruption is
//! actually detected (`integrity.checksum_failures` > 0), and the
//! self-healing paths actually repair (`integrity.repaired` > 0). Exits
//! non-zero on any divergence, which makes this binary the CI integrity
//! smoke test.
//!
//! Set `MISO_CHAOS=<spec>` to override the default corruption plan.

use miso_bench::{ks, tti_value, Harness};
use miso_core::{AuditConfig, SystemConfig, Variant};
use miso_data::Value;

/// The default bit-rot storm: stored view copies silently corrupted on
/// read in both stores, plus in-flight corruption of shipped working sets
/// and reorg staging copies.
const DEFAULT_SPEC: &str = "seed=1337;dw.view_read=corrupt@p0.15;\
                            hv.view_read=corrupt@p0.1;transfer.ship=corrupt@p0.1;\
                            reorg.step=corrupt@p0.1";

fn main() {
    if !miso_bench::obs_init() {
        // The report surfaces the integrity counters, so metrics must
        // flow even when MISO_OBS is unset.
        miso_obs::init(miso_obs::ObsConfig::ring(4096));
    }
    let harness = Harness::standard();
    // Same integrity posture for both runs: verify every view read and
    // audit (counting mode) between epochs, so the clean run also proves
    // the fault-free overhead does not change any answer.
    miso_common::integrity::set_verify_on_read(true);
    let config = |harness: &Harness| -> SystemConfig {
        let mut c = SystemConfig::paper_default(harness.budgets(2.0));
        c.audit = Some(AuditConfig::counting(harness.hv_base()));
        c
    };

    // Clean baseline.
    let mut sys = harness.system_with(config(&harness));
    let clean = sys
        .run_workload(Variant::MsMiso, &harness.workload)
        .expect("clean run");
    let after_clean = miso_obs::snapshot();
    let clean_failures = after_clean
        .counters
        .get("integrity.checksum_failures")
        .copied()
        .unwrap_or(0);

    // Corrupted run under the (seeded, deterministic) plan.
    let spec = std::env::var("MISO_CHAOS").unwrap_or_else(|_| DEFAULT_SPEC.to_string());
    let plan = match miso_chaos::parse_spec(&spec) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("integrity: bad MISO_CHAOS spec: {e}");
            std::process::exit(2);
        }
    };
    miso_chaos::install(plan);
    let mut sys = harness.system_with(config(&harness));
    let corrupted = match sys.run_workload(Variant::MsMiso, &harness.workload) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("integrity: workload failed under corruption: {e}");
            std::process::exit(1);
        }
    };
    miso_chaos::disable();

    // Query-by-query answer agreement with the clean run.
    let mut mismatches = 0usize;
    for (c, f) in clean.records.iter().zip(&corrupted.records) {
        if c.result_rows != f.result_rows {
            eprintln!(
                "integrity: {} returned {} rows under corruption, {} clean",
                f.label, f.result_rows, c.result_rows
            );
            mismatches += 1;
        }
    }
    if corrupted.records.len() != clean.records.len() {
        eprintln!(
            "integrity: {} of {} queries completed",
            corrupted.records.len(),
            clean.records.len()
        );
        mismatches += 1;
    }

    let snap = miso_obs::snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let tuner_repairs: u64 = corrupted
        .reorgs
        .iter()
        .map(|r| r.repaired.len() as u64)
        .sum();

    println!("=== Integrity run (MS-MISO, 2x budgets, 32 queries) ===");
    println!("spec: {spec}");
    println!(
        "clean TTI: {:8.1} ks   under corruption: {:8.1} ks ({:+.1}%)",
        ks(clean.tti_total()),
        ks(corrupted.tti_total()),
        100.0 * (corrupted.tti_total().as_secs_f64() / clean.tti_total().as_secs_f64() - 1.0),
    );
    println!(
        "queries: {}/{} completed, {} result mismatches",
        corrupted.records.len(),
        clean.records.len(),
        mismatches
    );
    println!(
        "injected: {} corruptions   detected: {} checksum failures \
         (clean run: {clean_failures})",
        counter("chaos.corruptions_injected"),
        counter("integrity.checksum_failures"),
    );
    println!(
        "handled: {} quarantined, {} repaired ({} by the tuner), \
         {} view fallbacks, {} re-ships",
        counter("integrity.quarantined"),
        counter("integrity.repaired"),
        tuner_repairs,
        counter("query.view_fallback"),
        counter("transfer.reshipped"),
    );
    println!(
        "audit: {} passes, {} views scrubbed, {} violations",
        counter("audit.passes"),
        counter("audit.views_scrubbed"),
        counter("audit.violations"),
    );

    miso_bench::write_report(
        "integrity",
        Value::object(vec![
            ("spec".into(), Value::str(spec.as_str())),
            ("clean".into(), tti_value(&clean)),
            ("corrupted".into(), tti_value(&corrupted)),
            ("mismatches".into(), Value::Int(mismatches as i64)),
            (
                "corruptions_injected".into(),
                Value::Int(counter("chaos.corruptions_injected") as i64),
            ),
            (
                "checksum_failures".into(),
                Value::Int(counter("integrity.checksum_failures") as i64),
            ),
            (
                "quarantined".into(),
                Value::Int(counter("integrity.quarantined") as i64),
            ),
            (
                "repaired".into(),
                Value::Int(counter("integrity.repaired") as i64),
            ),
            ("tuner_repairs".into(), Value::Int(tuner_repairs as i64)),
            (
                "view_fallbacks".into(),
                Value::Int(counter("query.view_fallback") as i64),
            ),
            (
                "audit_violations".into(),
                Value::Int(counter("audit.violations") as i64),
            ),
        ]),
    );

    let mut failed = false;
    if mismatches > 0 {
        failed = true;
    }
    if clean_failures > 0 {
        eprintln!("integrity: clean run reported {clean_failures} checksum failures");
        failed = true;
    }
    if counter("integrity.checksum_failures") == 0 {
        eprintln!("integrity: corruption was injected but never detected");
        failed = true;
    }
    if counter("integrity.repaired") == 0 {
        eprintln!("integrity: views were quarantined but never repaired");
        failed = true;
    }
    if counter("audit.violations") > 0 {
        eprintln!(
            "integrity: auditor found {} invariant violations",
            counter("audit.violations")
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("integrity: all queries correct under silent corruption");
}
