//! Figure 5: (a) cumulative TTI vs queries completed and (b) query
//! execution-time distribution, for the five §5.2 variants.
//!
//! Paper shape: (a) DW-ONLY is flat until ETL completes, then jumps;
//! MS-MISO has the lowest curve while allowing immediate querying.
//! (b) DW-ONLY has the fastest queries (65% < 10 s, 84%... < 100 s);
//! HV-ONLY the slowest (< 3% under 1000 s); MS-MISO completes ≥ 30% of
//! queries in under 100 s.

use miso_bench::{ks, Harness};
use miso_core::Variant;
use miso_data::Value;

const VARIANTS: [Variant; 5] = [
    Variant::HvOnly,
    Variant::DwOnly,
    Variant::MsBasic,
    Variant::HvOp,
    Variant::MsMiso,
];

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let results: Vec<_> = VARIANTS.iter().map(|&v| (v, harness.run(v, 2.0))).collect();

    println!("Figure 5(a): cumulative TTI (10^3 s) after each completed query\n");
    print!("{:>7}", "query");
    for (v, _) in &results {
        print!(" {:>9}", v.name());
    }
    println!();
    let n = harness.workload.len();
    for i in (3..=n).step_by(4).chain([n]) {
        print!("{:>7}", i);
        for (_, r) in &results {
            print!(" {:>9.1}", ks(r.cumulative_tti()[i - 1]));
        }
        println!();
    }

    println!("\nFigure 5(b): fraction of queries with execution time under bound\n");
    let bounds = [10.0, 100.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0, 50_000.0];
    print!("{:>10}", "bound(s)");
    for (v, _) in &results {
        print!(" {:>9}", v.name());
    }
    println!();
    for (bi, b) in bounds.iter().enumerate() {
        print!("{:>10}", format!("<{b}"));
        for (_, r) in &results {
            let cdf = r.exec_time_cdf(&bounds);
            print!(" {:>8.0}%", cdf[bi] * 100.0);
        }
        println!();
    }

    // Paper checkpoints.
    let get = |v: Variant| {
        results
            .iter()
            .find(|(x, _)| *x == v)
            .map(|(_, r)| r)
            .unwrap()
    };
    let dw = get(Variant::DwOnly);
    let hv = get(Variant::HvOnly);
    let miso = get(Variant::MsMiso);
    let dw_cdf = dw.exec_time_cdf(&[10.0, 100.0]);
    let hv_cdf = hv.exec_time_cdf(&[1_000.0]);
    let miso_cdf = miso.exec_time_cdf(&[100.0]);
    println!("\nCheckpoints vs paper:");
    println!(
        "  DW-ONLY <10s : {:>3.0}%   (paper ~65%)",
        dw_cdf[0] * 100.0
    );
    println!(
        "  DW-ONLY <100s: {:>3.0}%   (paper ~90%)",
        dw_cdf[1] * 100.0
    );
    println!("  HV-ONLY <1ks : {:>3.0}%   (paper <3%)", hv_cdf[0] * 100.0);
    println!(
        "  MS-MISO <100s: {:>3.0}%   (paper >=30%)",
        miso_cdf[0] * 100.0
    );
    let extra = Value::object(vec![(
        "variants".into(),
        Value::Array(
            results
                .iter()
                .map(|(_, r)| miso_bench::tti_value(r))
                .collect(),
        ),
    )]);
    miso_bench::write_report("fig5", extra);
}
