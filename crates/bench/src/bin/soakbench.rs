//! soakbench: the miso-guard endurance storm.
//!
//! Runs the standard 32-query MS-MISO stream for several epochs under a
//! combined fault storm — transient errors, pathological stalls, memory
//! hogs, silent corruption, and reorg crashes — with the full guard layer
//! engaged (deadlines, memory budgets, overload shedding) and read-time
//! integrity verification on. The binary asserts the control plane's core
//! promises:
//!
//! 1. **zero process deaths** — every epoch's workload returns, never
//!    panics or aborts;
//! 2. **zero wrong answers** — every query that completes returns the
//!    fault-free result (corrupt copies are quarantined, never served);
//! 3. **every loss is classified** — a query that does not complete has a
//!    [`miso_core::QueryFailure`] with a stable error kind (and a
//!    `retry_after` hint when it was shed at admission);
//! 4. **bounded memory** — the peak of guard-charged bytes never exceeds
//!    the configured per-query budget (over-budget charges are refused,
//!    not recorded).
//!
//! The deadline and budget are calibrated from a fault-free guarded run
//! (observe-only: no deadline, unlimited budget), so the storm's stalls
//! (×10⁴ cost) and hogs (×4096 charged bytes) reliably trip guards while
//! ordinary queries clear them. `--smoke` shortens the storm for CI.
//!
//! Exits non-zero on any violated invariant; writes
//! `results/soakbench.report.json`.

use miso_bench::{ks, tti_value, Harness};
use miso_common::ByteSize;
use miso_core::{GuardConfig, SystemConfig, Variant};
use miso_data::Value;
use std::collections::HashMap;

const FULL_EPOCHS: usize = 5;
const SMOKE_EPOCHS: usize = 2;

/// One epoch's seeded storm: DW outages and stalls, HV stragglers, memory
/// hogs on both stores, wire and at-rest corruption, and reorg crashes.
/// No plain `error` injection at `hv.execute`: HV is the fallback store,
/// and an unlucky streak there is the one thing that *should* fail a
/// query (which would abort the epoch, not classify it).
fn storm_spec(seed: u64) -> String {
    format!(
        "seed={seed};dw.execute=error@p0.1;dw.execute=stall@p0.05;dw.execute=hog:4096@p0.1;\
         hv.execute=delay:1.5@p0.08;hv.execute=stall@p0.04;hv.execute=hog:4096@p0.08;\
         transfer.ship=error@p0.15;transfer.ship=corrupt@p0.1;\
         dw.view_read=corrupt@p0.05;hv.view_read=corrupt@p0.05;\
         reorg.step=crash@p0.1"
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let epochs = if smoke { SMOKE_EPOCHS } else { FULL_EPOCHS };
    if !miso_bench::obs_init() {
        // The assertions below read the guard/chaos counters, so metrics
        // must flow even when MISO_OBS is unset.
        miso_obs::init(miso_obs::ObsConfig::ring(4096));
    }
    let harness = Harness::standard();

    // Fault-free calibration run with an observe-only guard (no deadline,
    // unlimited budget): yields the reference answers, the workload's
    // natural peak of charged bytes, and its slowest query.
    let mut cfg = SystemConfig::paper_default(harness.budgets(2.0));
    cfg.guard = GuardConfig {
        enabled: true,
        ..GuardConfig::disabled()
    };
    let mut sys = harness.system_with(cfg);
    let clean = sys
        .run_workload(Variant::MsMiso, &harness.workload)
        .expect("fault-free run succeeds");
    assert!(
        clean.failures.is_empty(),
        "observe-only guards must kill nothing"
    );
    let clean_rows: HashMap<&str, u64> = clean
        .records
        .iter()
        .map(|r| (r.label.as_str(), r.result_rows))
        .collect();
    let base_peak = sys.guard_peak_bytes().max(1);
    let max_exec = clean
        .records
        .iter()
        .map(|r| r.exec_total())
        .max()
        .expect("non-empty workload");

    // Deadline: generous headroom over the slowest clean query (delays and
    // retry backoffs fit easily) but far under a ×10⁴ stall. Budget: 2× the
    // natural peak, so a ×32 hog on any substantial query trips it.
    let deadline = max_exec * 100.0;
    let budget = ByteSize::from_bytes(base_peak.saturating_mul(2));

    println!("=== Soak storm (MS-MISO, 2x budgets, {epochs} epochs) ===");
    println!(
        "calibration: peak {} KiB charged, slowest query {:.1} s \
         -> deadline {:.1} s, budget {} KiB",
        base_peak / 1024,
        max_exec.as_secs_f64(),
        deadline.as_secs_f64(),
        budget.as_bytes() / 1024,
    );

    miso_common::integrity::set_verify_on_read(true);
    let mut aborts = 0usize;
    let mut mismatches = 0usize;
    let mut unclassified = 0usize;
    let mut budget_breaches = 0usize;
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut shed = 0usize;
    let mut peak_overall = 0u64;
    let mut epoch_values = Vec::new();
    for epoch in 0..epochs {
        let spec = storm_spec(1_000 + epoch as u64);
        let plan = miso_chaos::parse_spec(&spec).expect("storm spec parses");
        miso_chaos::install(plan);
        let mut cfg = SystemConfig::paper_default(harness.budgets(2.0));
        cfg.guard = GuardConfig {
            enabled: true,
            deadline: Some(deadline),
            mem_budget: budget,
            max_inflight: 1,
            shed_threshold: 3,
            shed_cooldown: deadline,
        };
        let mut sys = harness.system_with(cfg);
        let outcome = sys.run_workload(Variant::MsMiso, &harness.workload);
        miso_chaos::disable();
        let result = match outcome {
            Ok(r) => r,
            Err(e) => {
                eprintln!("soakbench: epoch {epoch} aborted: {e}");
                aborts += 1;
                continue;
            }
        };

        // Wrong answers: a completed query must match the fault-free run.
        let mut epoch_mismatches = 0usize;
        for r in &result.records {
            match clean_rows.get(r.label.as_str()) {
                Some(&rows) if rows == r.result_rows => {}
                _ => {
                    eprintln!(
                        "soakbench: epoch {epoch}: {} returned {} rows under storm, \
                         {} clean",
                        r.label,
                        r.result_rows,
                        clean_rows.get(r.label.as_str()).copied().unwrap_or(0),
                    );
                    epoch_mismatches += 1;
                }
            }
        }
        // Classified losses: completed + failed must account for the whole
        // stream, every failure carries a kind, sheds carry retry_after.
        if result.records.len() + result.failures.len() != harness.workload.len() {
            eprintln!(
                "soakbench: epoch {epoch}: {} completed + {} failed != {} queries",
                result.records.len(),
                result.failures.len(),
                harness.workload.len()
            );
            unclassified += 1;
        }
        for f in &result.failures {
            if f.kind.is_empty() || (f.shed && f.retry_after.is_none()) {
                eprintln!(
                    "soakbench: epoch {epoch}: unclassified failure for {}: kind={:?} \
                     shed={} retry_after={:?}",
                    f.label, f.kind, f.shed, f.retry_after
                );
                unclassified += 1;
            }
        }
        // Bounded memory: refused charges are never recorded, so the peak
        // must sit at or under the budget even with hogs firing.
        let peak = sys.guard_peak_bytes();
        if peak > budget.as_bytes() {
            eprintln!(
                "soakbench: epoch {epoch}: peak {} B exceeds budget {} B",
                peak,
                budget.as_bytes()
            );
            budget_breaches += 1;
        }

        let epoch_shed = result.failures.iter().filter(|f| f.shed).count();
        println!(
            "epoch {epoch}: {:2} completed, {:2} killed ({} shed), {} mismatches, \
             peak {} KiB, TTI {:8.1} ks",
            result.records.len(),
            result.failures.len(),
            epoch_shed,
            epoch_mismatches,
            peak / 1024,
            ks(result.tti_total()),
        );
        mismatches += epoch_mismatches;
        completed += result.records.len();
        failed += result.failures.len();
        shed += epoch_shed;
        peak_overall = peak_overall.max(peak);
        epoch_values.push(Value::object(vec![
            ("epoch".into(), Value::Int(epoch as i64)),
            ("spec".into(), Value::str(spec.as_str())),
            ("completed".into(), Value::Int(result.records.len() as i64)),
            ("failed".into(), Value::Int(result.failures.len() as i64)),
            ("shed".into(), Value::Int(epoch_shed as i64)),
            ("mismatches".into(), Value::Int(epoch_mismatches as i64)),
            ("peak_bytes".into(), Value::Int(peak as i64)),
            ("tti".into(), tti_value(&result)),
        ]));
    }
    miso_common::integrity::set_verify_on_read(false);

    let snap = miso_obs::snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "storm totals: {completed} completed, {failed} killed ({shed} shed), \
         peak {} KiB / budget {} KiB",
        peak_overall / 1024,
        budget.as_bytes() / 1024,
    );
    println!(
        "guard: {} admitted, {} shed, {} cancelled, {} deadline, {} mem",
        counter("guard.admitted"),
        counter("guard.shed"),
        counter("guard.cancelled"),
        counter("guard.deadline_exceeded"),
        counter("guard.mem_exceeded"),
    );
    println!(
        "chaos: {} errors, {} stalls, {} hogs, {} corruptions, {} crashes; \
         integrity: {} checksum failures, {} quarantined, {} repaired",
        counter("chaos.errors_injected"),
        counter("chaos.stalls_injected"),
        counter("chaos.hogs_injected"),
        counter("chaos.corruptions_injected"),
        counter("chaos.crashes_injected"),
        counter("integrity.checksum_failures"),
        counter("integrity.quarantined"),
        counter("integrity.repaired"),
    );

    miso_bench::write_report(
        "soakbench",
        Value::object(vec![
            ("epochs".into(), Value::Int(epochs as i64)),
            ("smoke".into(), Value::Bool(smoke)),
            ("deadline_s".into(), Value::Float(deadline.as_secs_f64())),
            ("budget_bytes".into(), Value::Int(budget.as_bytes() as i64)),
            ("aborts".into(), Value::Int(aborts as i64)),
            ("mismatches".into(), Value::Int(mismatches as i64)),
            ("unclassified".into(), Value::Int(unclassified as i64)),
            ("budget_breaches".into(), Value::Int(budget_breaches as i64)),
            ("completed".into(), Value::Int(completed as i64)),
            ("failed".into(), Value::Int(failed as i64)),
            ("shed".into(), Value::Int(shed as i64)),
            ("peak_bytes".into(), Value::Int(peak_overall as i64)),
            ("clean".into(), tti_value(&clean)),
            ("epochs_detail".into(), Value::Array(epoch_values)),
        ]),
    );

    if aborts + mismatches + unclassified + budget_breaches > 0 {
        eprintln!(
            "soakbench: FAILED ({aborts} aborts, {mismatches} mismatches, \
             {unclassified} unclassified, {budget_breaches} budget breaches)"
        );
        std::process::exit(1);
    }
    println!("soakbench: storm survived — no aborts, no wrong answers, all losses classified");
}
