//! Diagnostic: per-query HV-ONLY costs and intermediate sizes.

use miso_bench::{ks, Harness};
use miso_core::Variant;

fn main() {
    let harness = Harness::standard();
    let r = harness.run(Variant::HvOnly, 2.0);
    println!("label      hv(ks)   rows");
    for rec in &r.records {
        println!("{:8} {:8.2} {:6}", rec.label, ks(rec.hv), rec.result_rows);
    }
    println!("total {:.1}ks", ks(r.tti_total()));
}
