//! §3.2 inline figure: two related queries (q1 = A1v2, q2 = A1v3 in the
//! paper's terms) under HV-ONLY, MS-BASIC, and MS-MISO with a reorganization
//! phase triggered between them.
//!
//! Paper shape: MS-BASIC only ~8% faster than HV-ONLY; MS-MISO ~2× faster
//! than both, because the tuner moved the "right" views into DW after q1.

use miso_bench::{ks, Harness};
use miso_core::Variant;
use miso_data::Value;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    // Two subsequent queries by the same analyst with overlap.
    let pair: Vec<_> = harness
        .workload
        .iter()
        .filter(|(l, _)| l == "A1v1" || l == "A1v2")
        .cloned()
        .collect();
    assert_eq!(pair.len(), 2);

    println!("Section 3.2 motivation: q1 (A1v1) then q2 (A1v2), reorg between\n");
    println!(
        "{:>10} {:>8} {:>8} {:>9}",
        "variant", "q1(ks)", "q2(ks)", "total(ks)"
    );
    let mut totals = Vec::new();
    let mut report_variants = Vec::new();
    for variant in [Variant::HvOnly, Variant::MsBasic, Variant::MsMiso] {
        let budgets = harness.budgets(2.0);
        // reorg_every = 1 makes the tuner run right between q1 and q2 for
        // MS-MISO, matching the paper's setup.
        let mut cfg = miso_core::SystemConfig::paper_default(budgets);
        cfg.reorg_every = 1;
        let mut sys = miso_core::MultistoreSystem::new(
            &harness.corpus,
            miso_workload::workload_catalog(),
            miso_workload::standard_udfs(),
            cfg,
        );
        let r = sys.run_workload(variant, &pair).unwrap();
        println!(
            "{:>10} {:>8.2} {:>8.2} {:>9.2}",
            variant.name(),
            ks(r.records[0].exec_total()),
            ks(r.records[1].exec_total()),
            ks(r.tti_total()),
        );
        totals.push((variant, r.tti_total().as_secs_f64()));
        report_variants.push(miso_bench::tti_value(&r));
    }
    let t = |v: Variant| totals.iter().find(|(x, _)| *x == v).unwrap().1;
    println!(
        "\nMS-BASIC vs HV-ONLY: {:.0}% faster (paper ~8%)",
        (1.0 - t(Variant::MsBasic) / t(Variant::HvOnly)) * 100.0
    );
    println!(
        "MS-MISO vs HV-ONLY : {:.1}x (paper ~2x)",
        t(Variant::HvOnly) / t(Variant::MsMiso)
    );
    let extra = Value::object(vec![("variants".into(), Value::Array(report_variants))]);
    miso_bench::write_report("fig_motivation", extra);
}
