//! Execution engine benchmark: seed serial interpreter vs miso-vex.
//!
//! Sweeps rows × pipelines (scan, filter, join, aggregate, join+aggregate)
//! and times each plan under three engines:
//!
//! * **serial** — [`miso_exec::execute_serial`], the preserved seed
//!   row-at-a-time interpreter, pinned to one worker;
//! * **row** — the morsel-parallel engine in row mode
//!   (`retain_root_only` with `columnar: false`), at 1, 2 and 8 workers;
//! * **col** — the same engine in its production configuration: root-only
//!   retention with the columnar batch path following the `MISO_COL`
//!   toggle (default on), so `MISO_COL=0 execbench` times row mode twice
//!   and still verifies identity.
//!
//! Every engine run must match the serial oracle row-for-row — the
//! full-retention run across *all* node outputs, the lean runs at the root
//! plus per-node `rows_out` counts — and identical to itself at every
//! thread count; any divergence exits non-zero. A counting global
//! allocator reports bytes allocated by one row-mode vs one columnar run,
//! and the `exec.col_batches` / `exec.col_fallback_rows` counter pair is
//! sampled per pipeline. The full run writes `BENCH_exec.json` at the repo
//! root plus `results/execbench.report.json` and enforces per-pipeline
//! minimum speedups at the largest row count; `--smoke` runs one small
//! configuration, writes the run report only, and leaves the committed
//! baseline untouched (the CI record-only step).

use miso_bench::row;
use miso_common::pool;
use miso_data::json::{parse_json, to_json};
use miso_data::{DataType, Field, Row, Schema, Value};
use miso_exec::engine::{execute, execute_subset_opts, MemSource};
use miso_exec::{execute_serial, ExecOptions, Execution, UdfRegistry};
use miso_plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan, Operator, PlanBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Thread counts every engine configuration is verified (and timed) at.
const THREADS: [usize; 3] = [1, 2, 8];

/// Per-pipeline minimum speedups (serial / columnar-at-8-workers) enforced
/// by full runs at the largest row count, when the columnar path is on.
const MIN_SPEEDUP: [(&str, f64); 5] = [
    ("scan", 3.0),
    ("filter", 2.5),
    ("join", 3.0),
    ("aggregate", 2.0),
    ("join+aggregate", 3.0),
];

/// Counting wrapper around the system allocator so row-mode and columnar
/// runs can be compared on allocation volume, not just wall time.
struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a plain
// relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Relaxed)
}

struct Pipeline {
    name: &'static str,
    plan: LogicalPlan,
    src: MemSource,
}

fn int_field(name: &str) -> Field {
    Field::new(name, DataType::Int)
}

/// ScanLog → Project over synthetic JSON lines (with malformed lines mixed
/// in so `skipped_lines` determinism is exercised under load).
fn scan_pipeline(rows: usize) -> Pipeline {
    let mut lines = Vec::with_capacity(rows);
    for i in 0..rows {
        if i % 97 == 13 {
            lines.push(format!("### malformed line {i} ###"));
        } else {
            lines.push(format!(
                r#"{{"uid": {}, "city": "city-{:02}", "score": {}}}"#,
                i % 5000,
                i % 23,
                (i * 7) % 100
            ));
        }
    }
    let mut src = MemSource::new();
    src.add_log("events", lines);
    let mut b = PlanBuilder::new();
    let scan = b
        .add(
            Operator::ScanLog {
                log: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let proj = b
        .add(
            Operator::Project {
                exprs: vec![
                    ("uid".into(), Expr::col(0).get("uid").cast(DataType::Int)),
                    ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                    (
                        "score".into(),
                        Expr::col(0).get("score").cast(DataType::Int),
                    ),
                ],
            },
            vec![scan],
        )
        .unwrap();
    Pipeline {
        name: "scan",
        plan: b.finish(proj).unwrap(),
        src,
    }
}

/// Wide fact rows (key, measure, ten payload columns) — the shape that
/// makes full-table materialization expensive for the copying engine.
fn fact_rows(rows: usize, dims: usize) -> Vec<Row> {
    (0..rows)
        .map(|i| {
            let i = i as i64;
            Row::new(vec![
                Value::Int(i % dims as i64),
                Value::Int((i * 31) % 10_000),
                Value::Int(i % 97),
                Value::Int((i * 7) % 365),
                Value::Int(i % 24),
                Value::Int((i * 13) % 1000),
                Value::Int(i % 50),
                Value::Int((i * 3) % 512),
                Value::Int(i % 7),
                Value::Int((i * 11) % 100),
                Value::Int(i % 3),
                Value::Int((i * 17) % 256),
            ])
        })
        .collect()
}

fn facts_schema() -> Schema {
    Schema::new(vec![
        int_field("uid"),
        int_field("val"),
        int_field("p2"),
        int_field("p3"),
        int_field("p4"),
        int_field("p5"),
        int_field("p6"),
        int_field("p7"),
        int_field("p8"),
        int_field("p9"),
        int_field("p10"),
        int_field("p11"),
    ])
}

/// ScanView → Filter (about half the rows survive).
fn filter_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    src.add_view("facts", fact_rows(rows, rows.max(1)));
    let mut b = PlanBuilder::new();
    let sv = b
        .add(
            Operator::ScanView {
                view: "facts".into(),
                schema: facts_schema(),
            },
            vec![],
        )
        .unwrap();
    let filt = b
        .add(
            Operator::Filter {
                predicate: Expr::Binary {
                    op: BinOp::Lt,
                    left: Box::new(Expr::col(1)),
                    right: Box::new(Expr::lit(5000i64)),
                },
            },
            vec![sv],
        )
        .unwrap();
    Pipeline {
        name: "filter",
        plan: b.finish(filt).unwrap(),
        src,
    }
}

/// Selective facts ⋈ dims source plus the shared join subplan: only every
/// 32nd fact uid has a dimension row, so probe misses dominate (the
/// filter-by-dimension shape). Dimension rows carry string segment labels so
/// downstream grouping keys are allocation-heavy, as real workloads' are.
fn join_parts(rows: usize, b: &mut PlanBuilder, src: &mut MemSource) -> miso_common::ids::NodeId {
    let span = (rows / 2).max(64);
    let dims = (span / 32).max(8);
    src.add_view("facts", fact_rows(rows, span));
    src.add_view(
        "dims",
        (0..dims)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i * 32) as i64),
                    Value::str(format!("segment-{:03}", i % 200)),
                ])
            })
            .collect(),
    );
    let facts = b
        .add(
            Operator::ScanView {
                view: "facts".into(),
                schema: facts_schema(),
            },
            vec![],
        )
        .unwrap();
    let dim_scan = b
        .add(
            Operator::ScanView {
                view: "dims".into(),
                schema: Schema::new(vec![int_field("uid"), Field::new("segment", DataType::Str)]),
            },
            vec![],
        )
        .unwrap();
    b.add(Operator::Join { on: vec![(0, 0)] }, vec![facts, dim_scan])
        .unwrap()
}

fn join_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    let mut b = PlanBuilder::new();
    let join = join_parts(rows, &mut b, &mut src);
    Pipeline {
        name: "join",
        plan: b.finish(join).unwrap(),
        src,
    }
}

/// ScanView → Aggregate with a string group key and four aggregates. All
/// aggregate inputs are integers, so serial and vex outputs are bit-exact
/// regardless of accumulation order.
fn aggregate_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    src.add_view(
        "events",
        (0..rows)
            .map(|i| {
                Row::new(vec![
                    Value::str(format!("segment-{:03}", i % 200)),
                    Value::Int(((i * 13) % 10_000) as i64),
                ])
            })
            .collect(),
    );
    let mut b = PlanBuilder::new();
    let sv = b
        .add(
            Operator::ScanView {
                view: "events".into(),
                schema: Schema::new(vec![Field::new("segment", DataType::Str), int_field("val")]),
            },
            vec![],
        )
        .unwrap();
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![0],
                aggs: agg_exprs(1),
            },
            vec![sv],
        )
        .unwrap();
    Pipeline {
        name: "aggregate",
        plan: b.finish(agg).unwrap(),
        src,
    }
}

fn agg_exprs(val_col: usize) -> Vec<AggExpr> {
    vec![
        AggExpr::new(AggFunc::Count, None, "n"),
        AggExpr::new(AggFunc::Sum, Some(Expr::col(val_col)), "total"),
        AggExpr::new(AggFunc::Min, Some(Expr::col(val_col)), "lo"),
        AggExpr::new(AggFunc::Max, Some(Expr::col(val_col)), "hi"),
    ]
}

/// The acceptance pipeline: facts ⋈ dims on uid, then group the joined rows
/// by dimension segment with COUNT/SUM/MIN/MAX over integer values.
fn join_aggregate_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    let mut b = PlanBuilder::new();
    let join = join_parts(rows, &mut b, &mut src);
    // Joined schema: facts (12 columns) ++ dims.uid, dims.segment.
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![13],
                aggs: agg_exprs(1),
            },
            vec![join],
        )
        .unwrap();
    Pipeline {
        name: "join+aggregate",
        plan: b.finish(agg).unwrap(),
        src,
    }
}

/// Best-of-`iters` wall time plus the last result.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("iters >= 1"))
}

/// Row-for-row comparison across every node output both executions retain.
fn executions_match(a: &Execution, b: &Execution) -> bool {
    if a.skipped_lines != b.skipped_lines {
        return false;
    }
    let mut ids: Vec<_> = a.executed_nodes().collect();
    ids.sort_unstable();
    let mut ids_b: Vec<_> = b.executed_nodes().collect();
    ids_b.sort_unstable();
    ids == ids_b && ids.iter().all(|&id| a.try_output(id) == b.try_output(id))
}

/// A root-only execution against the serial oracle: identical root rows,
/// identical skipped-line count, identical per-node `rows_out` counts.
fn lean_matches(serial: &Execution, lean: &Execution) -> bool {
    serial.skipped_lines == lean.skipped_lines
        && serial.root_rows().ok() == lean.root_rows().ok()
        && serial
            .executed_nodes()
            .all(|id| serial.rows_out(id) == lean.rows_out(id))
}

/// One root-only-retention run with the columnar path explicitly on or off.
fn run_lean(p: &Pipeline, udfs: &UdfRegistry, columnar: bool) -> Execution {
    execute_subset_opts(
        &p.plan,
        None,
        HashMap::new(),
        &p.src,
        udfs,
        ExecOptions {
            retain_root_only: true,
            columnar,
        },
    )
    .expect("lean run succeeds")
}

fn main() {
    if !miso_bench::obs_init() {
        // Run reports include the exec.* counters, so metrics must flow
        // even when MISO_OBS is unset.
        miso_obs::init(miso_obs::ObsConfig::ring(4096));
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env_threads = pool::threads();
    let col_on = miso_exec::col::enabled();
    let iters = if smoke { 1 } else { 5 };
    let rows_list: &[usize] = if smoke { &[20_000] } else { &[50_000, 200_000] };
    let max_rows = *rows_list.last().expect("rows_list non-empty");

    let widths = [15usize, 9, 10, 10, 10, 9, 8];
    println!(
        "=== Execution engines: serial (seed interpreter, 1 thread) vs row/col \
         (morsel-parallel, columnar {}), best of {iters} ===",
        if col_on { "on" } else { "off" }
    );
    println!(
        "{}",
        row(
            &["pipeline", "rows", "serial_s", "row8_s", "col8_s", "speedup", "allocx"]
                .map(String::from),
            &widths,
        )
    );

    let mut failures = 0usize;
    let mut cfg_values = Vec::new();
    let mut gate: Vec<(&'static str, f64)> = Vec::new();
    for &rows in rows_list {
        let pipelines = [
            scan_pipeline(rows),
            filter_pipeline(rows),
            join_pipeline(rows),
            aggregate_pipeline(rows),
            join_aggregate_pipeline(rows),
        ];
        for p in &pipelines {
            let udfs = UdfRegistry::new();
            pool::set_threads(1);
            let (serial_s, serial) = time_best(iters, || {
                execute_serial(&p.plan, &p.src, &udfs).expect("serial run succeeds")
            });
            let mut row_s = Vec::with_capacity(THREADS.len());
            let mut col_s = Vec::with_capacity(THREADS.len());
            for &t in &THREADS {
                pool::set_threads(t);
                // Full retention verifies every node output against serial
                // (the columnar path pivots intermediates back to rows only
                // in root-only mode, so this run also covers the row engine).
                let full = execute(&p.plan, &p.src, &udfs).expect("vex run succeeds");
                if !executions_match(&serial, &full) {
                    eprintln!(
                        "execbench: {} rows={rows} threads={t}: full-retention output \
                         diverges from serial",
                        p.name
                    );
                    failures += 1;
                }
                let (rs, row_exec) = time_best(iters, || run_lean(p, &udfs, false));
                let (cs, col_exec) = time_best(iters, || run_lean(p, &udfs, col_on));
                if !lean_matches(&serial, &row_exec) {
                    eprintln!(
                        "execbench: {} rows={rows} threads={t}: row-mode output diverges \
                         from serial",
                        p.name
                    );
                    failures += 1;
                }
                if !lean_matches(&serial, &col_exec) {
                    eprintln!(
                        "execbench: {} rows={rows} threads={t}: columnar output diverges \
                         from serial",
                        p.name
                    );
                    failures += 1;
                }
                row_s.push(rs);
                col_s.push(cs);
            }
            // Allocation + columnar-counter sample: one run of each engine
            // at the widest worker count.
            miso_obs::reset_metrics();
            let a0 = alloc_bytes();
            let _ = run_lean(p, &udfs, false);
            let alloc_row = alloc_bytes() - a0;
            let a1 = alloc_bytes();
            let _ = run_lean(p, &udfs, col_on);
            let alloc_col = alloc_bytes() - a1;
            let counters = miso_obs::snapshot().counters;
            let col_batches = counters.get("exec.col_batches").copied().unwrap_or(0);
            let col_fallback = counters.get("exec.col_fallback_rows").copied().unwrap_or(0);

            let last = THREADS.len() - 1;
            let speedup = serial_s / col_s[last].max(1e-12);
            let row_speedup = serial_s / row_s[last].max(1e-12);
            let allocx = alloc_row as f64 / (alloc_col.max(1)) as f64;
            if rows == max_rows {
                gate.push((p.name, speedup));
            }
            println!(
                "{}",
                row(
                    &[
                        p.name.to_string(),
                        rows.to_string(),
                        format!("{serial_s:.4}"),
                        format!("{:.4}", row_s[last]),
                        format!("{:.4}", col_s[last]),
                        format!("{speedup:.2}x"),
                        format!("{allocx:.2}x"),
                    ],
                    &widths,
                )
            );
            cfg_values.push(Value::object(vec![
                ("pipeline".into(), Value::str(p.name)),
                ("rows".into(), Value::Int(rows as i64)),
                ("root_rows".into(), {
                    Value::Int(serial.root_rows().map(|r| r.len() as i64).unwrap_or(-1))
                }),
                ("columnar".into(), Value::Bool(col_on)),
                ("serial_s".into(), Value::Float(serial_s)),
                (
                    "row_s".into(),
                    Value::Array(row_s.iter().map(|&s| Value::Float(s)).collect()),
                ),
                (
                    "col_s".into(),
                    Value::Array(col_s.iter().map(|&s| Value::Float(s)).collect()),
                ),
                (
                    "vex_threads".into(),
                    Value::Array(THREADS.iter().map(|&t| Value::Int(t as i64)).collect()),
                ),
                ("speedup".into(), Value::Float(speedup)),
                ("row_speedup".into(), Value::Float(row_speedup)),
                ("alloc_row_bytes".into(), Value::Int(alloc_row as i64)),
                ("alloc_col_bytes".into(), Value::Int(alloc_col as i64)),
                ("col_batches".into(), Value::Int(col_batches as i64)),
                ("col_fallback_rows".into(), Value::Int(col_fallback as i64)),
            ]));
        }
    }
    // Leave the pool as the environment configured it.
    pool::set_threads(env_threads);

    // Acceptance gates (full runs with the columnar path on): every
    // pipeline must clear its minimum speedup at the largest row count.
    if !smoke && col_on {
        for (name, floor) in MIN_SPEEDUP {
            match gate.iter().find(|(n, _)| *n == name) {
                Some(&(_, s)) if s >= floor => {}
                Some(&(_, s)) => {
                    eprintln!(
                        "execbench: {name} speedup {s:.2}x below the {floor}x acceptance bar"
                    );
                    failures += 1;
                }
                None => {
                    eprintln!("execbench: {name} pipeline never ran");
                    failures += 1;
                }
            }
        }
    }

    let report = Value::object(vec![
        ("bench".into(), Value::str("execbench")),
        (
            "mode".into(),
            Value::str(if smoke { "smoke" } else { "full" }),
        ),
        ("env_threads".into(), Value::Int(env_threads as i64)),
        ("columnar".into(), Value::Bool(col_on)),
        ("iters".into(), Value::Int(iters as i64)),
        ("configs".into(), Value::Array(cfg_values)),
    ]);
    let text = to_json(&report);
    if let Err(e) = parse_json(&text) {
        eprintln!("execbench: emitted JSON does not round-trip: {e}");
        failures += 1;
    }
    if !smoke {
        if let Err(e) = std::fs::write("BENCH_exec.json", format!("{text}\n")) {
            eprintln!("execbench: cannot write BENCH_exec.json: {e}");
            failures += 1;
        }
    }
    miso_bench::write_report("execbench", report);

    if failures > 0 {
        std::process::exit(1);
    }
    println!("execbench: row and columnar output identical to serial at every thread count");
}
