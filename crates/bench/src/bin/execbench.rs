//! Execution engine benchmark: seed serial interpreter vs miso-vex.
//!
//! Sweeps rows × pipelines (scan, filter, join, aggregate, join+aggregate)
//! and times each plan under two engines:
//!
//! * **serial** — [`miso_exec::execute_serial`], the preserved seed
//!   row-at-a-time interpreter, pinned to one worker;
//! * **vex** — the morsel-parallel, allocation-lean engine, at 1, 2 and 8
//!   workers.
//!
//! Every vex run must produce output row-for-row identical to the serial
//! run — across *all* retained node outputs, not just the root — and
//! identical to itself at every thread count; any divergence exits
//! non-zero. The full run writes `BENCH_exec.json` at the repo root plus
//! `results/execbench.report.json` and enforces the ≥ 3× speedup
//! acceptance bar on the join+aggregate pipeline; `--smoke` runs one small
//! configuration, writes the run report only, and leaves the committed
//! baseline untouched (the CI record-only step).

use miso_bench::row;
use miso_common::pool;
use miso_data::json::{parse_json, to_json};
use miso_data::{DataType, Field, Row, Schema, Value};
use miso_exec::engine::{execute, MemSource};
use miso_exec::{execute_serial, Execution, UdfRegistry};
use miso_plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan, Operator, PlanBuilder};
use std::time::Instant;

/// Thread counts every vex pipeline is verified (and timed) at.
const THREADS: [usize; 3] = [1, 2, 8];

struct Pipeline {
    name: &'static str,
    plan: LogicalPlan,
    src: MemSource,
}

fn int_field(name: &str) -> Field {
    Field::new(name, DataType::Int)
}

/// ScanLog → Project over synthetic JSON lines (with malformed lines mixed
/// in so `skipped_lines` determinism is exercised under load).
fn scan_pipeline(rows: usize) -> Pipeline {
    let mut lines = Vec::with_capacity(rows);
    for i in 0..rows {
        if i % 97 == 13 {
            lines.push(format!("### malformed line {i} ###"));
        } else {
            lines.push(format!(
                r#"{{"uid": {}, "city": "city-{:02}", "score": {}}}"#,
                i % 5000,
                i % 23,
                (i * 7) % 100
            ));
        }
    }
    let mut src = MemSource::new();
    src.add_log("events", lines);
    let mut b = PlanBuilder::new();
    let scan = b
        .add(
            Operator::ScanLog {
                log: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let proj = b
        .add(
            Operator::Project {
                exprs: vec![
                    ("uid".into(), Expr::col(0).get("uid").cast(DataType::Int)),
                    ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                    (
                        "score".into(),
                        Expr::col(0).get("score").cast(DataType::Int),
                    ),
                ],
            },
            vec![scan],
        )
        .unwrap();
    Pipeline {
        name: "scan",
        plan: b.finish(proj).unwrap(),
        src,
    }
}

/// Wide fact rows (key, measure, ten payload columns) — the shape that
/// makes full-table materialization expensive for the copying engine.
fn fact_rows(rows: usize, dims: usize) -> Vec<Row> {
    (0..rows)
        .map(|i| {
            let i = i as i64;
            Row::new(vec![
                Value::Int(i % dims as i64),
                Value::Int((i * 31) % 10_000),
                Value::Int(i % 97),
                Value::Int((i * 7) % 365),
                Value::Int(i % 24),
                Value::Int((i * 13) % 1000),
                Value::Int(i % 50),
                Value::Int((i * 3) % 512),
                Value::Int(i % 7),
                Value::Int((i * 11) % 100),
                Value::Int(i % 3),
                Value::Int((i * 17) % 256),
            ])
        })
        .collect()
}

fn facts_schema() -> Schema {
    Schema::new(vec![
        int_field("uid"),
        int_field("val"),
        int_field("p2"),
        int_field("p3"),
        int_field("p4"),
        int_field("p5"),
        int_field("p6"),
        int_field("p7"),
        int_field("p8"),
        int_field("p9"),
        int_field("p10"),
        int_field("p11"),
    ])
}

/// ScanView → Filter (about half the rows survive).
fn filter_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    src.add_view("facts", fact_rows(rows, rows.max(1)));
    let mut b = PlanBuilder::new();
    let sv = b
        .add(
            Operator::ScanView {
                view: "facts".into(),
                schema: facts_schema(),
            },
            vec![],
        )
        .unwrap();
    let filt = b
        .add(
            Operator::Filter {
                predicate: Expr::Binary {
                    op: BinOp::Lt,
                    left: Box::new(Expr::col(1)),
                    right: Box::new(Expr::lit(5000i64)),
                },
            },
            vec![sv],
        )
        .unwrap();
    Pipeline {
        name: "filter",
        plan: b.finish(filt).unwrap(),
        src,
    }
}

/// Selective facts ⋈ dims source plus the shared join subplan: only every
/// 32nd fact uid has a dimension row, so probe misses dominate (the
/// filter-by-dimension shape). Dimension rows carry string segment labels so
/// downstream grouping keys are allocation-heavy, as real workloads' are.
fn join_parts(rows: usize, b: &mut PlanBuilder, src: &mut MemSource) -> miso_common::ids::NodeId {
    let span = (rows / 2).max(64);
    let dims = (span / 32).max(8);
    src.add_view("facts", fact_rows(rows, span));
    src.add_view(
        "dims",
        (0..dims)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i * 32) as i64),
                    Value::str(format!("segment-{:03}", i % 200)),
                ])
            })
            .collect(),
    );
    let facts = b
        .add(
            Operator::ScanView {
                view: "facts".into(),
                schema: facts_schema(),
            },
            vec![],
        )
        .unwrap();
    let dim_scan = b
        .add(
            Operator::ScanView {
                view: "dims".into(),
                schema: Schema::new(vec![int_field("uid"), Field::new("segment", DataType::Str)]),
            },
            vec![],
        )
        .unwrap();
    b.add(Operator::Join { on: vec![(0, 0)] }, vec![facts, dim_scan])
        .unwrap()
}

fn join_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    let mut b = PlanBuilder::new();
    let join = join_parts(rows, &mut b, &mut src);
    Pipeline {
        name: "join",
        plan: b.finish(join).unwrap(),
        src,
    }
}

/// ScanView → Aggregate with a string group key and four aggregates. All
/// aggregate inputs are integers, so serial and vex outputs are bit-exact
/// regardless of accumulation order.
fn aggregate_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    src.add_view(
        "events",
        (0..rows)
            .map(|i| {
                Row::new(vec![
                    Value::str(format!("segment-{:03}", i % 200)),
                    Value::Int(((i * 13) % 10_000) as i64),
                ])
            })
            .collect(),
    );
    let mut b = PlanBuilder::new();
    let sv = b
        .add(
            Operator::ScanView {
                view: "events".into(),
                schema: Schema::new(vec![Field::new("segment", DataType::Str), int_field("val")]),
            },
            vec![],
        )
        .unwrap();
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![0],
                aggs: agg_exprs(1),
            },
            vec![sv],
        )
        .unwrap();
    Pipeline {
        name: "aggregate",
        plan: b.finish(agg).unwrap(),
        src,
    }
}

fn agg_exprs(val_col: usize) -> Vec<AggExpr> {
    vec![
        AggExpr::new(AggFunc::Count, None, "n"),
        AggExpr::new(AggFunc::Sum, Some(Expr::col(val_col)), "total"),
        AggExpr::new(AggFunc::Min, Some(Expr::col(val_col)), "lo"),
        AggExpr::new(AggFunc::Max, Some(Expr::col(val_col)), "hi"),
    ]
}

/// The acceptance pipeline: facts ⋈ dims on uid, then group the joined rows
/// by dimension segment with COUNT/SUM/MIN/MAX over integer values.
fn join_aggregate_pipeline(rows: usize) -> Pipeline {
    let mut src = MemSource::new();
    let mut b = PlanBuilder::new();
    let join = join_parts(rows, &mut b, &mut src);
    // Joined schema: facts (12 columns) ++ dims.uid, dims.segment.
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![13],
                aggs: agg_exprs(1),
            },
            vec![join],
        )
        .unwrap();
    Pipeline {
        name: "join+aggregate",
        plan: b.finish(agg).unwrap(),
        src,
    }
}

/// Best-of-`iters` wall time plus the last result.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("iters >= 1"))
}

/// Row-for-row comparison across every node output both executions retain.
fn executions_match(a: &Execution, b: &Execution) -> bool {
    if a.skipped_lines != b.skipped_lines {
        return false;
    }
    let mut ids: Vec<_> = a.executed_nodes().collect();
    ids.sort_unstable();
    let mut ids_b: Vec<_> = b.executed_nodes().collect();
    ids_b.sort_unstable();
    ids == ids_b && ids.iter().all(|&id| a.try_output(id) == b.try_output(id))
}

fn main() {
    if !miso_bench::obs_init() {
        // Run reports include the exec.* counters, so metrics must flow
        // even when MISO_OBS is unset.
        miso_obs::init(miso_obs::ObsConfig::ring(4096));
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env_threads = pool::threads();
    let iters = if smoke { 1 } else { 5 };
    let rows_list: &[usize] = if smoke { &[20_000] } else { &[50_000, 200_000] };

    let widths = [15usize, 9, 10, 10, 10, 9];
    println!(
        "=== Execution engines: serial (seed interpreter, 1 thread) vs vex (morsel-parallel), best of {iters} ==="
    );
    println!(
        "{}",
        row(
            &["pipeline", "rows", "serial_s", "vex1_s", "vex8_s", "speedup"].map(String::from),
            &widths,
        )
    );

    let mut failures = 0usize;
    let mut cfg_values = Vec::new();
    let mut gate_speedup: Option<f64> = None;
    for &rows in rows_list {
        let pipelines = [
            scan_pipeline(rows),
            filter_pipeline(rows),
            join_pipeline(rows),
            aggregate_pipeline(rows),
            join_aggregate_pipeline(rows),
        ];
        for p in &pipelines {
            let udfs = UdfRegistry::new();
            pool::set_threads(1);
            let (serial_s, serial) = time_best(iters, || {
                execute_serial(&p.plan, &p.src, &udfs).expect("serial run succeeds")
            });
            let mut vex_s = Vec::with_capacity(THREADS.len());
            for &t in &THREADS {
                pool::set_threads(t);
                let (secs, exec) = time_best(iters, || {
                    execute(&p.plan, &p.src, &udfs).expect("vex run succeeds")
                });
                if !executions_match(&serial, &exec) {
                    eprintln!(
                        "execbench: {} rows={rows} threads={t}: vex output diverges from serial",
                        p.name
                    );
                    failures += 1;
                }
                vex_s.push(secs);
            }
            let speedup = serial_s / vex_s[THREADS.len() - 1].max(1e-12);
            if p.name == "join+aggregate" {
                gate_speedup = Some(speedup);
            }
            println!(
                "{}",
                row(
                    &[
                        p.name.to_string(),
                        rows.to_string(),
                        format!("{serial_s:.4}"),
                        format!("{:.4}", vex_s[0]),
                        format!("{:.4}", vex_s[THREADS.len() - 1]),
                        format!("{speedup:.2}x"),
                    ],
                    &widths,
                )
            );
            cfg_values.push(Value::object(vec![
                ("pipeline".into(), Value::str(p.name)),
                ("rows".into(), Value::Int(rows as i64)),
                ("root_rows".into(), {
                    Value::Int(serial.root_rows().map(|r| r.len() as i64).unwrap_or(-1))
                }),
                ("serial_s".into(), Value::Float(serial_s)),
                (
                    "vex_s".into(),
                    Value::Array(vex_s.iter().map(|&s| Value::Float(s)).collect()),
                ),
                (
                    "vex_threads".into(),
                    Value::Array(THREADS.iter().map(|&t| Value::Int(t as i64)).collect()),
                ),
                ("speedup".into(), Value::Float(speedup)),
            ]));
        }
    }
    // Leave the pool as the environment configured it.
    pool::set_threads(env_threads);

    // Acceptance gate (full runs): the committed baseline must show ≥ 3× on
    // join+aggregate at the largest row count.
    if !smoke {
        match gate_speedup {
            Some(s) if s >= 3.0 => {}
            Some(s) => {
                eprintln!("execbench: join+aggregate speedup {s:.2}x below the 3x acceptance bar");
                failures += 1;
            }
            None => {
                eprintln!("execbench: join+aggregate pipeline never ran");
                failures += 1;
            }
        }
    }

    let report = Value::object(vec![
        ("bench".into(), Value::str("execbench")),
        (
            "mode".into(),
            Value::str(if smoke { "smoke" } else { "full" }),
        ),
        ("env_threads".into(), Value::Int(env_threads as i64)),
        ("iters".into(), Value::Int(iters as i64)),
        ("configs".into(), Value::Array(cfg_values)),
    ]);
    let text = to_json(&report);
    if let Err(e) = parse_json(&text) {
        eprintln!("execbench: emitted JSON does not round-trip: {e}");
        failures += 1;
    }
    if !smoke {
        if let Err(e) = std::fs::write("BENCH_exec.json", format!("{text}\n")) {
            eprintln!("execbench: cannot write BENCH_exec.json: {e}");
            failures += 1;
        }
    }
    miso_bench::write_report("execbench", report);

    if failures > 0 {
        std::process::exit(1);
    }
    println!("execbench: vex output identical to serial at every thread count");
}
