//! Figure 6: per-query store utilization (fraction of execution time in HV,
//! DW, and transfer), queries ranked by DW utilization, for (a) MS-BASIC,
//! (b) MS-MISO at 0.125× storage, (c) MS-MISO at 2× storage.
//!
//! Paper shape: DW-majority queries — (a) 2, (b) 9, (c) 14; HV-seconds per
//! DW-second over the top-16 ranks — (a) 55, (b) 1.6, (c) 0.12; operator
//! splits shift from 2/3-HV (MS-BASIC) to 3/3-DW for MS-MISO's fastest
//! queries.

use miso_bench::Harness;
use miso_core::Variant;
use miso_data::Value;

fn main() {
    miso_bench::obs_init();
    let harness = Harness::standard();
    let cases = [
        ("(a) MS-BASIC", Variant::MsBasic, 2.0),
        ("(b) MS-MISO 0.125x", Variant::MsMiso, 0.125),
        ("(c) MS-MISO 2x", Variant::MsMiso, 2.0),
    ];
    let mut summary = Vec::new();
    let mut report_cases = Vec::new();
    for (title, variant, mult) in cases {
        let r = harness.run(variant, mult);
        println!("Figure 6 {title}: queries ranked by DW utilization\n");
        println!(
            "{:>5} {:>8} {:>7}% {:>7}% {:>7}% {:>9}",
            "rank", "label", "HV", "DW", "XFER", "ops H/D"
        );
        for (i, rec) in r.by_dw_utilization().iter().enumerate().take(20) {
            let total = rec.exec_total().as_secs_f64().max(1e-9);
            println!(
                "{:>5} {:>8} {:>7.0} {:>7.0} {:>7.0} {:>6}/{}",
                i + 1,
                rec.label,
                rec.hv.as_secs_f64() / total * 100.0,
                rec.dw.as_secs_f64() / total * 100.0,
                rec.transfer.as_secs_f64() / total * 100.0,
                rec.hv_ops,
                rec.dw_ops
            );
        }
        let majority = r.dw_majority_queries();
        let ratio = r.hv_per_dw_second(16);
        println!(
            "\nDW-majority queries: {majority}; HV seconds per DW second (top 16): {ratio:.2}\n"
        );
        summary.push((title, majority, ratio));
        report_cases.push(Value::object(vec![
            ("case".into(), Value::str(title)),
            ("storage_multiple".into(), Value::Float(mult)),
            ("dw_majority_queries".into(), Value::Int(majority as i64)),
            ("hv_per_dw_second_top16".into(), Value::Float(ratio)),
            ("tti".into(), miso_bench::tti_value(&r)),
        ]));
    }
    println!("Summary vs paper:");
    println!(
        "  DW-majority: (a) {} (paper 2), (b) {} (paper 9), (c) {} (paper 14)",
        summary[0].1, summary[1].1, summary[2].1
    );
    println!(
        "  HV:DW seconds (top16): (a) {:.1} (paper 55), (b) {:.2} (paper 1.6), (c) {:.2} (paper 0.12)",
        summary[0].2, summary[1].2, summary[2].2
    );
    let extra = Value::object(vec![("cases".into(), Value::Array(report_cases))]);
    miso_bench::write_report("fig6", extra);
}
