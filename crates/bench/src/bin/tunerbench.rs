//! Tuner hot-path benchmark: serial baseline vs the miso-par engine.
//!
//! Scales a synthetic candidate universe (V distinct views, each defined by
//! the filter subtree of its own query) and history window (Q queries
//! cycling the V bases), then tunes the same workload for E consecutive
//! epochs twice per configuration:
//!
//! * **serial** — one worker thread, cross-epoch what-if cache disabled:
//!   the pre-miso-par behaviour, re-probing everything every epoch;
//! * **engine** — the resolved `MISO_THREADS` worker count with the
//!   cross-epoch memo on: epoch 1 fills the cache in parallel, epochs 2..E
//!   are served almost entirely from it.
//!
//! Both runs must produce byte-identical designs every epoch (the probes
//! are pure, so threading and memoization may change only *when* a probe
//! runs, never its value); any divergence exits non-zero. The full run
//! writes `BENCH_tuner.json` at the repo root plus
//! `results/tunerbench.report.json`; `--smoke` runs one small
//! configuration, writes the run report only, and leaves the committed
//! baseline untouched (the CI record-only step).

use miso_bench::row;
use miso_common::ids::QueryId;
use miso_common::{pool, Budgets, ByteSize};
use miso_core::{MisoTuner, NewDesign, TunerConfig};
use miso_data::json::{parse_json, to_json};
use miso_data::Value;
use miso_dw::DwCostModel;
use miso_hv::HvCostModel;
use miso_lang::{compile, Catalog};
use miso_optimizer::cost::TransferModel;
use miso_plan::estimate::MapStats;
use miso_plan::{LogicalPlan, Operator};
use miso_views::{ViewCatalog, ViewDef};
use std::collections::BTreeSet;
use std::time::Instant;

/// One synthetic candidate universe: V base queries, one view per query.
struct Universe {
    plans: Vec<LogicalPlan>,
    catalog: ViewCatalog,
    stats: MapStats,
    /// All candidate views start in HV (the opportunistic pool).
    hv: BTreeSet<String>,
}

/// Builds V distinct query/view pairs over the standard log catalog.
/// Predicate constants vary per index so every view has its own
/// fingerprint; tables rotate so relevance stays sparse (a view only ever
/// matches queries over its own log).
fn universe(v: usize) -> Universe {
    let lang = Catalog::standard();
    let mut catalog = ViewCatalog::new();
    let mut stats = MapStats::new();
    stats.set_log("twitter", 40_000.0, 40_000.0 * 280.0);
    stats.set_log("foursquare", 24_000.0, 24_000.0 * 160.0);
    stats.set_log("landmarks", 900.0, 900.0 * 190.0);

    let mut plans = Vec::with_capacity(v);
    let mut hv = BTreeSet::new();
    for i in 0..v {
        let sql = match i % 3 {
            0 => format!(
                "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                 WHERE t.followers > {} GROUP BY t.city",
                1000 + 17 * i
            ),
            1 => format!(
                "SELECT f.city AS c, COUNT(*) AS n FROM foursquare f \
                 WHERE f.likes > {} GROUP BY f.city",
                10 + 3 * i
            ),
            _ => format!(
                "SELECT t.lang AS l, COUNT(*) AS n FROM twitter t \
                 WHERE t.retweets > {} GROUP BY t.lang",
                5 + 2 * i
            ),
        };
        let plan = compile(&sql, &lang).expect("bench query compiles");
        let filt = plan
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Filter { .. }))
            .expect("bench query has a filter")
            .id;
        let size = ByteSize::from_kib(96 + 16 * i as u64);
        let rows = 800 + 40 * i as u64;
        let def = ViewDef::from_plan(plan.subplan(filt), size, rows, QueryId(i as u64));
        stats.set_view(def.name.clone(), rows as f64, size.as_bytes() as f64);
        hv.insert(def.name.clone());
        catalog.register(def);
        plans.push(plan);
    }
    Universe {
        plans,
        catalog,
        stats,
        hv,
    }
}

/// Wall-clock and probe counters for one multi-epoch tuning run.
struct RunStats {
    epoch_s: Vec<f64>,
    whatif_calls: Vec<u64>,
    cache_hits: Vec<u64>,
    designs: Vec<NewDesign>,
}

impl RunStats {
    fn total_s(&self) -> f64 {
        self.epoch_s.iter().sum()
    }

    fn value(&self) -> Value {
        let floats = |xs: &[f64]| Value::Array(xs.iter().map(|&x| Value::Float(x)).collect());
        let ints = |xs: &[u64]| Value::Array(xs.iter().map(|&x| Value::Int(x as i64)).collect());
        Value::object(vec![
            ("total_s".into(), Value::Float(self.total_s())),
            ("epoch_s".into(), floats(&self.epoch_s)),
            ("whatif_calls".into(), ints(&self.whatif_calls)),
            ("whatif_cache_hits".into(), ints(&self.cache_hits)),
        ])
    }
}

/// Tunes the same (unchanged) workload for `epochs` consecutive epochs,
/// timing each and diffing the what-if counters around it.
fn run_epochs(tuner: &MisoTuner, u: &Universe, history: &[LogicalPlan], epochs: usize) -> RunStats {
    let hv_cost = HvCostModel::paper_default();
    let dw_cost = DwCostModel::paper_default();
    let transfer = TransferModel::paper_default();
    let counter = |name: &str| {
        miso_obs::snapshot()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    };
    let mut stats = RunStats {
        epoch_s: Vec::with_capacity(epochs),
        whatif_calls: Vec::with_capacity(epochs),
        cache_hits: Vec::with_capacity(epochs),
        designs: Vec::with_capacity(epochs),
    };
    for _ in 0..epochs {
        let calls0 = counter("tuner.whatif_calls");
        let hits0 = counter("tuner.whatif_cache_hits");
        let t0 = Instant::now();
        let design = tuner.tune(
            &u.hv,
            &BTreeSet::new(),
            &u.catalog,
            history,
            &u.stats,
            &hv_cost,
            &dw_cost,
            &transfer,
        );
        stats.epoch_s.push(t0.elapsed().as_secs_f64());
        stats
            .whatif_calls
            .push(counter("tuner.whatif_calls") - calls0);
        stats
            .cache_hits
            .push(counter("tuner.whatif_cache_hits") - hits0);
        stats.designs.push(design);
    }
    stats
}

fn bench_budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_gib(1),
        ByteSize::from_gib(1),
        ByteSize::from_gib(1),
    )
    .with_discretization(ByteSize::from_kib(64))
}

fn main() {
    if !miso_bench::obs_init() {
        // The speedup accounting below reads the what-if counters, so
        // metrics must flow even when MISO_OBS is unset.
        miso_obs::init(miso_obs::ObsConfig::ring(4096));
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Resolve MISO_THREADS / core count once, before the serial baseline
    // pins the pool to one worker.
    let engine_threads = pool::threads();
    let epochs = if smoke { 2 } else { 3 };
    let configs: &[(usize, usize)] = if smoke {
        &[(16, 32)]
    } else {
        &[
            (16, 32),
            (16, 128),
            (32, 32),
            (32, 128),
            (64, 32),
            (64, 128),
        ]
    };

    let widths = [5usize, 5, 12, 12, 9, 9, 11];
    println!(
        "=== Tuner hot path: serial (1 thread, cache off) vs engine ({engine_threads} threads, cache on), {epochs} epochs ==="
    );
    println!(
        "{}",
        row(
            &["V", "Q", "serial_s", "engine_s", "speedup", "probes", "e2 hits"].map(String::from),
            &widths,
        )
    );

    let mut failures = 0usize;
    let mut cfg_values = Vec::new();
    for &(v, q) in configs {
        let u = universe(v);
        let history: Vec<LogicalPlan> = (0..q).map(|i| u.plans[i % v].clone()).collect();
        let tcfg = TunerConfig {
            budgets: bench_budgets(),
            history_len: q,
            epoch_len: 3,
            decay: 0.5,
            doi_threshold: 1.0,
        };

        pool::set_threads(1);
        let serial = run_epochs(
            &MisoTuner::new(tcfg.clone()).with_whatif_cache(false),
            &u,
            &history,
            epochs,
        );

        pool::set_threads(engine_threads);
        let engine_tuner = MisoTuner::new(tcfg);
        let engine = run_epochs(&engine_tuner, &u, &history, epochs);

        if serial.designs != engine.designs {
            eprintln!("tunerbench: V={v} Q={q}: engine designs diverge from serial baseline");
            failures += 1;
        }
        let e2_hits = engine.cache_hits.get(1).copied().unwrap_or(0);
        if e2_hits == 0 {
            eprintln!("tunerbench: V={v} Q={q}: no cross-epoch cache hits on epoch 2");
            failures += 1;
        }
        let speedup = serial.total_s() / engine.total_s().max(1e-12);
        println!(
            "{}",
            row(
                &[
                    v.to_string(),
                    q.to_string(),
                    format!("{:.4}", serial.total_s()),
                    format!("{:.4}", engine.total_s()),
                    format!("{speedup:.2}x"),
                    serial.whatif_calls.iter().sum::<u64>().to_string(),
                    e2_hits.to_string(),
                ],
                &widths,
            )
        );
        cfg_values.push(Value::object(vec![
            ("views".into(), Value::Int(v as i64)),
            ("queries".into(), Value::Int(q as i64)),
            ("serial".into(), serial.value()),
            ("engine".into(), engine.value()),
            ("speedup".into(), Value::Float(speedup)),
            (
                "designs_match".into(),
                Value::Bool(serial.designs == engine.designs),
            ),
            (
                "engine_cached_probes".into(),
                Value::Int(engine_tuner.whatif_cache_len() as i64),
            ),
        ]));
    }
    // Leave the pool as the environment configured it.
    pool::set_threads(engine_threads);

    let report = Value::object(vec![
        ("bench".into(), Value::str("tunerbench")),
        (
            "mode".into(),
            Value::str(if smoke { "smoke" } else { "full" }),
        ),
        ("threads".into(), Value::Int(engine_threads as i64)),
        ("epochs".into(), Value::Int(epochs as i64)),
        ("configs".into(), Value::Array(cfg_values)),
    ]);
    let text = to_json(&report);
    if let Err(e) = parse_json(&text) {
        eprintln!("tunerbench: emitted JSON does not round-trip: {e}");
        failures += 1;
    }
    if !smoke {
        if let Err(e) = std::fs::write("BENCH_tuner.json", format!("{text}\n")) {
            eprintln!("tunerbench: cannot write BENCH_tuner.json: {e}");
            failures += 1;
        }
    }
    miso_bench::write_report("tunerbench", report);

    if failures > 0 {
        std::process::exit(1);
    }
    println!("tunerbench: designs identical across threading and caching");
}
