//! servebench: the miso-serve concurrent-serving benchmark and storm.
//!
//! Three phases, all on the deterministic discrete-event serving engine:
//!
//! 1. **Calibration** — every workload query is executed once, fault-free,
//!    against the boot snapshot to learn the slowest base service time and
//!    the natural peak of guard-charged bytes. The storm's deadline and
//!    memory budget derive from these, exactly as soakbench's do.
//! 2. **Scaling** — the same fault-free arrival trace is replayed with 1
//!    and with 8 simulated worker slots; delivered qps must improve by at
//!    least 3× (the worker pool, not wall-clock threads, is what serving
//!    throughput scales on — the CI box may have one core).
//! 3. **Storm** — 1k+ analyst sessions across tenants (one deliberate hog)
//!    under the combined chaos storm *while the tuner reorganizes online*.
//!    Asserted invariants: the process never aborts (reaching the report is
//!    the proof), every delivered answer is row-identical to the serial
//!    single-client oracle, and every loss is a classified
//!    [`miso_core::QueryFailure`] with tenant/session attribution (sheds
//!    carry `retry_after`).
//!
//! `--smoke` shrinks the session counts for CI. Exits non-zero on any
//! violated invariant; writes `results/servebench.report.json`. The
//! committed full-run baseline lives in `BENCH_serve.json` and is checked
//! (warn-only) by `benchguard`.

use miso_bench::Harness;
use miso_common::{ByteSize, SimDuration};
use miso_core::GuardConfig;
use miso_data::Value;
use miso_serve::{EpochSnapshot, ServeConfig, ServeEngine, ServeReport, SnapExecutor};
use miso_workload::standard_udfs;
use std::collections::BTreeSet;

/// One seeded storm: DW outages and stalls, HV transient errors and
/// stragglers, memory hogs on both stores, wire and at-rest corruption, and
/// reorg crashes. Unlike soakbench, `hv.execute=error` is included: the
/// serving engine classifies an exhausted HV retry loop as a `transient`
/// loss instead of aborting the stream.
fn storm_spec(seed: u64) -> String {
    format!(
        "seed={seed};dw.execute=error@p0.1;dw.execute=stall@p0.05;dw.execute=hog:4096@p0.1;\
         hv.execute=error@p0.05;hv.execute=delay:1.5@p0.08;hv.execute=stall@p0.04;\
         hv.execute=hog:4096@p0.08;\
         transfer.ship=error@p0.15;transfer.ship=corrupt@p0.1;\
         dw.view_read=corrupt@p0.05;hv.view_read=corrupt@p0.05;\
         reorg.step=crash@p0.1"
    )
}

fn engine(harness: &Harness, cfg: ServeConfig) -> ServeEngine {
    let sys = harness.system(harness.budgets(2.0), None);
    ServeEngine::new(cfg, sys, harness.workload.clone(), standard_udfs())
}

fn report_value(r: &ServeReport) -> Value {
    let tenants = r
        .tenants
        .iter()
        .map(|(name, t)| {
            Value::object(vec![
                ("tenant".into(), Value::str(name.as_str())),
                ("submitted".into(), Value::Int(t.submitted as i64)),
                ("delivered".into(), Value::Int(t.delivered as i64)),
                ("shed".into(), Value::Int(t.shed as i64)),
                ("killed".into(), Value::Int(t.killed as i64)),
                ("p99_s".into(), Value::Float(t.p99.as_secs_f64())),
            ])
        })
        .collect();
    Value::object(vec![
        ("submitted".into(), Value::Int(r.submitted as i64)),
        ("delivered".into(), Value::Int(r.delivered as i64)),
        ("wrong_answers".into(), Value::Int(r.wrong_answers as i64)),
        ("shed".into(), Value::Int(r.shed as i64)),
        ("killed".into(), Value::Int(r.killed as i64)),
        ("drained".into(), Value::Int(r.drained as i64)),
        ("unclassified".into(), Value::Int(r.unclassified as i64)),
        ("hv_fallbacks".into(), Value::Int(r.hv_fallbacks as i64)),
        ("reorgs".into(), Value::Int(r.reorgs as i64)),
        ("reorg_failures".into(), Value::Int(r.reorg_failures as i64)),
        ("final_epoch".into(), Value::Int(r.final_epoch as i64)),
        ("makespan_s".into(), Value::Float(r.makespan.as_secs_f64())),
        ("qps".into(), Value::Float(r.qps)),
        ("p50_s".into(), Value::Float(r.p50.as_secs_f64())),
        ("p99_s".into(), Value::Float(r.p99.as_secs_f64())),
        ("base_runs".into(), Value::Int(r.base_runs as i64)),
        ("tenants".into(), Value::Array(tenants)),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if !miso_bench::obs_init() {
        miso_obs::init(miso_obs::ObsConfig::ring(4096));
    }
    let harness = Harness::standard();

    // ---- Phase 1: fault-free calibration against the boot snapshot -------
    let sys = harness.system(harness.budgets(2.0), None);
    let snap0 = EpochSnapshot {
        epoch: 0,
        hv: sys.hv.clone(),
        dw: sys.dw.clone(),
        catalog: sys.catalog.clone(),
        transfer: sys.transfer_model().clone(),
    };
    let mut calib = SnapExecutor::new(standard_udfs());
    let none = BTreeSet::new();
    let mut max_service = SimDuration::ZERO;
    let mut total_service = SimDuration::ZERO;
    let mut base_peak = 1u64;
    for (label, plan) in &harness.workload {
        let run = calib
            .run(&snap0, label, plan, &none, false)
            .expect("fault-free base run succeeds");
        max_service = max_service.max(run.service());
        total_service += run.service();
        base_peak = base_peak.max(run.charged_bytes);
    }
    let mean_service = total_service / harness.workload.len() as f64;
    // The deadline clears every clean query with retry/delay headroom but is
    // far under a ×10⁴ stall (which would otherwise pin a worker slot for
    // the whole storm); the budget trips on a ×4096 hog but never on
    // natural usage.
    let deadline = max_service * 10.0;
    let budget = ByteSize::from_bytes(base_peak.saturating_mul(2));
    println!(
        "=== servebench ({}) ===",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "calibration: base runs mean {:.1} s / max {:.1} s, peak {} KiB charged \
         -> deadline {:.1} s, budget {} KiB",
        mean_service.as_secs_f64(),
        max_service.as_secs_f64(),
        base_peak / 1024,
        deadline.as_secs_f64(),
        budget.as_bytes() / 1024,
    );

    // ---- Phase 2: fault-free worker scaling -------------------------------
    // Saturating arrivals (short think times) so throughput is bounded by
    // worker slots, not by the arrival process.
    let scale_sessions = if smoke { 48 } else { 128 };
    let scale_cfg = |workers: usize| ServeConfig {
        workers,
        sessions: scale_sessions,
        tenants: 4,
        queries_per_session: 2,
        seed: 11,
        mean_think: SimDuration::from_secs(1),
        reorg_every: 0,
        drain: deadline,
        guard: GuardConfig::disabled(),
        ..ServeConfig::standard()
    };
    let r1 = engine(&harness, scale_cfg(1)).run();
    let r8 = engine(&harness, scale_cfg(8)).run();
    let scaling = if r1.qps > 0.0 { r8.qps / r1.qps } else { 0.0 };
    println!(
        "scaling: {} sessions fault-free: 1 worker {:.3} qps, 8 workers {:.3} qps -> {:.2}x",
        scale_sessions, r1.qps, r8.qps, scaling
    );
    let mut scaling_violations = 0usize;
    for (workers, r) in [(1usize, &r1), (8usize, &r8)] {
        if r.delivered != r.submitted || r.wrong_answers != 0 {
            eprintln!(
                "servebench: fault-free {workers}-worker run must deliver everything \
                 correctly: {}/{} delivered, {} wrong",
                r.delivered, r.submitted, r.wrong_answers
            );
            scaling_violations += 1;
        }
    }
    if scaling < 3.0 {
        eprintln!("servebench: 8-worker qps only {scaling:.2}x of 1-worker (need >= 3x)");
        scaling_violations += 1;
    }

    // ---- Phase 3: the multi-tenant storm with online reorg ----------------
    let storm_sessions: u64 = if smoke { 96 } else { 1024 };
    let workers = 8usize;
    // Size the think time so the fault-free offered load sits at ~70% of
    // worker capacity; the ×8 hog tenant and the storm's stalls/retries are
    // what push the server into genuine (shed-worthy) overload.
    let think = mean_service * (storm_sessions as f64 / (workers as f64 * 0.7));
    let storm_cfg = ServeConfig {
        workers,
        sessions: storm_sessions,
        tenants: 8,
        queries_per_session: 2,
        seed: 23,
        mean_think: think,
        reorg_every: if smoke { 40 } else { 250 },
        // A drain window shorter than a deadline-bound straggler, so reorg
        // publishes exercise the bounded-drain kill path.
        drain: max_service * 2.0,
        queue_cap: 16,
        tenant_inflight_cap: 6,
        guard: GuardConfig {
            enabled: true,
            deadline: Some(deadline),
            mem_budget: budget,
            max_inflight: 64,
            shed_threshold: 5,
            shed_cooldown: max_service,
        },
        hog_factor: 8.0,
        ..ServeConfig::standard()
    };
    let plan = miso_chaos::parse_spec(&storm_spec(2_000)).expect("storm spec parses");
    miso_chaos::install(plan);
    let storm = engine(&harness, storm_cfg).run();
    miso_chaos::disable();

    println!(
        "storm: {} submitted / {} delivered / {} shed / {} killed ({} drained), \
         {} wrong, {} unclassified",
        storm.submitted,
        storm.delivered,
        storm.shed,
        storm.killed,
        storm.drained,
        storm.wrong_answers,
        storm.unclassified,
    );
    println!(
        "storm: {} reorgs published ({} abandoned), final epoch {}, {} hv fallbacks, \
         {} base runs; {:.3} qps, p50 {:.1} s, p99 {:.1} s",
        storm.reorgs,
        storm.reorg_failures,
        storm.final_epoch,
        storm.hv_fallbacks,
        storm.base_runs,
        storm.qps,
        storm.p50.as_secs_f64(),
        storm.p99.as_secs_f64(),
    );
    for (tenant, t) in &storm.tenants {
        println!(
            "  {tenant}: {:4} submitted, {:4} delivered, {:4} shed, {:3} killed, \
             p99 {:.1} s",
            t.submitted,
            t.delivered,
            t.shed,
            t.killed,
            t.p99.as_secs_f64()
        );
    }

    let mut storm_violations = 0usize;
    if storm.wrong_answers != 0 {
        eprintln!(
            "servebench: {} delivered answers diverged from the serial oracle",
            storm.wrong_answers
        );
        storm_violations += 1;
    }
    if storm.unclassified != 0 {
        eprintln!(
            "servebench: {} losses carry no failure record",
            storm.unclassified
        );
        storm_violations += 1;
    }
    for f in &storm.failures {
        if f.kind.is_empty()
            || f.tenant.is_none()
            || f.session.is_none()
            || (f.shed && f.retry_after.is_none())
        {
            eprintln!(
                "servebench: incompletely classified loss for {}: kind={:?} tenant={:?} \
                 session={:?} shed={} retry_after={:?}",
                f.label, f.kind, f.tenant, f.session, f.shed, f.retry_after
            );
            storm_violations += 1;
        }
    }
    if storm.delivered == 0 {
        eprintln!("servebench: storm delivered nothing — the server starved");
        storm_violations += 1;
    }
    if storm.reorgs == 0 && storm.reorg_failures == 0 {
        eprintln!("servebench: storm never attempted an online reorg");
        storm_violations += 1;
    }
    // Fairness: the hog tenant must not starve the others — every non-hog
    // tenant keeps a delivered majority of its submissions.
    for (tenant, t) in &storm.tenants {
        if tenant != "t0" && t.submitted > 0 && (t.delivered as f64) < 0.5 * t.submitted as f64 {
            eprintln!(
                "servebench: tenant {tenant} starved: {}/{} delivered",
                t.delivered, t.submitted
            );
            storm_violations += 1;
        }
    }

    miso_bench::write_report(
        "servebench",
        Value::object(vec![
            ("smoke".into(), Value::Bool(smoke)),
            ("deadline_s".into(), Value::Float(deadline.as_secs_f64())),
            ("budget_bytes".into(), Value::Int(budget.as_bytes() as i64)),
            (
                "configs".into(),
                Value::Array(vec![Value::object(vec![
                    ("name".into(), Value::str("worker-scaling")),
                    ("sessions".into(), Value::Int(scale_sessions as i64)),
                    ("qps_1".into(), Value::Float(r1.qps)),
                    ("qps_8".into(), Value::Float(r8.qps)),
                    ("speedup".into(), Value::Float(scaling)),
                ])]),
            ),
            ("storm".into(), report_value(&storm)),
        ]),
    );

    if scaling_violations + storm_violations > 0 {
        eprintln!(
            "servebench: FAILED ({scaling_violations} scaling violations, \
             {storm_violations} storm violations)"
        );
        std::process::exit(1);
    }
    println!(
        "servebench: survived — no aborts, no wrong answers, all losses classified, \
         {scaling:.2}x worker scaling"
    );
}
