//! Incremental view maintenance benchmark (miso-ivm).
//!
//! For each maintainable view shape — filter, project, aggregate, and
//! join+aggregate — two identical systems ingest the same sequence of
//! append-only tweet batches under the Refresh policy:
//!
//! * **delta** — the production configuration: after one warm-up append
//!   builds fold state, every batch folds into the stored views in
//!   O(|delta|);
//! * **full** — `ivm_max_delta_frac = 0`, which rejects every delta before
//!   the state check and forces the same refreshes through full
//!   recomputation.
//!
//! Both modes maintain the same views over the same data, so after the run
//! every view must be row-count- and **checksum-identical** between the two
//! systems — the incremental digest re-stamp is verified against the full
//! rebuild's from-scratch checksum on every shape; any divergence exits
//! non-zero. Wall-clock speedup (full / delta) is the guarded figure: the
//! full run asserts ≥5× per shape at |delta| = 2% of the base log and
//! writes `BENCH_ivm.json` plus `results/ivmbench.report.json`; `--smoke`
//! runs a tiny corpus, keeps the identity checks, and writes the run
//! report only (the CI record-only step).

use miso_common::{Budgets, ByteSize, SimClock};
use miso_core::{MaintAction, MaintenancePolicy, MultistoreSystem, SystemConfig, Variant};
use miso_data::json::{parse_json, to_json};
use miso_data::logs::{Corpus, LogKind, LogsConfig};
use miso_data::{Delta, Value};
use miso_plan::LogicalPlan;
use miso_workload::{standard_udfs, workload_catalog};
use std::time::Instant;

/// Minimum wall-clock speedup (full-recompute / delta-fold) enforced per
/// shape by full runs.
const MIN_SPEEDUP: f64 = 5.0;

struct Shape {
    name: &'static str,
    sql: &'static str,
}

const SHAPES: [Shape; 4] = [
    Shape {
        name: "filter",
        sql: "SELECT t.tweet_id AS id, t.city AS city FROM twitter t WHERE t.followers > 10",
    },
    Shape {
        name: "project",
        sql: "SELECT t.user_id AS u, t.followers + 1 AS f1 FROM twitter t WHERE t.tweet_id >= 0",
    },
    Shape {
        name: "aggregate",
        sql: "SELECT t.city AS c, COUNT(*) AS n, SUM(t.followers) AS s FROM twitter t \
              WHERE t.followers > 10 GROUP BY t.city",
    },
    Shape {
        name: "join+aggregate",
        sql: "SELECT f.city AS c, COUNT(*) AS n FROM twitter t \
              JOIN foursquare f ON t.user_id = f.user_id \
              WHERE t.followers > 1 GROUP BY f.city",
    },
];

struct ModeRun {
    wall: f64,
    maint_cost: f64,
    delta_applies: u64,
    full_refreshes: u64,
    sys: MultistoreSystem,
}

/// Builds a fresh system over `corpus`, materializes the shape's views via
/// one opportunistic-HV run, primes fold state with a warm-up append, then
/// times `batches` further appends under the Refresh policy.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    corpus: &Corpus,
    cfg: &LogsConfig,
    query: &(String, LogicalPlan),
    frac: f64,
    batches: u64,
    batch_rows: usize,
    budgets: Budgets,
) -> ModeRun {
    let mut config = SystemConfig::paper_default(budgets);
    config.ivm_max_delta_frac = frac;
    let mut sys = MultistoreSystem::new(corpus, workload_catalog(), standard_udfs(), config);
    sys.run_workload(Variant::HvOp, std::slice::from_ref(query))
        .expect("shape query runs");
    assert!(
        !sys.catalog.is_empty(),
        "opportunistic run must leave views"
    );
    let mut clock = SimClock::new();
    // Warm-up: builds (or, in full mode, pointlessly rebuilds) fold state.
    let warm = Delta::generated(cfg, LogKind::Twitter, 0, batch_rows);
    sys.grow(&warm, MaintenancePolicy::Refresh, &mut clock)
        .expect("warm-up append");
    let mut wall = 0.0;
    let mut maint_cost = 0.0;
    let mut delta_applies = 0u64;
    let mut full_refreshes = 0u64;
    for batch in 1..=batches {
        let delta = Delta::generated(cfg, LogKind::Twitter, batch, batch_rows);
        let start = Instant::now();
        let report = sys
            .grow(&delta, MaintenancePolicy::Refresh, &mut clock)
            .expect("timed append");
        wall += start.elapsed().as_secs_f64();
        maint_cost += report.cost.as_secs_f64();
        for d in &report.decisions {
            match d.action {
                MaintAction::Delta => delta_applies += 1,
                MaintAction::Full => full_refreshes += 1,
                MaintAction::Invalidated => {}
            }
        }
    }
    ModeRun {
        wall,
        maint_cost,
        delta_applies,
        full_refreshes,
        sys,
    }
}

fn main() {
    miso_bench::obs_init();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        LogsConfig::tiny()
    } else {
        LogsConfig::experiment()
    };
    let corpus = Corpus::generate(&cfg);
    let batch_rows = (cfg.tweets / 50).max(20); // |delta| = 2% of base
    let batches: u64 = if smoke { 2 } else { 4 };
    let budgets = Budgets::new(
        corpus.total_size().scale(2.0),
        corpus.total_size().scale(0.2),
        corpus.total_size().scale(0.02),
    )
    .with_discretization(ByteSize::from_kib(8));
    let catalog = workload_catalog();

    println!(
        "Incremental maintenance vs full recompute ({batches} batches x {batch_rows} tweets, \
         {} base)\n",
        if smoke { "tiny" } else { "experiment" }
    );
    println!(
        "{:>15} {:>10} {:>10} {:>9} {:>8} {:>7}",
        "shape", "delta (s)", "full (s)", "speedup", "applies", "fulls"
    );

    let mut failures = 0u32;
    let mut cfg_values = Vec::new();
    for shape in &SHAPES {
        let plan = miso_lang::compile(shape.sql, &catalog).expect("shape compiles");
        let query = (shape.name.to_string(), plan);
        let delta_run = run_mode(
            &corpus,
            &cfg,
            &query,
            SystemConfig::paper_default(budgets).ivm_max_delta_frac,
            batches,
            batch_rows,
            budgets,
        );
        let full_run = run_mode(&corpus, &cfg, &query, 0.0, batches, batch_rows, budgets);

        // The production mode must actually exercise the delta path, and
        // the forced mode must never touch it.
        if delta_run.delta_applies == 0 {
            eprintln!("ivmbench: {}: no delta applies in delta mode", shape.name);
            failures += 1;
        }
        if full_run.delta_applies != 0 {
            eprintln!(
                "ivmbench: {}: delta applies leaked into full mode",
                shape.name
            );
            failures += 1;
        }

        // Identity: both systems maintained the same views over the same
        // appends; every surviving view must agree on row count and
        // content checksum (the incremental re-stamp vs the full rebuild).
        let mut compared = 0usize;
        for def in delta_run.sys.catalog.defs() {
            let Some(other) = full_run.sys.catalog.get(&def.name) else {
                continue;
            };
            compared += 1;
            if def.rows != other.rows || def.checksum != other.checksum {
                eprintln!(
                    "ivmbench: {}: view {} diverged (rows {} vs {}, checksums {:?} vs {:?})",
                    shape.name, def.name, def.rows, other.rows, def.checksum, other.checksum
                );
                failures += 1;
            }
        }
        if compared == 0 {
            eprintln!("ivmbench: {}: no common views to compare", shape.name);
            failures += 1;
        }

        let speedup = if delta_run.wall > 0.0 {
            full_run.wall / delta_run.wall
        } else {
            f64::INFINITY
        };
        println!(
            "{:>15} {:>10.4} {:>10.4} {:>8.2}x {:>8} {:>7}",
            shape.name,
            delta_run.wall,
            full_run.wall,
            speedup,
            delta_run.delta_applies,
            full_run.full_refreshes
        );
        if !smoke && speedup < MIN_SPEEDUP {
            eprintln!(
                "ivmbench: {}: speedup {speedup:.2}x below the {MIN_SPEEDUP:.0}x floor",
                shape.name
            );
            failures += 1;
        }
        cfg_values.push(Value::object(vec![
            ("name".into(), Value::str(shape.name)),
            ("base_rows".into(), Value::Int(cfg.tweets as i64)),
            ("delta_rows".into(), Value::Int(batch_rows as i64)),
            ("batches".into(), Value::Int(batches as i64)),
            ("delta_wall_s".into(), Value::Float(delta_run.wall)),
            ("full_wall_s".into(), Value::Float(full_run.wall)),
            ("speedup".into(), Value::Float(speedup)),
            (
                "delta_applies".into(),
                Value::Int(delta_run.delta_applies as i64),
            ),
            (
                "full_refreshes".into(),
                Value::Int(full_run.full_refreshes as i64),
            ),
            (
                "delta_sim_cost_s".into(),
                Value::Float(delta_run.maint_cost),
            ),
            ("full_sim_cost_s".into(), Value::Float(full_run.maint_cost)),
        ]));
    }

    let report = Value::object(vec![
        ("bench".into(), Value::str("ivmbench")),
        (
            "mode".into(),
            Value::str(if smoke { "smoke" } else { "full" }),
        ),
        ("configs".into(), Value::Array(cfg_values)),
    ]);
    let text = to_json(&report);
    if let Err(e) = parse_json(&text) {
        eprintln!("ivmbench: emitted JSON does not round-trip: {e}");
        failures += 1;
    }
    if !smoke {
        if let Err(e) = std::fs::write("BENCH_ivm.json", format!("{text}\n")) {
            eprintln!("ivmbench: cannot write BENCH_ivm.json: {e}");
            failures += 1;
        }
    }
    miso_bench::write_report("ivmbench", report);

    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "\nivmbench: delta-maintained views identical to fully recomputed views on every shape"
    );
}
