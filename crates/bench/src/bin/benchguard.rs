//! Perf-regression guard: compares the freshly-written smoke reports
//! (`results/execbench.report.json`, `results/tunerbench.report.json`)
//! against the committed full-mode baselines (`BENCH_exec.json`,
//! `BENCH_tuner.json`).
//!
//! Smoke and full runs use different data sizes, so absolute times are not
//! comparable; the guard compares the dimensionless **speedup** (serial /
//! engine) per matched configuration instead, within a generous tolerance
//! band: a smoke speedup may fall to `MISO_BENCH_TOL` (default 0.35) of the
//! committed baseline before it counts as a regression — smoke inputs are
//! small, so parallel speedups are structurally lower there.
//!
//! By default violations only warn (CI stays green on noisy machines);
//! `MISO_BENCH_STRICT=1` turns them into a non-zero exit.

use miso_data::json::parse_json;
use miso_data::Value;
use std::collections::BTreeSet;

fn load(path: &str) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    match parse_json(text.trim()) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("benchguard: cannot parse {path}: {e}");
            None
        }
    }
}

/// Loads one smoke-report/baseline pair. A report with no committed
/// baseline is **silently** ignored — a bench opts into guarding by
/// committing a baseline, so un-guarded reports (soakbench, chaos, the
/// figures) never produce noise here. A missing smoke report when a
/// baseline *is* committed still warns: the smoke step should have
/// produced it.
fn pair(report: &str, baseline: &str) -> Option<(Value, Value)> {
    if !std::path::Path::new(baseline).exists() {
        return None;
    }
    match (load(report), load(baseline)) {
        (Some(smoke), Some(base)) => Some((smoke, base)),
        (None, _) => {
            eprintln!("benchguard: {baseline} committed but {report} missing; skipping");
            None
        }
        // Baseline present but unparseable: load() already warned.
        _ => None,
    }
}

/// The `configs` array of a report: baselines keep it at the top level,
/// smoke reports nest it under `extra`.
fn configs(doc: &Value) -> Vec<&Value> {
    let root = doc.get_field("extra").unwrap_or(doc);
    match root.get_field("configs") {
        Some(Value::Array(items)) => items.iter().collect(),
        _ => Vec::new(),
    }
}

fn num(v: &Value, field: &str) -> Option<f64> {
    v.get_field(field).and_then(Value::as_f64)
}

/// A baselined configuration that no longer appears in the fresh report is
/// itself a regression signal — the bench silently stopped covering it (a
/// renamed pipeline, a dropped row count, a pruned sweep point). Warns once
/// per vanished key and counts a violation.
fn check_vanished(
    bench: &str,
    baseline_keys: impl IntoIterator<Item = String>,
    report_keys: &BTreeSet<String>,
    violations: &mut u32,
) {
    for key in baseline_keys.into_iter().collect::<BTreeSet<_>>() {
        if !report_keys.contains(&key) {
            eprintln!("benchguard: {bench} `{key}` is baselined but missing from the new report");
            *violations += 1;
        }
    }
}

fn main() {
    let tol = std::env::var("MISO_BENCH_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.35);
    let strict = std::env::var("MISO_BENCH_STRICT").is_ok_and(|v| v == "1");
    let mut violations = 0u32;
    let mut compared = 0u32;

    // --- execbench: match configs by pipeline name; the baseline entry
    // with the smallest row count is the closest shape to the smoke run.
    if let Some((smoke, base)) = pair("results/execbench.report.json", "BENCH_exec.json") {
        let base_cfgs = configs(&base);
        let smoke_keys: BTreeSet<String> = configs(&smoke)
            .iter()
            .filter_map(|c| c.get_field("pipeline").and_then(Value::as_str))
            .map(str::to_string)
            .collect();
        check_vanished(
            "exec pipeline",
            base_cfgs
                .iter()
                .filter_map(|b| b.get_field("pipeline").and_then(Value::as_str))
                .map(str::to_string),
            &smoke_keys,
            &mut violations,
        );
        for cfg in configs(&smoke) {
            let Some(pipeline) = cfg.get_field("pipeline").and_then(Value::as_str) else {
                continue;
            };
            let Some(speedup) = num(cfg, "speedup") else {
                continue;
            };
            let baseline = base_cfgs
                .iter()
                .filter(|b| b.get_field("pipeline").and_then(Value::as_str) == Some(pipeline))
                .min_by(|a, b| {
                    num(a, "rows")
                        .unwrap_or(f64::MAX)
                        .total_cmp(&num(b, "rows").unwrap_or(f64::MAX))
                })
                .and_then(|b| num(b, "speedup"));
            let Some(baseline) = baseline else {
                eprintln!("benchguard: no BENCH_exec.json baseline for `{pipeline}`");
                continue;
            };
            compared += 1;
            let floor = baseline * tol;
            let ok = speedup >= floor;
            println!(
                "benchguard: exec {pipeline}: smoke {speedup:.2}x vs baseline \
                     {baseline:.2}x (floor {floor:.2}x) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                violations += 1;
            }
        }
    }

    // --- tunerbench: match configs by (views, queries).
    if let Some((smoke, base)) = pair("results/tunerbench.report.json", "BENCH_tuner.json") {
        let base_cfgs = configs(&base);
        let key = |c: &Value| -> Option<String> {
            Some(format!("v{} q{}", num(c, "views")?, num(c, "queries")?))
        };
        let smoke_keys: BTreeSet<String> = configs(&smoke).iter().filter_map(|c| key(c)).collect();
        // Smoke tuner sweeps are a deliberate subset of the baselined grid,
        // so individual vanished configs are expected; only a report that
        // covers *none* of the baselined grid signals lost coverage.
        let base_keys: BTreeSet<String> = base_cfgs.iter().filter_map(|b| key(b)).collect();
        if !base_keys.is_empty() && base_keys.intersection(&smoke_keys).count() == 0 {
            eprintln!("benchguard: tuner report covers none of the baselined configs");
            violations += 1;
        }
        for cfg in configs(&smoke) {
            let (Some(views), Some(queries)) = (num(cfg, "views"), num(cfg, "queries")) else {
                continue;
            };
            let Some(speedup) = num(cfg, "speedup") else {
                continue;
            };
            if cfg.get_field("designs_match") == Some(&Value::Bool(false)) {
                eprintln!("benchguard: tuner v{views} q{queries}: designs diverged");
                violations += 1;
            }
            let baseline = base_cfgs
                .iter()
                .find(|b| num(b, "views") == Some(views) && num(b, "queries") == Some(queries))
                .and_then(|b| num(b, "speedup"));
            let Some(baseline) = baseline else {
                println!(
                    "benchguard: tuner v{views} q{queries}: no matching baseline config; \
                         skipping"
                );
                continue;
            };
            compared += 1;
            let floor = baseline * tol;
            let ok = speedup >= floor;
            println!(
                "benchguard: tuner v{views} q{queries}: smoke {speedup:.2}x vs baseline \
                     {baseline:.2}x (floor {floor:.2}x) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                violations += 1;
            }
        }
    }

    // --- servebench: match configs by name; the guarded figure is the
    // 8-worker vs 1-worker qps scaling of the serving engine (simulated
    // worker slots, so the figure is host-independent and the tolerance
    // band mainly absorbs workload-size differences).
    if let Some((smoke, base)) = pair("results/servebench.report.json", "BENCH_serve.json") {
        let base_cfgs = configs(&base);
        let smoke_keys: BTreeSet<String> = configs(&smoke)
            .iter()
            .filter_map(|c| c.get_field("name").and_then(Value::as_str))
            .map(str::to_string)
            .collect();
        check_vanished(
            "serve config",
            base_cfgs
                .iter()
                .filter_map(|b| b.get_field("name").and_then(Value::as_str))
                .map(str::to_string),
            &smoke_keys,
            &mut violations,
        );
        for cfg in configs(&smoke) {
            let Some(name) = cfg.get_field("name").and_then(Value::as_str) else {
                continue;
            };
            let Some(speedup) = num(cfg, "speedup") else {
                continue;
            };
            let baseline = base_cfgs
                .iter()
                .find(|b| b.get_field("name").and_then(Value::as_str) == Some(name))
                .and_then(|b| num(b, "speedup"));
            let Some(baseline) = baseline else {
                eprintln!("benchguard: no BENCH_serve.json baseline for `{name}`");
                continue;
            };
            compared += 1;
            let floor = baseline * tol;
            let ok = speedup >= floor;
            println!(
                "benchguard: serve {name}: smoke {speedup:.2}x vs baseline \
                     {baseline:.2}x (floor {floor:.2}x) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                violations += 1;
            }
        }
    }

    // --- ivmbench: match configs by shape name; the guarded figure is the
    // wall-clock speedup of delta-fold maintenance over forced full
    // recomputation. Smoke runs use a tiny corpus where fixed per-append
    // overheads weigh more, so the usual tolerance band applies.
    if let Some((smoke, base)) = pair("results/ivmbench.report.json", "BENCH_ivm.json") {
        let base_cfgs = configs(&base);
        let smoke_keys: BTreeSet<String> = configs(&smoke)
            .iter()
            .filter_map(|c| c.get_field("name").and_then(Value::as_str))
            .map(str::to_string)
            .collect();
        check_vanished(
            "ivm shape",
            base_cfgs
                .iter()
                .filter_map(|b| b.get_field("name").and_then(Value::as_str))
                .map(str::to_string),
            &smoke_keys,
            &mut violations,
        );
        for cfg in configs(&smoke) {
            let Some(name) = cfg.get_field("name").and_then(Value::as_str) else {
                continue;
            };
            let Some(speedup) = num(cfg, "speedup") else {
                continue;
            };
            let baseline = base_cfgs
                .iter()
                .find(|b| b.get_field("name").and_then(Value::as_str) == Some(name))
                .and_then(|b| num(b, "speedup"));
            let Some(baseline) = baseline else {
                eprintln!("benchguard: no BENCH_ivm.json baseline for `{name}`");
                continue;
            };
            compared += 1;
            let floor = baseline * tol;
            let ok = speedup >= floor;
            println!(
                "benchguard: ivm {name}: smoke {speedup:.2}x vs baseline \
                     {baseline:.2}x (floor {floor:.2}x) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            if !ok {
                violations += 1;
            }
        }
    }

    if violations > 0 {
        eprintln!(
            "benchguard: {violations} regression(s) across {compared} comparison(s){}",
            if strict {
                ""
            } else {
                " (warn-only; set MISO_BENCH_STRICT=1 to fail)"
            }
        );
        if strict {
            std::process::exit(1);
        }
    } else {
        println!("benchguard: {compared} comparison(s), no perf regressions beyond tolerance");
    }
}
