//! Property tests for the IVM delta algebra: folding a random delta into
//! state built from a random base must be indistinguishable from replaying
//! everything at once — against both [`miso_exec::AggState`]'s own full
//! replay and the serial interpreter oracle — for every base/delta split,
//! NULL group keys and NULL agg inputs included. A second pair of
//! properties checks the append path's prefix-stability invariants:
//! per-record plans and hash joins over a fixed build side emit
//! `f(base) ++ f(delta)` for `f(base ++ delta)`.
//!
//! Gated behind the `extern-deps` marker feature like the criterion
//! benches: the sanctioned offline crate set has no `proptest`, so the
//! default build compiles this file to nothing. Enable with
//! `cargo test -p miso-exec --features extern-deps` after adding
//! `proptest` as a local dev-dependency. The always-on unit tests in
//! `src/ivm.rs` cover the same properties over hand-built splits.

#[cfg(feature = "extern-deps")]
mod real {
    use miso_data::{DataType, Field, Row, Schema, Value};
    use miso_exec::bench_hooks::hash_join_vex;
    use miso_exec::{execute_serial, AggState, FoldOutcome, MemSource, UdfRegistry};
    use miso_plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan, Operator, PlanBuilder};
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            (0i64..6).prop_map(Value::Int),
            "[a-c]".prop_map(Value::str),
        ]
    }

    fn arb_val() -> impl Strategy<Value = Value> {
        prop_oneof![Just(Value::Null), (-100i64..100).prop_map(Value::Int)]
    }

    fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Row>> {
        prop::collection::vec((arb_key(), arb_val()), 0..max)
            .prop_map(|ps| ps.into_iter().map(|(k, v)| Row::new(vec![k, v])).collect())
    }

    /// Every foldable accumulator variant at once (Avg and float SUM are
    /// rejected at build time by design).
    fn aggs() -> Vec<AggExpr> {
        vec![
            AggExpr::new(AggFunc::Count, None, "n"),
            AggExpr::new(AggFunc::CountDistinct, Some(Expr::col(1)), "d"),
            AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "s"),
            AggExpr::new(AggFunc::Min, Some(Expr::col(1)), "lo"),
            AggExpr::new(AggFunc::Max, Some(Expr::col(1)), "hi"),
        ]
    }

    fn two_col_schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ])
    }

    fn agg_plan() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "base".into(),
                    schema: two_col_schema(),
                },
                vec![],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![0],
                    aggs: aggs(),
                },
                vec![sv],
            )
            .unwrap();
        b.finish(agg).unwrap()
    }

    fn filter_plan() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "base".into(),
                    schema: two_col_schema(),
                },
                vec![],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::Binary {
                        op: BinOp::Gt,
                        left: Box::new(Expr::col(1)),
                        right: Box::new(Expr::lit(0i64)),
                    },
                },
                vec![sv],
            )
            .unwrap();
        b.finish(filt).unwrap()
    }

    fn run_serial(plan: &LogicalPlan, rows: &[Row]) -> Vec<Row> {
        let mut src = MemSource::new();
        src.add_view("base", rows.to_vec());
        let exec = execute_serial(plan, &src, &UdfRegistry::new()).unwrap();
        exec.root_rows().unwrap().to_vec()
    }

    proptest! {
        /// Fold(base) + delta == replay(base ++ delta) == serial oracle,
        /// for every split point — and the `AggApplied` patch list applied
        /// to the base output reconstructs the same rows.
        #[test]
        fn delta_fold_matches_full_replay_and_serial(
            rows in arb_rows(60),
            split_frac in 0.0f64..=1.0,
        ) {
            let split = ((rows.len() as f64) * split_frac) as usize;
            let split = split.min(rows.len());
            let (base, delta) = rows.split_at(split);
            let a = aggs();

            let mut state = AggState::build(base, &[0], &a)
                .unwrap()
                .expect("integer aggregates fold");
            let mut patched = state.output_rows();
            let applied = match state.apply(delta, &[0], &a).unwrap() {
                FoldOutcome::Applied(applied) => applied,
                FoldOutcome::FloatSum => unreachable!("no float inputs generated"),
            };
            for (slot, row) in &applied.updated {
                patched[*slot] = row.clone();
            }
            patched.extend(applied.appended.iter().cloned());

            let folded = state.output_rows();
            let full = AggState::build(&rows, &[0], &a)
                .unwrap()
                .expect("integer aggregates fold")
                .output_rows();
            prop_assert_eq!(&folded, &full, "fold diverged from full replay");
            prop_assert_eq!(&patched, &full, "patch list diverged from full replay");
            prop_assert_eq!(folded, run_serial(&agg_plan(), &rows), "fold diverged from serial");
        }

        /// Per-record plans distribute over append: running the plan on
        /// `base ++ delta` equals the concatenation of the per-part runs.
        /// This is the invariant the IVM append path (and the stored-view
        /// prefix it extends) relies on.
        #[test]
        fn filter_output_is_prefix_stable_under_append(
            rows in arb_rows(80),
            split_frac in 0.0f64..=1.0,
        ) {
            let split = ((rows.len() as f64) * split_frac) as usize;
            let split = split.min(rows.len());
            let plan = filter_plan();
            let mut parts = run_serial(&plan, &rows[..split]);
            parts.extend(run_serial(&plan, &rows[split..]));
            prop_assert_eq!(run_serial(&plan, &rows), parts);
        }

        /// Hash joins against a fixed build side are prefix-stable in the
        /// probe input, NULL keys included (they never match): probing with
        /// `base ++ delta` equals probing each part and concatenating.
        #[test]
        fn join_probe_is_prefix_stable_under_append(
            left in arb_rows(50),
            right in arb_rows(30),
            split_frac in 0.0f64..=1.0,
        ) {
            let split = ((left.len() as f64) * split_frac) as usize;
            let split = split.min(left.len());
            let on = [(0usize, 0usize)];
            let mut parts = hash_join_vex(&left[..split], &right, &on).unwrap();
            parts.extend(hash_join_vex(&left[split..], &right, &on).unwrap());
            prop_assert_eq!(hash_join_vex(&left, &right, &on).unwrap(), parts);
        }
    }
}
