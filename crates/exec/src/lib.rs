//! Physical row-based execution.
//!
//! Both simulated stores execute logical plans with the same operator
//! implementations — what differs between HV and DW is *how plans are staged
//! and costed*, not what the operators compute. Keeping execution shared
//! makes result-correctness testable store-independently: an HV execution, a
//! DW execution, and a view-rewritten execution of the same query must agree.
//!
//! * [`eval`] — scalar expression evaluation (Hive-style lenient casts,
//!   NULL-tolerant operators, scalar builtins);
//! * [`udf`] — the user-defined-function registry (UDFs are the operators
//!   that pin plan subtrees to HV);
//! * [`engine`] — the operator interpreter: executes a plan DAG over a
//!   [`engine::DataSource`], materializing every node's output (the
//!   materialization behaviour that yields opportunistic views).

pub mod engine;
pub mod eval;
pub mod udf;

pub use engine::{DataSource, Execution, MemSource};
pub use udf::{Udf, UdfRegistry};
