//! Physical row-based execution.
//!
//! Both simulated stores execute logical plans with the same operator
//! implementations — what differs between HV and DW is *how plans are staged
//! and costed*, not what the operators compute. Keeping execution shared
//! makes result-correctness testable store-independently: an HV execution, a
//! DW execution, and a view-rewritten execution of the same query must agree.
//!
//! * [`eval`] — scalar expression evaluation (Hive-style lenient casts,
//!   NULL-tolerant operators, scalar builtins);
//! * [`udf`] — the user-defined-function registry (UDFs are the operators
//!   that pin plan subtrees to HV);
//! * [`col`] — columnar (vectorized) execution support: the `MISO_COL`
//!   toggle, the morsel-at-a-time expression evaluator over
//!   [`miso_data::ColBatch`], and the fused scan+project line parser;
//! * [`engine`] — the morsel-parallel operator interpreter (miso-vex):
//!   executes a plan DAG over a [`engine::DataSource`], materializing every
//!   node's output (the materialization behaviour that yields opportunistic
//!   views) unless the caller opts into root-only retention;
//! * [`serial`] — the original row-at-a-time interpreter, preserved as the
//!   differential-testing oracle and benchmark baseline.

pub mod col;
pub mod engine;
pub mod eval;
pub mod ivm;
pub mod profile;
pub mod serial;
pub mod udf;

pub use engine::{
    execute_subset_guarded, DataSource, ExecOptions, Execution, MemSource, MORSEL_SIZE,
};
pub use ivm::{apply_projection, AggApplied, AggState, FoldOutcome};
pub use profile::OpProfile;
pub use serial::execute_serial;
pub use udf::{Udf, UdfRegistry};

/// Operator internals exposed for the in-repo micro-benchmarks only; not a
/// stable API.
#[doc(hidden)]
pub mod bench_hooks {
    pub use crate::engine::hash_join as hash_join_vex;
    pub use crate::serial::hash_join_serial;
}
