//! The operator interpreter.
//!
//! Executes a [`LogicalPlan`] bottom-up over a [`DataSource`], materializing
//! every node's output as an in-memory row vector. Full materialization is a
//! modeling choice, not laziness: Hadoop materializes stage boundaries for
//! fault tolerance, and those materializations are precisely the
//! opportunistic views MISO tunes with. The HV store decides *which* node
//! outputs to retain; the engine makes them all observable.
//!
//! [`execute_subset`] supports split execution: the HV side runs the nodes
//! below the cut, the working sets cross the wire, and the DW side resumes
//! with those outputs injected as `provided` inputs.

use crate::eval::{eval, eval_predicate};
use crate::udf::UdfRegistry;
use miso_common::ids::NodeId;
use miso_common::{ByteSize, MisoError, Result};
use miso_data::json::parse_json;
use miso_data::{Row, Value};
use miso_plan::{AggFunc, LogicalPlan, Operator};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Supplies leaf data: raw log lines and materialized view rows.
pub trait DataSource {
    /// The JSON lines of base log `log`.
    fn log_lines(&self, log: &str) -> Result<&[String]>;
    /// The rows of materialized view `view`.
    fn view_rows(&self, view: &str) -> Result<&[Row]>;
}

/// An in-memory [`DataSource`].
#[derive(Debug, Clone, Default)]
pub struct MemSource {
    logs: HashMap<String, Vec<String>>,
    views: HashMap<String, Vec<Row>>,
}

impl MemSource {
    /// An empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base log's lines.
    pub fn add_log(&mut self, name: impl Into<String>, lines: Vec<String>) {
        self.logs.insert(name.into(), lines);
    }

    /// Registers a view's rows.
    pub fn add_view(&mut self, name: impl Into<String>, rows: Vec<Row>) {
        self.views.insert(name.into(), rows);
    }
}

impl DataSource for MemSource {
    fn log_lines(&self, log: &str) -> Result<&[String]> {
        self.logs
            .get(log)
            .map(Vec::as_slice)
            .ok_or_else(|| MisoError::Store(format!("unknown log `{log}`")))
    }

    fn view_rows(&self, view: &str) -> Result<&[Row]> {
        self.views
            .get(view)
            .map(Vec::as_slice)
            .ok_or_else(|| MisoError::Store(format!("unknown view `{view}`")))
    }
}

/// The result of executing (part of) a plan.
#[derive(Debug, Clone)]
pub struct Execution {
    outputs: HashMap<NodeId, Arc<Vec<Row>>>,
    /// Malformed log lines skipped by scans (Hive-style lenience).
    pub skipped_lines: u64,
    root: NodeId,
}

impl Execution {
    /// The output of node `id`; panics if that node was not executed.
    pub fn output(&self, id: NodeId) -> &Arc<Vec<Row>> {
        &self.outputs[&id]
    }

    /// The output of node `id`, if executed.
    pub fn try_output(&self, id: NodeId) -> Option<&Arc<Vec<Row>>> {
        self.outputs.get(&id)
    }

    /// The root output rows; errors if the root was outside the executed
    /// subset (e.g. an HV-side partial execution).
    pub fn root_rows(&self) -> Result<&[Row]> {
        self.outputs
            .get(&self.root)
            .map(|r| r.as_slice())
            .ok_or_else(|| MisoError::Execution("root was not part of the executed subset".into()))
    }

    /// Approximate serialized size of node `id`'s output.
    pub fn output_bytes(&self, id: NodeId) -> ByteSize {
        ByteSize::from_bytes(
            self.outputs
                .get(&id)
                .map(|rows| rows.iter().map(Row::approx_bytes).sum())
                .unwrap_or(0),
        )
    }

    /// Ids of all executed (or provided) nodes.
    pub fn executed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.outputs.keys().copied()
    }
}

/// Executes the whole plan.
pub fn execute(
    plan: &LogicalPlan,
    source: &dyn DataSource,
    udfs: &UdfRegistry,
) -> Result<Execution> {
    execute_subset(plan, None, HashMap::new(), source, udfs)
}

/// Executes a subset of the plan's nodes.
///
/// * `subset` — nodes to execute (`None` = all). Each executed node's inputs
///   must be in the subset or in `provided`.
/// * `provided` — pre-computed node outputs (working sets shipped from the
///   other store during split execution).
pub fn execute_subset(
    plan: &LogicalPlan,
    subset: Option<&HashSet<NodeId>>,
    provided: HashMap<NodeId, Arc<Vec<Row>>>,
    source: &dyn DataSource,
    udfs: &UdfRegistry,
) -> Result<Execution> {
    let mut outputs: HashMap<NodeId, Arc<Vec<Row>>> = provided;
    let mut skipped_lines = 0u64;
    for node in plan.nodes() {
        if outputs.contains_key(&node.id) {
            continue; // provided
        }
        if let Some(set) = subset {
            if !set.contains(&node.id) {
                continue;
            }
        }
        let mut op_span = miso_obs::span("exec.op");
        if op_span.is_active() {
            op_span.push_field("op", miso_obs::FieldValue::Str(node.op.label()));
            op_span.push_field("node", miso_obs::FieldValue::U64(node.id.raw()));
        }
        let get_input = |idx: usize| -> Result<&Arc<Vec<Row>>> {
            outputs.get(&node.inputs[idx]).ok_or_else(|| {
                MisoError::Execution(format!(
                    "node {} input {} neither executed nor provided",
                    node.id, node.inputs[idx]
                ))
            })
        };
        let rows: Vec<Row> = match &node.op {
            Operator::ScanLog { log } => {
                let mut rows = Vec::new();
                for line in source.log_lines(log)? {
                    match parse_json(line) {
                        Ok(v) => rows.push(Row::new(vec![v])),
                        Err(_) => skipped_lines += 1,
                    }
                }
                rows
            }
            Operator::ScanView { view, .. } => source.view_rows(view)?.to_vec(),
            Operator::Filter { predicate } => {
                let input = get_input(0)?;
                let mut rows = Vec::new();
                for row in input.iter() {
                    if eval_predicate(predicate, row)? {
                        rows.push(row.clone());
                    }
                }
                rows
            }
            Operator::Project { exprs } => {
                let input = get_input(0)?;
                let mut rows = Vec::with_capacity(input.len());
                for row in input.iter() {
                    let values: Vec<Value> = exprs
                        .iter()
                        .map(|(_, e)| eval(e, row))
                        .collect::<Result<_>>()?;
                    rows.push(Row::new(values));
                }
                rows
            }
            Operator::Join { on } => {
                let left = get_input(0)?.clone();
                let right = get_input(1)?;
                hash_join(&left, right, on)
            }
            Operator::Aggregate { group_by, aggs } => {
                let input = get_input(0)?;
                aggregate(input, group_by, aggs)?
            }
            Operator::Udf { name, .. } => {
                let udf = udfs.require(name)?;
                let input = get_input(0)?;
                let mut rows = Vec::new();
                for row in input.iter() {
                    rows.extend(udf.apply(row)?);
                }
                rows
            }
            Operator::Sort { keys } => {
                let input = get_input(0)?;
                let mut rows = input.as_ref().clone();
                rows.sort_by(|a, b| {
                    for &(col, desc) in keys {
                        let ord = a.get(col).cmp(b.get(col));
                        let ord = if desc { ord.reverse() } else { ord };
                        if !ord.is_eq() {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                rows
            }
            Operator::Limit { n } => {
                let input = get_input(0)?;
                input.iter().take(*n as usize).cloned().collect()
            }
        };
        if op_span.is_active() {
            op_span.push_field("rows_out", miso_obs::FieldValue::U64(rows.len() as u64));
            miso_obs::observe("exec.op_rows_out", rows.len() as u64);
        }
        miso_obs::count("exec.ops_executed", 1);
        outputs.insert(node.id, Arc::new(rows));
    }
    Ok(Execution {
        outputs,
        skipped_lines,
        root: plan.root(),
    })
}

/// Inner hash equijoin; NULL keys never match (SQL semantics).
fn hash_join(left: &[Row], right: &[Row], on: &[(usize, usize)]) -> Vec<Row> {
    // Build on the right side.
    let mut table: HashMap<Vec<&Value>, Vec<&Row>> = HashMap::new();
    'right: for row in right {
        let mut key = Vec::with_capacity(on.len());
        for &(_, r) in on {
            let v = row.get(r);
            if v.is_null() {
                continue 'right;
            }
            key.push(v);
        }
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    'left: for row in left {
        let mut key = Vec::with_capacity(on.len());
        for &(l, _) in on {
            let v = row.get(l);
            if v.is_null() {
                continue 'left;
            }
            key.push(v);
        }
        if let Some(matches) = table.get(&key) {
            for m in matches {
                out.push(row.concat(m));
            }
        }
    }
    out
}

/// Streaming accumulator per aggregate function.
enum Acc {
    Count(i64),
    CountDistinct(HashSet<Value>),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl Acc {
    fn new(func: AggFunc, float_sum: bool) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::CountDistinct(HashSet::new()),
            AggFunc::Sum if float_sum => Acc::SumFloat(0.0, false),
            AggFunc::Sum => Acc::SumInt(0, false),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => {
                // COUNT(*) gets None (count all); COUNT(expr) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            Acc::CountDistinct(set) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        set.insert(val.clone());
                    }
                }
            }
            Acc::SumInt(acc, seen) => {
                if let Some(val) = v {
                    if let Some(i) = val.as_i64() {
                        *acc += i;
                        *seen = true;
                    } else if let Some(f) = val.as_f64() {
                        // Mixed input: fall back via float path; keep integer
                        // accumulation best-effort.
                        *acc += f as i64;
                        *seen = true;
                    }
                }
            }
            Acc::SumFloat(acc, seen) => {
                if let Some(f) = v.and_then(|val| val.as_f64()) {
                    *acc += f;
                    *seen = true;
                }
            }
            Acc::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().is_none_or(|c| val < c) {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().is_none_or(|c| val > c) {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(f) = v.and_then(|val| val.as_f64()) {
                    *sum += f;
                    *n += 1;
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::CountDistinct(set) => Value::Int(set.len() as i64),
            Acc::SumInt(acc, seen) => {
                if seen {
                    Value::Int(acc)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat(acc, seen) => {
                if seen {
                    Value::Float(acc)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

fn aggregate(input: &[Row], group_by: &[usize], aggs: &[miso_plan::AggExpr]) -> Result<Vec<Row>> {
    // Decide int-vs-float SUM from the first non-null input per aggregate.
    let float_sum: Vec<bool> = aggs
        .iter()
        .map(|agg| {
            if agg.func != AggFunc::Sum {
                return false;
            }
            let Some(e) = &agg.input else { return false };
            for row in input {
                if let Ok(v) = eval(e, row) {
                    match v {
                        Value::Float(_) => return true,
                        Value::Int(_) => return false,
                        _ => continue,
                    }
                }
            }
            false
        })
        .collect();

    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    // Deterministic output: remember first-seen order of groups.
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in input {
        let key: Vec<Value> = group_by.iter().map(|&g| row.get(g).clone()).collect();
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(|| {
                    aggs.iter()
                        .zip(&float_sum)
                        .map(|(a, &fs)| Acc::new(a.func, fs))
                        .collect()
                })
            }
        };
        for (acc, agg) in accs.iter_mut().zip(aggs) {
            match &agg.input {
                Some(e) => {
                    let v = eval(e, row)?;
                    acc.update(Some(&v));
                }
                None => acc.update(None),
            }
        }
    }
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = aggs
            .iter()
            .zip(&float_sum)
            .map(|(a, &fs)| Acc::new(a.func, fs))
            .collect();
        let values: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![Row::new(values)]);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group exists");
        let mut values = key;
        values.extend(accs.into_iter().map(Acc::finish));
        out.push(Row::new(values));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::{DataType, Field, Schema};
    use miso_plan::{AggExpr, Expr, PlanBuilder};

    fn source() -> MemSource {
        let mut src = MemSource::new();
        src.add_log(
            "events",
            vec![
                r#"{"uid": 1, "city": "sf", "score": 10}"#.to_string(),
                r#"{"uid": 2, "city": "ny", "score": 20}"#.to_string(),
                r#"{"uid": 1, "city": "sf", "score": 30}"#.to_string(),
                "not json at all".to_string(),
                r#"{"uid": 3, "city": "sf"}"#.to_string(),
            ],
        );
        src
    }

    fn extract_plan() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("uid".into(), Expr::col(0).get("uid").cast(DataType::Int)),
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                        (
                            "score".into(),
                            Expr::col(0).get("score").cast(DataType::Int),
                        ),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        b.finish(proj).unwrap()
    }

    #[test]
    fn scan_skips_malformed_lines() {
        let exec = execute(&extract_plan(), &source(), &UdfRegistry::new()).unwrap();
        assert_eq!(exec.skipped_lines, 1);
        assert_eq!(exec.root_rows().unwrap().len(), 4);
    }

    #[test]
    fn missing_fields_become_null() {
        let exec = execute(&extract_plan(), &source(), &UdfRegistry::new()).unwrap();
        let last = &exec.root_rows().unwrap()[3];
        assert_eq!(last.get(0), &Value::Int(3));
        assert_eq!(last.get(2), &Value::Null);
    }

    #[test]
    fn filter_and_aggregate() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                        (
                            "score".into(),
                            Expr::col(0).get("score").cast(DataType::Int),
                        ),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit("sf")),
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![0],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                        AggExpr::new(AggFunc::Avg, Some(Expr::col(1)), "avg"),
                        AggExpr::new(AggFunc::Min, Some(Expr::col(1)), "lo"),
                        AggExpr::new(AggFunc::Max, Some(Expr::col(1)), "hi"),
                    ],
                },
                vec![filt],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new()).unwrap();
        let rows = exec.root_rows().unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.get(0), &Value::str("sf"));
        assert_eq!(row.get(1), &Value::Int(3), "COUNT(*) counts null-score row");
        assert_eq!(row.get(2), &Value::Int(40), "SUM skips NULL");
        assert_eq!(row.get(3), &Value::Float(20.0), "AVG over non-null only");
        assert_eq!(row.get(4), &Value::Int(10));
        assert_eq!(row.get(5), &Value::Int(30));
    }

    #[test]
    fn count_distinct() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![("uid".into(), Expr::col(0).get("uid").cast(DataType::Int))],
                },
                vec![scan],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(
                        AggFunc::CountDistinct,
                        Some(Expr::col(0)),
                        "users",
                    )],
                },
                vec![proj],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new()).unwrap();
        assert_eq!(exec.root_rows().unwrap()[0].get(0), &Value::Int(3));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let mut src = MemSource::new();
        src.add_log("empty", vec![]);
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "empty".into(),
                },
                vec![],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(0)), "s"),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let exec = execute(&plan, &src, &UdfRegistry::new()).unwrap();
        let rows = exec.root_rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(0));
        assert_eq!(rows[0].get(1), &Value::Null);
    }

    #[test]
    fn hash_join_matches_and_skips_nulls() {
        let left = vec![
            Row::new(vec![Value::Int(1), Value::str("a")]),
            Row::new(vec![Value::Int(2), Value::str("b")]),
            Row::new(vec![Value::Null, Value::str("n")]),
        ];
        let right = vec![
            Row::new(vec![Value::Int(1), Value::str("x")]),
            Row::new(vec![Value::Int(1), Value::str("y")]),
            Row::new(vec![Value::Null, Value::str("z")]),
        ];
        let out = hash_join(&left, &right, &[(0, 0)]);
        assert_eq!(out.len(), 2, "uid 1 matches twice; NULLs never join");
        assert!(out.iter().all(|r| r.get(0) == &Value::Int(1)));
        assert_eq!(out[0].arity(), 4);
    }

    #[test]
    fn sort_and_limit() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("uid".into(), Expr::col(0).get("uid").cast(DataType::Int)),
                        (
                            "score".into(),
                            Expr::col(0).get("score").cast(DataType::Int),
                        ),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let sort = b
            .add(
                Operator::Sort {
                    keys: vec![(1, true)],
                },
                vec![proj],
            )
            .unwrap();
        let limit = b.add(Operator::Limit { n: 2 }, vec![sort]).unwrap();
        let plan = b.finish(limit).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new()).unwrap();
        let rows = exec.root_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1), &Value::Int(30));
        assert_eq!(rows[1].get(1), &Value::Int(20));
    }

    #[test]
    fn udf_execution() {
        use std::sync::Arc as StdArc;
        let mut reg = UdfRegistry::new();
        reg.register(crate::udf::Udf::new(
            "uid_only_positive",
            Schema::new(vec![Field::new("uid", DataType::Int)]),
            StdArc::new(
                |row: &Row| match row.get(0).get_field("uid").and_then(Value::as_i64) {
                    Some(uid) if uid > 1 => Ok(vec![Row::new(vec![Value::Int(uid)])]),
                    _ => Ok(vec![]),
                },
            ),
        ));
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let udf = b
            .add(
                Operator::Udf {
                    name: "uid_only_positive".into(),
                    output: Schema::new(vec![Field::new("uid", DataType::Int)]),
                },
                vec![scan],
            )
            .unwrap();
        let plan = b.finish(udf).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new().clone()).unwrap_err();
        assert!(exec.to_string().contains("unknown UDF"));
        let exec = execute(&plan, &source(), &reg).unwrap();
        assert_eq!(exec.root_rows().unwrap().len(), 2); // uids 2 and 3
    }

    #[test]
    fn split_execution_equals_full_execution() {
        let plan = extract_plan();
        let src = source();
        let udfs = UdfRegistry::new();
        let full = execute(&plan, &src, &udfs).unwrap();
        // HV side: scan only.
        let hv_set: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
        let hv = execute_subset(&plan, Some(&hv_set), HashMap::new(), &src, &udfs).unwrap();
        // DW side: project, with scan's output provided.
        let provided: HashMap<NodeId, Arc<Vec<Row>>> = [(NodeId(0), hv.output(NodeId(0)).clone())]
            .into_iter()
            .collect();
        let dw_set: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        let dw = execute_subset(&plan, Some(&dw_set), provided, &src, &udfs).unwrap();
        assert_eq!(dw.root_rows().unwrap(), full.root_rows().unwrap());
    }

    #[test]
    fn missing_provided_input_is_an_error() {
        let plan = extract_plan();
        let dw_set: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        let err = execute_subset(
            &plan,
            Some(&dw_set),
            HashMap::new(),
            &source(),
            &UdfRegistry::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("neither executed nor provided"));
    }

    #[test]
    fn output_bytes_reflect_content() {
        let exec = execute(&extract_plan(), &source(), &UdfRegistry::new()).unwrap();
        assert!(exec.output_bytes(NodeId(1)).as_bytes() > 0);
        assert!(exec.output_bytes(NodeId(0)) > exec.output_bytes(NodeId(1)));
        assert_eq!(exec.output_bytes(NodeId(42)), ByteSize::ZERO);
    }
}
