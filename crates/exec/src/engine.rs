//! The operator interpreter (miso-vex: morsel-parallel, allocation-lean).
//!
//! Executes a [`LogicalPlan`] bottom-up over a [`DataSource`], materializing
//! every node's output as an in-memory row vector. Full materialization is a
//! modeling choice, not laziness: Hadoop materializes stage boundaries for
//! fault tolerance, and those materializations are precisely the
//! opportunistic views MISO tunes with. The HV store decides *which* node
//! outputs to retain; the engine makes them all observable.
//!
//! [`execute_subset`] supports split execution: the HV side runs the nodes
//! below the cut, the working sets cross the wire, and the DW side resumes
//! with those outputs injected as `provided` inputs.
//!
//! # Parallelism and determinism
//!
//! Row-at-a-time operator bodies run **morsel-parallel** on the
//! `miso_common::pool` scoped worker pool (Leis et al., SIGMOD 2014): inputs
//! are chunked into fixed [`MORSEL_SIZE`] morsels, morsels fan out across
//! `MISO_THREADS` workers, and per-morsel results are reassembled in morsel
//! index order. Morsel boundaries depend only on the constant, never on the
//! worker count, so every operator's output — including `skipped_lines`
//! accounting and the first error surfaced — is byte-identical for any
//! thread count. Aggregations fold per-morsel partial accumulators and merge
//! them serially in morsel order ([`Acc::merge`]), which pins even
//! float-summation grouping to the morsel structure rather than the
//! schedule. Join keys and group keys are hashed once per row to a `u64`
//! (FNV-1a via `miso_plan::fingerprint`, collision-checked by real key
//! equality at every probe), replacing the per-row `Vec` key allocations of
//! the row-at-a-time interpreter preserved in [`crate::serial`].

use crate::col;
use crate::eval::{eval, eval_predicate};
use crate::profile::{self, OpProfile};
use crate::udf::UdfRegistry;
use miso_common::guard::QueryGuard;
use miso_common::ids::NodeId;
use miso_common::{pool, ByteSize, MisoError, Result};
use miso_data::json::parse_json;
use miso_data::{Cell, ColBatch, Row, Value};
use miso_plan::fingerprint::{fnv1a_hash_one, FnvHasher};
use miso_plan::{AggFunc, LogicalPlan, Operator};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Rows per morsel. Fixed — never derived from the worker count — so the
/// morsel structure (and with it every reassembled output, partial-sum
/// grouping, and error choice) is identical for any `MISO_THREADS` value.
pub const MORSEL_SIZE: usize = 4096;

/// Supplies leaf data: raw log lines and materialized view rows.
pub trait DataSource {
    /// The JSON lines of base log `log`.
    fn log_lines(&self, log: &str) -> Result<&[String]>;
    /// The rows of materialized view `view`.
    fn view_rows(&self, view: &str) -> Result<&[Row]>;
    /// Shared-ownership variant of [`DataSource::view_rows`]: sources that
    /// keep view rows in an `Arc<Vec<Row>>` can hand the engine a zero-copy
    /// handle, turning `ScanView` into a refcount bump instead of a
    /// full-table deep clone. `None` (the default) falls back to copying.
    fn view_rows_shared(&self, _view: &str) -> Option<Arc<Vec<Row>>> {
        None
    }
    /// Columnar companion to [`DataSource::view_rows_shared`]: a shared
    /// [`ColBatch`] pivot of the view, for sources that can serve one.
    /// `None` (the default) keeps downstream operators on the row path.
    fn view_cols_shared(&self, _view: &str) -> Option<Arc<ColBatch>> {
        None
    }
}

/// An in-memory [`DataSource`].
#[derive(Debug, Clone, Default)]
pub struct MemSource {
    logs: HashMap<String, Vec<String>>,
    views: HashMap<String, Arc<Vec<Row>>>,
    /// Lazily pivoted columnar twins of `views`, built on first columnar
    /// scan and shared thereafter (`None` caches "not pivotable", i.e. a
    /// ragged-arity view). Re-registering a view resets its slot.
    cols: HashMap<String, OnceLock<Option<Arc<ColBatch>>>>,
}

impl MemSource {
    /// An empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base log's lines.
    pub fn add_log(&mut self, name: impl Into<String>, lines: Vec<String>) {
        self.logs.insert(name.into(), lines);
    }

    /// Registers a view's rows.
    pub fn add_view(&mut self, name: impl Into<String>, rows: Vec<Row>) {
        let name = name.into();
        self.cols.insert(name.clone(), OnceLock::new());
        self.views.insert(name, Arc::new(rows));
    }
}

impl DataSource for MemSource {
    fn log_lines(&self, log: &str) -> Result<&[String]> {
        self.logs
            .get(log)
            .map(Vec::as_slice)
            .ok_or_else(|| MisoError::Store(format!("unknown log `{log}`")))
    }

    fn view_rows(&self, view: &str) -> Result<&[Row]> {
        self.views
            .get(view)
            .map(|rows| rows.as_slice())
            .ok_or_else(|| MisoError::Store(format!("unknown view `{view}`")))
    }

    fn view_rows_shared(&self, view: &str) -> Option<Arc<Vec<Row>>> {
        self.views.get(view).cloned()
    }

    fn view_cols_shared(&self, view: &str) -> Option<Arc<ColBatch>> {
        let slot = self.cols.get(view)?;
        let rows = self.views.get(view)?;
        slot.get_or_init(|| ColBatch::from_rows(rows).map(Arc::new))
            .clone()
    }
}

/// Execution knobs orthogonal to *what* is computed.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Release each node's output as soon as its last in-subset consumer has
    /// run, keeping only the root (plus never-consumed outputs). This frees
    /// memory early and lets single-consumer `Filter`/`Limit`/`Sort` *steal*
    /// uniquely-owned input rows instead of deep-cloning them. The HV store
    /// must NOT set this: it harvests every materialized node output as an
    /// opportunistic view candidate. Row counts stay queryable for all
    /// executed nodes via [`Execution::rows_out`].
    pub retain_root_only: bool,
    /// Run eligible operators column-at-a-time over [`ColBatch`]es (see
    /// [`crate::col`]). Only engages together with `retain_root_only`: full
    /// retention is the HV harvest contract — every node output must be
    /// observable as rows — so each node would pay a pivot anyway and the
    /// row path is strictly cheaper there. Output is bit-identical either
    /// way; ineligible operators fall back to rows per node.
    pub columnar: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            retain_root_only: false,
            columnar: col::enabled(),
        }
    }
}

/// The result of executing (part of) a plan.
#[derive(Debug, Clone)]
pub struct Execution {
    outputs: HashMap<NodeId, Arc<Vec<Row>>>,
    /// Output row count of every executed or provided node — recorded even
    /// for outputs released early under `retain_root_only`.
    rows_out: HashMap<NodeId, u64>,
    /// Malformed log lines skipped by scans (Hive-style lenience).
    pub skipped_lines: u64,
    /// Per-node [`OpProfile`]s — empty unless [`crate::profile::enabled`]
    /// was on when the plan ran (the serial oracle never collects them).
    profiles: HashMap<NodeId, OpProfile>,
    root: NodeId,
}

impl Execution {
    /// Assembles an execution result (shared with [`crate::serial`]).
    pub(crate) fn from_parts(
        outputs: HashMap<NodeId, Arc<Vec<Row>>>,
        rows_out: HashMap<NodeId, u64>,
        skipped_lines: u64,
        root: NodeId,
    ) -> Execution {
        Execution {
            outputs,
            rows_out,
            skipped_lines,
            profiles: HashMap::new(),
            root,
        }
    }

    /// The output of node `id`; panics if that node was not executed (or its
    /// rows were released under [`ExecOptions::retain_root_only`]).
    pub fn output(&self, id: NodeId) -> &Arc<Vec<Row>> {
        &self.outputs[&id]
    }

    /// The output of node `id`, if executed and retained.
    pub fn try_output(&self, id: NodeId) -> Option<&Arc<Vec<Row>>> {
        self.outputs.get(&id)
    }

    /// Output row count of node `id`, if executed — survives early release.
    pub fn rows_out(&self, id: NodeId) -> Option<u64> {
        self.rows_out.get(&id).copied()
    }

    /// The root output rows; errors if the root was outside the executed
    /// subset (e.g. an HV-side partial execution).
    pub fn root_rows(&self) -> Result<&[Row]> {
        self.outputs
            .get(&self.root)
            .map(|r| r.as_slice())
            .ok_or_else(|| MisoError::Execution("root was not part of the executed subset".into()))
    }

    /// Approximate serialized size of node `id`'s output.
    pub fn output_bytes(&self, id: NodeId) -> ByteSize {
        ByteSize::from_bytes(
            self.outputs
                .get(&id)
                .map(|rows| rows.iter().map(Row::approx_bytes).sum())
                .unwrap_or(0),
        )
    }

    /// Ids of all executed (or provided) nodes, including any whose rows
    /// were released early.
    pub fn executed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.rows_out.keys().copied()
    }

    /// The profile of node `id`, if profiling was enabled when it executed.
    pub fn profile(&self, id: NodeId) -> Option<&OpProfile> {
        self.profiles.get(&id)
    }

    /// All collected per-node profiles (empty when profiling is off).
    pub fn profiles(&self) -> &HashMap<NodeId, OpProfile> {
        &self.profiles
    }
}

/// Executes the whole plan.
pub fn execute(
    plan: &LogicalPlan,
    source: &dyn DataSource,
    udfs: &UdfRegistry,
) -> Result<Execution> {
    execute_subset(plan, None, HashMap::new(), source, udfs)
}

/// Executes a subset of the plan's nodes, retaining every node's output.
///
/// * `subset` — nodes to execute (`None` = all). Each executed node's inputs
///   must be in the subset or in `provided`.
/// * `provided` — pre-computed node outputs (working sets shipped from the
///   other store during split execution).
pub fn execute_subset(
    plan: &LogicalPlan,
    subset: Option<&HashSet<NodeId>>,
    provided: HashMap<NodeId, Arc<Vec<Row>>>,
    source: &dyn DataSource,
    udfs: &UdfRegistry,
) -> Result<Execution> {
    execute_subset_opts(plan, subset, provided, source, udfs, ExecOptions::default())
}

/// [`execute_subset`] with explicit [`ExecOptions`].
pub fn execute_subset_opts(
    plan: &LogicalPlan,
    subset: Option<&HashSet<NodeId>>,
    provided: HashMap<NodeId, Arc<Vec<Row>>>,
    source: &dyn DataSource,
    udfs: &UdfRegistry,
    opts: ExecOptions,
) -> Result<Execution> {
    execute_subset_guarded(
        plan,
        subset,
        provided,
        source,
        udfs,
        opts,
        QueryGuard::inert_ref(),
    )
}

/// [`execute_subset_opts`] under a [`QueryGuard`]: the guard's cancellation
/// state is checked at every morsel-dispatch boundary (a serial point, so
/// cancellation outcomes are thread-count-invariant), and the query's large
/// allocations — node materialization buffers, join build tables, aggregate
/// accumulator tables — are charged against the guard's memory budget.
/// Charges are released as outputs are freed and fully unwound when the
/// execution ends, success or failure. With the shared inert guard every
/// check is one branch and no bytes are ever charged, so the guarded path
/// costs nothing when guards are off.
#[allow(clippy::too_many_arguments)]
pub fn execute_subset_guarded(
    plan: &LogicalPlan,
    subset: Option<&HashSet<NodeId>>,
    provided: HashMap<NodeId, Arc<Vec<Row>>>,
    source: &dyn DataSource,
    udfs: &UdfRegistry,
    opts: ExecOptions,
    guard: &QueryGuard,
) -> Result<Execution> {
    let root = plan.root();
    let mut outputs: HashMap<NodeId, Arc<Vec<Row>>> = HashMap::with_capacity(plan.len());
    let mut rows_out: HashMap<NodeId, u64> = HashMap::with_capacity(plan.len());
    for (id, rows) in provided {
        rows_out.insert(id, rows.len() as u64);
        outputs.insert(id, rows);
    }
    // Remaining in-subset consumer edges per node. Once a node's count hits
    // zero its output can be released (retain_root_only); a count of exactly
    // one at consumption time means the consumer may steal the rows.
    let mut pending: HashMap<NodeId, usize> = HashMap::new();
    if opts.retain_root_only {
        for node in plan.nodes() {
            let executes =
                subset.is_none_or(|s| s.contains(&node.id)) && !rows_out.contains_key(&node.id);
            if !executes {
                continue;
            }
            for input in &node.inputs {
                *pending.entry(*input).or_insert(0) += 1;
            }
        }
    }
    let mut skipped_lines = 0u64;
    // One relaxed load per plan; everything profile-related below is behind
    // this flag so the off path does no extra work.
    let profiling = profile::enabled();
    let mut profiles: HashMap<NodeId, OpProfile> = HashMap::new();
    if profiling {
        profiles.reserve(plan.len());
        profile::take_dispatch();
    }
    // Columnar execution engages only under root-only retention (see
    // [`ExecOptions::columnar`]).
    let columnar = opts.columnar && opts.retain_root_only;
    // Columnar node outputs, kept beside `outputs`. A node normally lives
    // in exactly one map (zero-copy view scans may publish both
    // representations); whatever survives to the end is pivoted to rows.
    let mut col_outputs: HashMap<NodeId, Arc<ColBatch>> = HashMap::new();
    // Scan→project fusion: log scans whose single consumer is a SerDe-shaped
    // projection parse straight into typed column vectors, skipping the
    // intermediate JSON object rows entirely. Because the scan's output is
    // never materialized, fusion stays off under profiling or an active
    // guard — both account per-node materializations and must see the same
    // numbers as the row path.
    let mut fused: HashMap<NodeId, NodeId> = HashMap::new(); // scan → project
    if columnar && !profiling && !guard.is_active() {
        let executes =
            |id: NodeId| subset.is_none_or(|s| s.contains(&id)) && !rows_out.contains_key(&id);
        for node in plan.nodes() {
            let Operator::Project { exprs } = &node.op else {
                continue;
            };
            if !executes(node.id) || node.inputs.len() != 1 {
                continue;
            }
            let scan = node.inputs[0];
            if scan != root
                && executes(scan)
                && pending.get(&scan).copied() == Some(1)
                && matches!(plan.node(scan).op, Operator::ScanLog { .. })
                && col::fused_fields(exprs.iter().map(|(_, e)| e)).is_some()
            {
                fused.insert(scan, node.id);
            }
        }
    }
    // Batches parsed by fused scans, waiting for their projection node.
    let mut fused_ready: HashMap<NodeId, ColBatch> = HashMap::new();
    // Per-node materialization charges; drops (and releases) on any exit.
    let mut ledger = ChargeLedger::new(guard);
    for node in plan.nodes() {
        if rows_out.contains_key(&node.id) {
            continue; // provided
        }
        if let Some(set) = subset {
            if !set.contains(&node.id) {
                continue;
            }
        }
        guard.check()?;
        let mut op_span = miso_obs::span("exec.op");
        if op_span.is_active() {
            op_span.push_field("op", miso_obs::FieldValue::Str(node.op.label()));
            op_span.push_field("node", miso_obs::FieldValue::U64(node.id.raw()));
        }
        let t0 = Instant::now();
        // ScanView is special-cased outside the Vec-producing match: a
        // shared source hands over its Arc and the scan costs one refcount
        // bump, no row copies at all.
        if let Operator::ScanView { view, .. } = &node.op {
            if let Some(shared) = source.view_rows_shared(view) {
                miso_obs::observe("exec.op_ns", t0.elapsed().as_nanos() as u64);
                if op_span.is_active() {
                    op_span.push_field("rows_out", miso_obs::FieldValue::U64(shared.len() as u64));
                    miso_obs::observe("exec.op_rows_out", shared.len() as u64);
                }
                miso_obs::count("exec.ops_executed", 1);
                miso_obs::count("exec.zero_copy_scans", 1);
                if profiling {
                    profiles.insert(
                        node.id,
                        OpProfile {
                            wall_ns: t0.elapsed().as_nanos() as u64,
                            rows_in: 0,
                            rows_out: shared.len() as u64,
                            bytes_out: shared.iter().map(Row::approx_bytes).sum(),
                            morsels: 0,
                            par_rows: 0,
                        },
                    );
                }
                rows_out.insert(node.id, shared.len() as u64);
                if columnar {
                    // Publish the columnar twin alongside the zero-copy
                    // rows: column-eligible consumers pick up the batch,
                    // row-wise ones (joins) keep the free Arc handle.
                    if let Some(cols) = source.view_cols_shared(view) {
                        col_outputs.insert(node.id, cols);
                    }
                }
                outputs.insert(node.id, shared);
                continue;
            }
        }
        // Fused scan+project: parse the lines straight into column vectors
        // and stash the batch for the projection node. Mirrors the zero-copy
        // scan bookkeeping — the scan's row output never materializes.
        if let Some(&project) = fused.get(&node.id) {
            let Operator::ScanLog { log } = &node.op else {
                unreachable!("fusion pre-pass only maps log scans");
            };
            let Operator::Project { exprs } = &plan.node(project).op else {
                unreachable!("fusion pre-pass only maps projections");
            };
            let fields = col::fused_fields(exprs.iter().map(|(_, e)| e))
                .expect("fusion pre-pass verified the projection shape");
            let lines = source.log_lines(log)?;
            let parts = par_chunks(guard, lines, |_, chunk| {
                col::parse_lines_fused(chunk, &fields)
            })?;
            let mut batches = Vec::with_capacity(parts.len());
            for (batch, skipped) in parts {
                batches.push(batch);
                skipped_lines += skipped as u64;
            }
            let batch = ColBatch::concat(batches);
            miso_obs::count("exec.col_batches", lines.len().div_ceil(MORSEL_SIZE) as u64);
            miso_obs::observe("exec.op_ns", t0.elapsed().as_nanos() as u64);
            if op_span.is_active() {
                op_span.push_field("rows_out", miso_obs::FieldValue::U64(batch.len() as u64));
                miso_obs::observe("exec.op_rows_out", batch.len() as u64);
            }
            miso_obs::count("exec.ops_executed", 1);
            rows_out.insert(node.id, batch.len() as u64);
            fused_ready.insert(project, batch);
            continue;
        }
        let produced: Produced = match &node.op {
            Operator::ScanLog { log } => {
                let lines = source.log_lines(log)?;
                if columnar {
                    // A log scan that could not fuse materializes rows.
                    miso_obs::count("exec.col_fallback_rows", lines.len() as u64);
                }
                let parts = par_chunks(guard, lines, |_, chunk| {
                    let mut rows = Vec::with_capacity(chunk.len());
                    let mut skipped = 0u64;
                    for line in chunk {
                        match parse_json(line) {
                            Ok(v) => rows.push(Row::new(vec![v])),
                            Err(_) => skipped += 1,
                        }
                    }
                    (rows, skipped)
                })?;
                let mut rows = Vec::with_capacity(lines.len());
                for (part, skipped) in parts {
                    rows.extend(part);
                    skipped_lines += skipped;
                }
                Produced::Rows(rows)
            }
            Operator::ScanView { view, .. } => {
                let src_rows = source.view_rows(view)?;
                Produced::Rows(concat_rows(
                    src_rows.len(),
                    par_chunks(guard, src_rows, |_, chunk| chunk.to_vec())?,
                ))
            }
            Operator::Filter { predicate } => {
                let input_id = node.inputs[0];
                let col_input = if columnar && col::vectorizable(predicate) {
                    ensure_cols(&outputs, &mut col_outputs, input_id);
                    col_outputs.get(&input_id).cloned()
                } else {
                    None
                };
                if let Some(batch) = col_input {
                    miso_obs::count("exec.col_batches", batch.len().div_ceil(MORSEL_SIZE) as u64);
                    let parts = par_ranges(guard, batch.len(), |_, start, n| {
                        col::eval_vec(predicate, &batch, start, n, None)
                            .map(|pred| col::select_true(&pred, start, n))
                    })?;
                    let parts = collect_ok(parts)?;
                    let sel = concat_rows(parts.iter().map(Vec::len).sum(), parts);
                    if node.id == root {
                        // The root's batch would be pivoted to rows at the
                        // end anyway; materializing straight from the input
                        // batch + selection skips the gathered intermediate.
                        Produced::Rows(batch.rows_at(&sel))
                    } else {
                        Produced::Cols(batch.gather(&sel))
                    }
                } else {
                    note_col_fallback(columnar, &rows_out, input_id);
                    ensure_rows(&mut outputs, &mut col_outputs, &pending, input_id, root);
                    match take_input(&mut outputs, &pending, node, 0, opts, root)? {
                        TakenInput::Owned(mut vec) => {
                            // Uniquely owned: evaluate in parallel, then move
                            // the surviving rows out instead of deep-cloning.
                            let parts =
                                par_chunks(guard, &vec, |i, chunk| -> Result<Vec<usize>> {
                                    let base = i * MORSEL_SIZE;
                                    let mut keep = Vec::new();
                                    for (j, row) in chunk.iter().enumerate() {
                                        if eval_predicate(predicate, row)? {
                                            keep.push(base + j);
                                        }
                                    }
                                    Ok(keep)
                                })?;
                            let keep = collect_ok(parts)?;
                            let mut out = Vec::with_capacity(keep.iter().map(Vec::len).sum());
                            for idx in keep.into_iter().flatten() {
                                out.push(std::mem::take(&mut vec[idx]));
                            }
                            Produced::Rows(out)
                        }
                        TakenInput::Shared(arc) => {
                            let parts = par_chunks(guard, &arc, |_, chunk| -> Result<Vec<Row>> {
                                let mut keep = Vec::new();
                                for row in chunk {
                                    if eval_predicate(predicate, row)? {
                                        keep.push(row.clone());
                                    }
                                }
                                Ok(keep)
                            })?;
                            Produced::Rows(flatten_ok(parts)?)
                        }
                    }
                }
            }
            Operator::Project { exprs } => {
                let input_id = node.inputs[0];
                let col_input = if columnar && exprs.iter().all(|(_, e)| col::vectorizable(e)) {
                    ensure_cols(&outputs, &mut col_outputs, input_id);
                    col_outputs.get(&input_id).cloned()
                } else {
                    None
                };
                if let Some(batch) = fused_ready.remove(&node.id) {
                    // The fused scan already produced this projection.
                    Produced::Cols(batch)
                } else if let Some(batch) = col_input {
                    miso_obs::count("exec.col_batches", batch.len().div_ceil(MORSEL_SIZE) as u64);
                    let parts =
                        par_ranges(guard, batch.len(), |_, start, n| -> Result<ColBatch> {
                            let cols = exprs
                                .iter()
                                .map(|(_, e)| {
                                    col::eval_vec(e, &batch, start, n, None)
                                        .map(|v| v.into_column(n))
                                })
                                .collect::<Result<Vec<_>>>()?;
                            Ok(ColBatch::from_columns(cols, n))
                        })?;
                    Produced::Cols(ColBatch::concat(collect_ok(parts)?))
                } else {
                    note_col_fallback(columnar, &rows_out, input_id);
                    ensure_rows(&mut outputs, &mut col_outputs, &pending, input_id, root);
                    let input = input_of(&outputs, plan, node.id, 0)?;
                    let parts = par_chunks(guard, input, |_, chunk| -> Result<Vec<Row>> {
                        let mut rows = Vec::with_capacity(chunk.len());
                        for row in chunk {
                            let values: Vec<Value> = exprs
                                .iter()
                                .map(|(_, e)| eval(e, row))
                                .collect::<Result<_>>()?;
                            rows.push(Row::new(values));
                        }
                        Ok(rows)
                    })?;
                    Produced::Rows(flatten_ok(parts)?)
                }
            }
            Operator::Join { on } => {
                // Joins stay row-wise by design (see DESIGN.md §16).
                ensure_rows(
                    &mut outputs,
                    &mut col_outputs,
                    &pending,
                    node.inputs[0],
                    root,
                );
                ensure_rows(
                    &mut outputs,
                    &mut col_outputs,
                    &pending,
                    node.inputs[1],
                    root,
                );
                let left = input_of(&outputs, plan, node.id, 0)?;
                let right = input_of(&outputs, plan, node.id, 1)?;
                Produced::Rows(hash_join_guarded(left, right, on, guard)?)
            }
            Operator::Aggregate { group_by, aggs } => {
                let input_id = node.inputs[0];
                // Columnar-eligible: every key and aggregate source is an
                // in-range bare column (or COUNT(*)); general expressions
                // keep the row path so error behaviour matches exactly.
                // The shape check comes first so ineligible aggregates
                // (UDF/expression inputs) never pay a speculative pivot.
                let shape_ok = aggs
                    .iter()
                    .all(|a| matches!(&a.input, None | Some(miso_plan::Expr::Column(_))));
                let col_input = if columnar && shape_ok {
                    ensure_cols(&outputs, &mut col_outputs, input_id);
                    col_outputs.get(&input_id).cloned().filter(|b| {
                        group_by.iter().all(|&g| g < b.arity())
                            && aggs.iter().all(|a| match &a.input {
                                None => true,
                                Some(miso_plan::Expr::Column(c)) => *c < b.arity(),
                                Some(_) => false,
                            })
                    })
                } else {
                    None
                };
                if let Some(batch) = col_input {
                    miso_obs::count("exec.col_batches", batch.len().div_ceil(MORSEL_SIZE) as u64);
                    let float_sum = col_float_sum_flags(&batch, aggs);
                    let srcs = classify_aggs(aggs);
                    let parts = par_ranges(guard, batch.len(), |_, start, n| {
                        aggregate_morsel_cols(&batch, start, n, group_by, aggs, &srcs, &float_sum)
                    })?;
                    Produced::Rows(finish_aggregate(
                        parts,
                        group_by,
                        aggs,
                        &float_sum,
                        batch.is_empty(),
                        guard,
                    )?)
                } else {
                    note_col_fallback(columnar, &rows_out, input_id);
                    ensure_rows(&mut outputs, &mut col_outputs, &pending, input_id, root);
                    let input = input_of(&outputs, plan, node.id, 0)?;
                    Produced::Rows(aggregate(input, group_by, aggs, guard)?)
                }
            }
            Operator::Udf { name, .. } => {
                let udf = udfs.require(name)?;
                ensure_rows(
                    &mut outputs,
                    &mut col_outputs,
                    &pending,
                    node.inputs[0],
                    root,
                );
                let input = input_of(&outputs, plan, node.id, 0)?;
                let parts = par_chunks(guard, input, |_, chunk| -> Result<Vec<Row>> {
                    let mut rows = Vec::new();
                    for row in chunk {
                        rows.extend(udf.apply(row)?);
                    }
                    Ok(rows)
                })?;
                Produced::Rows(flatten_ok(parts)?)
            }
            Operator::Sort { keys } => {
                ensure_rows(
                    &mut outputs,
                    &mut col_outputs,
                    &pending,
                    node.inputs[0],
                    root,
                );
                let input = take_input(&mut outputs, &pending, node, 0, opts, root)?;
                let rows = input.rows();
                // Extract each row's key values exactly once (in parallel),
                // then sort (key, index) pairs; the index tiebreak makes the
                // unstable sort reproduce stable-sort output.
                let keyed: Vec<Vec<Value>> = concat_rows(
                    rows.len(),
                    par_chunks(guard, rows, |_, chunk| {
                        chunk
                            .iter()
                            .map(|row| keys.iter().map(|&(col, _)| row.get(col).clone()).collect())
                            .collect::<Vec<Vec<Value>>>()
                    })?,
                );
                let mut order: Vec<usize> = (0..rows.len()).collect();
                order.sort_unstable_by(|&a, &b| {
                    for (j, &(_, desc)) in keys.iter().enumerate() {
                        let ord = keyed[a][j].cmp(&keyed[b][j]);
                        let ord = if desc { ord.reverse() } else { ord };
                        if !ord.is_eq() {
                            return ord;
                        }
                    }
                    a.cmp(&b)
                });
                match input {
                    TakenInput::Owned(mut vec) => Produced::Rows(
                        order
                            .into_iter()
                            .map(|i| std::mem::take(&mut vec[i]))
                            .collect(),
                    ),
                    TakenInput::Shared(arc) => {
                        Produced::Rows(order.into_iter().map(|i| arc[i].clone()).collect())
                    }
                }
            }
            Operator::Limit { n } => {
                let input_id = node.inputs[0];
                if let Some(batch) = columnar
                    .then(|| col_outputs.get(&input_id).cloned())
                    .flatten()
                {
                    miso_obs::count("exec.col_batches", batch.len().div_ceil(MORSEL_SIZE) as u64);
                    Produced::Cols(batch.head(*n as usize))
                } else {
                    match take_input(&mut outputs, &pending, node, 0, opts, root)? {
                        TakenInput::Owned(mut vec) => {
                            vec.truncate(*n as usize);
                            Produced::Rows(vec)
                        }
                        TakenInput::Shared(arc) => {
                            Produced::Rows(arc.iter().take(*n as usize).cloned().collect())
                        }
                    }
                }
            }
        };
        let n_out = produced.len() as u64;
        miso_obs::observe("exec.op_ns", t0.elapsed().as_nanos() as u64);
        if op_span.is_active() {
            op_span.push_field("rows_out", miso_obs::FieldValue::U64(n_out));
            miso_obs::observe("exec.op_rows_out", n_out);
        }
        miso_obs::count("exec.ops_executed", 1);
        if profiling {
            let (morsels, par_rows) = profile::take_dispatch();
            // Inputs ran (or were provided) before this node, so their row
            // counts are already in `rows_out` even if the rows themselves
            // were stolen or released.
            let rows_in = node
                .inputs
                .iter()
                .filter_map(|i| rows_out.get(i))
                .sum::<u64>();
            profiles.insert(
                node.id,
                OpProfile {
                    wall_ns: t0.elapsed().as_nanos() as u64,
                    rows_in,
                    rows_out: n_out,
                    bytes_out: produced.bytes(),
                    morsels,
                    par_rows,
                },
            );
        }
        ledger.charge(node.id, &produced)?;
        rows_out.insert(node.id, n_out);
        match produced {
            Produced::Rows(rows) => {
                outputs.insert(node.id, Arc::new(rows));
            }
            Produced::Cols(batch) => {
                col_outputs.insert(node.id, Arc::new(batch));
            }
        }
        if opts.retain_root_only {
            for input in &node.inputs {
                if let Some(p) = pending.get_mut(input) {
                    *p = p.saturating_sub(1);
                    if *p == 0 && *input != root {
                        outputs.remove(input);
                        col_outputs.remove(input);
                        ledger.release(*input);
                    }
                }
            }
        }
    }
    // Whatever is still columnar — the root, or a never-consumed output —
    // pivots to rows here: `Execution` speaks rows at every boundary.
    for (id, batch) in col_outputs {
        if outputs.contains_key(&id) {
            continue;
        }
        let rows = Arc::try_unwrap(batch)
            .map(ColBatch::into_rows)
            .unwrap_or_else(|arc| arc.to_rows());
        outputs.insert(id, Arc::new(rows));
    }
    Ok(Execution {
        outputs,
        rows_out,
        skipped_lines,
        profiles,
        root,
    })
}

/// One operator's materialized output, in whichever representation the
/// operator body produced.
enum Produced {
    Rows(Vec<Row>),
    Cols(ColBatch),
}

impl Produced {
    fn len(&self) -> usize {
        match self {
            Produced::Rows(rows) => rows.len(),
            Produced::Cols(batch) => batch.len(),
        }
    }

    /// Guard/profile byte size — identical whichever representation was
    /// produced ([`ColBatch::row_bytes`] matches summed
    /// [`Row::approx_bytes`] by construction).
    fn bytes(&self) -> u64 {
        match self {
            Produced::Rows(rows) => rows.iter().map(Row::approx_bytes).sum(),
            Produced::Cols(batch) => batch.row_bytes(),
        }
    }
}

/// Counts a columnar-mode operator that ran its row path anyway, charging
/// the input's row count to the `exec.col_fallback_rows` counter.
fn note_col_fallback(columnar: bool, rows_out: &HashMap<NodeId, u64>, input: NodeId) {
    if columnar {
        if let Some(&n) = rows_out.get(&input) {
            miso_obs::count("exec.col_fallback_rows", n);
        }
    }
}

/// Guarantees `outputs` holds a row representation of node `id`, pivoting
/// its columnar output when that is the only one present. When this node's
/// consumer is the last one, the batch is consumed so string payloads move;
/// otherwise it is copied and the batch stays shared for later consumers.
/// Missing nodes are left missing — the caller's input lookup reports them
/// with the usual "neither executed nor provided" error.
fn ensure_rows(
    outputs: &mut HashMap<NodeId, Arc<Vec<Row>>>,
    col_outputs: &mut HashMap<NodeId, Arc<ColBatch>>,
    pending: &HashMap<NodeId, usize>,
    id: NodeId,
    root: NodeId,
) {
    if outputs.contains_key(&id) || !col_outputs.contains_key(&id) {
        return;
    }
    let last = id != root && pending.get(&id).copied() == Some(1);
    let rows = if last {
        let arc = col_outputs.remove(&id).expect("checked above");
        Arc::try_unwrap(arc)
            .map(ColBatch::into_rows)
            .unwrap_or_else(|arc| arc.to_rows())
    } else {
        col_outputs[&id].to_rows()
    };
    outputs.insert(id, Arc::new(rows));
}

/// The inverse of [`ensure_rows`]: a vectorizable consumer wants node `id`
/// as a batch, but only a row representation exists — a provided seed (the
/// shipped working set at the DataSource boundary) or a row-producing
/// upstream operator such as a join. Pivots once and caches the batch
/// beside the rows for any later consumer; ragged row sets stay row-only
/// and the consumer falls back. Callers gate on consumer eligibility first
/// so ineligible operators never pay a speculative pivot.
fn ensure_cols(
    outputs: &HashMap<NodeId, Arc<Vec<Row>>>,
    col_outputs: &mut HashMap<NodeId, Arc<ColBatch>>,
    id: NodeId,
) {
    if col_outputs.contains_key(&id) {
        return;
    }
    if let Some(rows) = outputs.get(&id) {
        if let Some(batch) = ColBatch::from_rows(rows) {
            col_outputs.insert(id, Arc::new(batch));
        }
    }
}

/// Columnar twin of [`par_chunks`]: morsel dispatch over index ranges of a
/// batch instead of row slices. `f` receives `(morsel index, start, len)`.
/// Counter and guard behaviour match `par_chunks` exactly so profiles and
/// cancellation outcomes are representation-independent.
fn par_ranges<R, F>(guard: &QueryGuard, len: usize, f: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize, usize) -> R + Sync,
{
    guard.check()?;
    let morsels = len.div_ceil(MORSEL_SIZE);
    miso_obs::count("exec.morsels", morsels as u64);
    miso_obs::count("exec.par_rows", len as u64);
    if profile::enabled() {
        profile::note_dispatch(morsels as u64, len as u64);
    }
    if morsels == 0 {
        return Ok(Vec::new());
    }
    pool::run_batch(morsels, |i| {
        let start = i * MORSEL_SIZE;
        f(i, start, MORSEL_SIZE.min(len - start))
    })
}

/// Tracks the bytes charged against a [`QueryGuard`] for each retained node
/// output. Dropping the ledger releases every outstanding charge, so the
/// guard's usage gauge unwinds no matter how the execution exits. With an
/// inactive guard every method is a single branch and nothing is charged.
struct ChargeLedger<'a> {
    guard: &'a QueryGuard,
    charged: HashMap<NodeId, u64>,
}

impl<'a> ChargeLedger<'a> {
    fn new(guard: &'a QueryGuard) -> ChargeLedger<'a> {
        ChargeLedger {
            guard,
            charged: HashMap::new(),
        }
    }

    /// Charges the output's approximate bytes to the guard on behalf of
    /// node `id`; fails with `ResourceExhausted` when the budget is blown.
    /// [`Produced::bytes`] is representation-independent, so the guard sees
    /// the same charge whichever path an operator ran.
    fn charge(&mut self, id: NodeId, produced: &Produced) -> Result<()> {
        if !self.guard.is_active() {
            return Ok(());
        }
        let bytes = produced.bytes();
        self.guard.try_charge(bytes)?;
        *self.charged.entry(id).or_insert(0) += bytes;
        Ok(())
    }

    /// Releases node `id`'s charge (no-op if it never charged).
    fn release(&mut self, id: NodeId) {
        if let Some(bytes) = self.charged.remove(&id) {
            self.guard.release(bytes);
        }
    }
}

impl Drop for ChargeLedger<'_> {
    fn drop(&mut self) {
        for (_, bytes) in self.charged.drain() {
            self.guard.release(bytes);
        }
    }
}

/// A scoped charge for operator-internal scratch memory (join build tables,
/// aggregate partials): charged on construction, released on drop.
struct TempCharge<'a> {
    guard: &'a QueryGuard,
    bytes: u64,
}

impl<'a> TempCharge<'a> {
    fn new(guard: &'a QueryGuard, bytes: u64) -> Result<TempCharge<'a>> {
        if !guard.is_active() || bytes == 0 {
            return Ok(TempCharge { guard, bytes: 0 });
        }
        guard.try_charge(bytes)?;
        Ok(TempCharge { guard, bytes })
    }
}

impl Drop for TempCharge<'_> {
    fn drop(&mut self) {
        if self.bytes > 0 {
            self.guard.release(self.bytes);
        }
    }
}

/// A single-consumer operator's input: owned when the rows could be stolen,
/// shared otherwise.
enum TakenInput {
    Owned(Vec<Row>),
    Shared(Arc<Vec<Row>>),
}

impl TakenInput {
    fn rows(&self) -> &[Row] {
        match self {
            TakenInput::Owned(v) => v,
            TakenInput::Shared(a) => a,
        }
    }
}

/// Fetches input `idx` of `node` for row-consuming operators. When the
/// executing subset retains only the root and this node is the input's last
/// consumer, the entry leaves the output map here — and if the `Arc` is
/// uniquely owned (nobody `provided` it and holds a copy), the rows
/// themselves are taken, enabling clone-free `Filter`/`Sort`/`Limit`.
fn take_input(
    outputs: &mut HashMap<NodeId, Arc<Vec<Row>>>,
    pending: &HashMap<NodeId, usize>,
    node: &miso_plan::PlanNode,
    idx: usize,
    opts: ExecOptions,
    root: NodeId,
) -> Result<TakenInput> {
    let id = node.inputs[idx];
    let missing = || {
        MisoError::Execution(format!(
            "node {} input {} neither executed nor provided",
            node.id, id
        ))
    };
    let consumable = opts.retain_root_only && id != root && pending.get(&id).copied() == Some(1);
    if consumable {
        let arc = outputs.remove(&id).ok_or_else(missing)?;
        Ok(match Arc::try_unwrap(arc) {
            Ok(vec) => TakenInput::Owned(vec),
            Err(arc) => TakenInput::Shared(arc),
        })
    } else {
        outputs
            .get(&id)
            .cloned()
            .map(TakenInput::Shared)
            .ok_or_else(missing)
    }
}

/// Borrows input `idx` of the node owning `id` from the output map.
fn input_of<'a>(
    outputs: &'a HashMap<NodeId, Arc<Vec<Row>>>,
    plan: &LogicalPlan,
    id: NodeId,
    idx: usize,
) -> Result<&'a Arc<Vec<Row>>> {
    let input = plan.node(id).inputs[idx];
    outputs.get(&input).ok_or_else(|| {
        MisoError::Execution(format!(
            "node {id} input {input} neither executed nor provided"
        ))
    })
}

/// Morsel dispatch: runs `f` over fixed-size chunks of `items` on the worker
/// pool and returns per-morsel results in morsel order.
///
/// The guard is checked once, serially, before the fan-out — the engine's
/// cancellation boundary. Checking here (never inside workers) keeps the
/// observed cancellation point, and thus the query's outcome, identical for
/// every `MISO_THREADS` value. A panicking morsel surfaces as
/// `MisoError::Execution` (see [`pool::run_batch`]).
fn par_chunks<T, R, F>(guard: &QueryGuard, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    guard.check()?;
    miso_obs::count("exec.morsels", items.len().div_ceil(MORSEL_SIZE) as u64);
    miso_obs::count("exec.par_rows", items.len() as u64);
    if profile::enabled() {
        profile::note_dispatch(items.len().div_ceil(MORSEL_SIZE) as u64, items.len() as u64);
    }
    pool::run_chunks(items, MORSEL_SIZE, f)
}

/// Sequences per-morsel results, surfacing the error of the lowest-indexed
/// failing morsel — the same error a serial left-to-right pass would hit.
fn collect_ok<R>(parts: Vec<Result<R>>) -> Result<Vec<R>> {
    let mut ok = Vec::with_capacity(parts.len());
    for part in parts {
        ok.push(part?);
    }
    Ok(ok)
}

/// [`collect_ok`] + concatenation in morsel order.
fn flatten_ok(parts: Vec<Result<Vec<Row>>>) -> Result<Vec<Row>> {
    let parts = collect_ok(parts)?;
    Ok(concat_rows(parts.iter().map(Vec::len).sum(), parts))
}

fn concat_rows<T>(capacity: usize, parts: Vec<Vec<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(capacity);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Pass-through hasher for keys that are already well-mixed u64 hashes; a
/// splitmix64 finalizer spreads FNV's weaker low bits across the table.
#[derive(Clone, Copy, Default)]
struct PrehashedU64(u64);

impl Hasher for PrehashedU64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("prehashed maps are keyed by u64 only");
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

type PrehashedMap<V> = HashMap<u64, V, BuildHasherDefault<PrehashedU64>>;

fn prehashed_map<V>(capacity: usize) -> PrehashedMap<V> {
    HashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// FNV-1a hash of a row's join-key columns; `None` if any key is NULL (NULL
/// never joins). `right` selects which side of each `on` pair to read. The
/// single-column fast path skips the hasher-state plumbing entirely.
#[inline]
fn join_key_hash(row: &Row, on: &[(usize, usize)], right: bool) -> Option<u64> {
    if let [(l, r)] = on {
        let v = row.get(if right { *r } else { *l });
        if v.is_null() {
            return None;
        }
        return Some(fnv1a_hash_one(v));
    }
    let mut h = FnvHasher::default();
    for &(l, r) in on {
        let v = row.get(if right { r } else { l });
        if v.is_null() {
            return None;
        }
        v.hash(&mut h);
    }
    Some(h.finish())
}

/// Inner hash equijoin; NULL keys never match (SQL semantics).
///
/// Keys are hashed once per row to a `u64` (no per-row key `Vec`); the build
/// side is partitioned by hash so partitions build in parallel, and probes
/// run morsel-parallel over the left side, emitting matches in left-row ×
/// right-insertion order — exactly the serial interpreter's output order.
/// Hash collisions are disambiguated by comparing the actual key columns.
pub fn hash_join(left: &[Row], right: &[Row], on: &[(usize, usize)]) -> Result<Vec<Row>> {
    hash_join_guarded(left, right, on, QueryGuard::inert_ref())
}

/// Bytes the build side costs per right row: the prehashed key vector
/// (`Option<u64>`) plus a `u32` slot in the partitioned index, with map
/// overhead rounded up. A coarse model — the guard meters pressure, it is
/// not an allocator.
const JOIN_BUILD_BYTES_PER_ROW: u64 = 28;

/// [`hash_join`] under a [`QueryGuard`]: the build-side hash table is
/// charged against the memory budget for the duration of the join.
pub(crate) fn hash_join_guarded(
    left: &[Row],
    right: &[Row],
    on: &[(usize, usize)],
    guard: &QueryGuard,
) -> Result<Vec<Row>> {
    assert!(
        right.len() <= u32::MAX as usize,
        "build side exceeds u32 rows"
    );
    let _build = TempCharge::new(guard, right.len() as u64 * JOIN_BUILD_BYTES_PER_ROW)?;
    let rhash: Vec<Option<u64>> = concat_rows(
        right.len(),
        par_chunks(guard, right, |_, chunk| {
            chunk
                .iter()
                .map(|row| join_key_hash(row, on, true))
                .collect::<Vec<_>>()
        })?,
    );
    // Partitioned build: table layout is internal, so the partition count
    // may track the worker count without affecting any output.
    let partitions = pool::threads().next_power_of_two().min(64);
    let mask = (partitions - 1) as u64;
    let tables: Vec<PrehashedMap<Vec<u32>>> = pool::run_batch(partitions, |p| {
        let mut table: PrehashedMap<Vec<u32>> = prehashed_map(rhash.len() / partitions + 1);
        for (i, h) in rhash.iter().enumerate() {
            if let Some(h) = h {
                if (h & mask) as usize == p {
                    table.entry(*h).or_default().push(i as u32);
                }
            }
        }
        table
    })?;
    let parts = par_chunks(guard, left, |_, chunk| {
        let mut out = Vec::new();
        for lrow in chunk {
            let Some(h) = join_key_hash(lrow, on, false) else {
                continue;
            };
            if let Some(candidates) = tables[(h & mask) as usize].get(&h) {
                for &ri in candidates {
                    let rrow = &right[ri as usize];
                    if on.iter().all(|&(l, r)| lrow.get(l) == rrow.get(r)) {
                        out.push(lrow.concat(rrow));
                    }
                }
            }
        }
        out
    })?;
    Ok(concat_rows(parts.iter().map(Vec::len).sum(), parts))
}

/// Streaming accumulator per aggregate function.
pub(crate) enum Acc {
    Count(i64),
    CountDistinct(HashSet<Value>),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl Acc {
    pub(crate) fn new(func: AggFunc, float_sum: bool) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::CountDistinct(HashSet::new()),
            AggFunc::Sum if float_sum => Acc::SumFloat(0.0, false),
            AggFunc::Sum => Acc::SumInt(0, false),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    pub(crate) fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => {
                // COUNT(*) gets None (count all); COUNT(expr) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            Acc::CountDistinct(set) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        set.insert(val.clone());
                    }
                }
            }
            Acc::SumInt(acc, seen) => {
                if let Some(val) = v {
                    if let Some(i) = val.as_i64() {
                        *acc += i;
                        *seen = true;
                    } else if let Some(f) = val.as_f64() {
                        // Mixed input: fall back via float path; keep integer
                        // accumulation best-effort.
                        *acc += f as i64;
                        *seen = true;
                    }
                }
            }
            Acc::SumFloat(acc, seen) => {
                if let Some(f) = v.and_then(|val| val.as_f64()) {
                    *acc += f;
                    *seen = true;
                }
            }
            Acc::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().is_none_or(|c| val < c) {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().is_none_or(|c| val > c) {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(f) = v.and_then(|val| val.as_f64()) {
                    *sum += f;
                    *n += 1;
                }
            }
        }
    }

    /// [`Acc::update`] on a borrowed columnar cell — branch-for-branch the
    /// same semantics ([`Cell`]'s accessors mirror [`Value`]'s), cloning a
    /// value only when an accumulator actually retains it.
    pub(crate) fn update_cell(&mut self, c: &Cell<'_>) {
        match self {
            Acc::Count(n) => {
                if !c.is_null() {
                    *n += 1;
                }
            }
            Acc::CountDistinct(set) => {
                if !c.is_null() {
                    set.insert(c.to_value());
                }
            }
            Acc::SumInt(acc, seen) => {
                if let Some(i) = c.as_i64() {
                    *acc += i;
                    *seen = true;
                } else if let Some(f) = c.as_f64() {
                    *acc += f as i64;
                    *seen = true;
                }
            }
            Acc::SumFloat(acc, seen) => {
                if let Some(f) = c.as_f64() {
                    *acc += f;
                    *seen = true;
                }
            }
            Acc::Min(cur) => {
                if !c.is_null() && cur.as_ref().is_none_or(|m| c.cmp_value(m).is_lt()) {
                    *cur = Some(c.to_value());
                }
            }
            Acc::Max(cur) => {
                if !c.is_null() && cur.as_ref().is_none_or(|m| c.cmp_value(m).is_gt()) {
                    *cur = Some(c.to_value());
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(f) = c.as_f64() {
                    *sum += f;
                    *n += 1;
                }
            }
        }
    }

    /// Folds another accumulator of the *same variant* into this one — the
    /// morsel-partial merge. Merging happens serially in morsel index order,
    /// so the result (float summation grouping included) depends only on the
    /// fixed morsel structure, never on scheduling.
    pub(crate) fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::CountDistinct(a), Acc::CountDistinct(b)) => a.extend(b),
            (Acc::SumInt(a, sa), Acc::SumInt(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (Acc::SumFloat(a, sa), Acc::SumFloat(b, sb)) => {
                // Only fold seen partials so an all-NULL morsel cannot turn
                // a -0.0 sum into +0.0.
                if sb {
                    *a += b;
                    *sa = true;
                }
            }
            (Acc::Min(a), Acc::Min(b)) => {
                if let Some(v) = b {
                    // Strict `<` keeps the earlier morsel's value on ties,
                    // matching serial first-seen semantics.
                    if a.as_ref().is_none_or(|c| v < *c) {
                        *a = Some(v);
                    }
                }
            }
            (Acc::Max(a), Acc::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref().is_none_or(|c| v > *c) {
                        *a = Some(v);
                    }
                }
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                if n2 > 0 {
                    *sum += s2;
                    *n += n2;
                }
            }
            _ => unreachable!("merging mismatched accumulator variants"),
        }
    }

    pub(crate) fn finish(self) -> Value {
        self.finish_ref()
    }

    /// [`Acc::finish`] without consuming the accumulator — the incremental
    /// maintainer emits a group's current output row while keeping the
    /// accumulator alive for the next delta.
    pub(crate) fn finish_ref(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n),
            Acc::CountDistinct(set) => Value::Int(set.len() as i64),
            Acc::SumInt(acc, seen) => {
                if *seen {
                    Value::Int(*acc)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat(acc, seen) => {
                if *seen {
                    Value::Float(*acc)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
        }
    }
}

/// Decides int-vs-float SUM from the first non-null input per aggregate —
/// shared with the serial reference interpreter so both agree.
pub(crate) fn float_sum_flags(input: &[Row], aggs: &[miso_plan::AggExpr]) -> Vec<bool> {
    aggs.iter()
        .map(|agg| {
            if agg.func != AggFunc::Sum {
                return false;
            }
            let Some(e) = &agg.input else { return false };
            for row in input {
                if let Ok(v) = eval(e, row) {
                    match v {
                        Value::Float(_) => return true,
                        Value::Int(_) => return false,
                        _ => continue,
                    }
                }
            }
            false
        })
        .collect()
}

/// [`float_sum_flags`] over a columnar batch. Only consulted when every SUM
/// source is an in-range bare column — where scalar evaluation cannot fail —
/// so scanning cells in row order reproduces the row-path scan exactly.
fn col_float_sum_flags(batch: &ColBatch, aggs: &[miso_plan::AggExpr]) -> Vec<bool> {
    aggs.iter()
        .map(|agg| {
            if agg.func != AggFunc::Sum {
                return false;
            }
            let Some(miso_plan::Expr::Column(c)) = &agg.input else {
                return false;
            };
            let col = batch.col(*c);
            for i in 0..col.len() {
                match col.cell(i) {
                    Cell::Float(_) => return true,
                    Cell::Int(_) => return false,
                    _ => {}
                }
            }
            false
        })
        .collect()
}

/// FNV-1a hash of a row's group-by columns (equal key tuples collide by the
/// `Hash`/`Eq` contract; unequal tuples are verified at the slot).
#[inline]
pub(crate) fn group_hash(row: &Row, group_by: &[usize]) -> u64 {
    if let [g] = group_by {
        return fnv1a_hash_one(row.get(*g));
    }
    let mut h = FnvHasher::default();
    for &g in group_by {
        row.get(g).hash(&mut h);
    }
    h.finish()
}

/// Group slots in first-seen order plus a prehashed index over them. Keys
/// are only cloned when a *new* group is created; existing groups are found
/// by hash + in-place column comparison, so steady-state rows allocate
/// nothing for keying.
pub(crate) struct GroupTable {
    /// `(key hash, key values, accumulators)` in first-seen order.
    pub(crate) slots: Vec<(u64, Vec<Value>, Vec<Acc>)>,
    index: PrehashedMap<Vec<u32>>,
}

impl GroupTable {
    pub(crate) fn with_capacity(capacity: usize) -> GroupTable {
        GroupTable {
            slots: Vec::with_capacity(capacity),
            index: prehashed_map(capacity),
        }
    }

    /// Finds the slot whose key satisfies `eq`, if any.
    pub(crate) fn find(&self, hash: u64, eq: impl Fn(&[Value]) -> bool) -> Option<usize> {
        self.index
            .get(&hash)?
            .iter()
            .map(|&s| s as usize)
            .find(|&s| eq(&self.slots[s].1))
    }

    pub(crate) fn insert(&mut self, hash: u64, key: Vec<Value>, accs: Vec<Acc>) -> usize {
        let slot = self.slots.len();
        assert!(slot <= u32::MAX as usize, "group count exceeds u32 slots");
        self.slots.push((hash, key, accs));
        self.index.entry(hash).or_default().push(slot as u32);
        slot
    }
}

/// An aggregate's input, pre-classified so the per-row hot loop can borrow
/// plain column references instead of paying an owned `eval` clone.
pub(crate) enum AggSrc<'a> {
    /// `COUNT(*)` — no input expression.
    CountAll,
    /// A bare column reference: borrow the value in place.
    Col(usize),
    /// A general expression: evaluate per row.
    Expr(&'a miso_plan::Expr),
}

pub(crate) fn classify_aggs(aggs: &[miso_plan::AggExpr]) -> Vec<AggSrc<'_>> {
    aggs.iter()
        .map(|a| match &a.input {
            None => AggSrc::CountAll,
            Some(miso_plan::Expr::Column(c)) => AggSrc::Col(*c),
            Some(e) => AggSrc::Expr(e),
        })
        .collect()
}

/// Accumulates one morsel into a fresh partial [`GroupTable`].
pub(crate) fn aggregate_morsel(
    chunk: &[Row],
    group_by: &[usize],
    aggs: &[miso_plan::AggExpr],
    srcs: &[AggSrc<'_>],
    float_sum: &[bool],
) -> Result<GroupTable> {
    let mut table = GroupTable::with_capacity(chunk.len().min(1024));
    for row in chunk {
        let hash = group_hash(row, group_by);
        let slot = match table.find(hash, |key| {
            group_by.iter().zip(key).all(|(&g, k)| row.get(g) == k)
        }) {
            Some(slot) => slot,
            None => {
                let key: Vec<Value> = group_by.iter().map(|&g| row.get(g).clone()).collect();
                let accs: Vec<Acc> = aggs
                    .iter()
                    .zip(float_sum)
                    .map(|(a, &fs)| Acc::new(a.func, fs))
                    .collect();
                table.insert(hash, key, accs)
            }
        };
        let accs = &mut table.slots[slot].2;
        for (acc, src) in accs.iter_mut().zip(srcs) {
            match src {
                AggSrc::CountAll => acc.update(None),
                AggSrc::Col(c) if *c < row.arity() => acc.update(Some(row.get(*c))),
                // Out-of-range column: route through eval so the error text
                // matches the serial interpreter exactly.
                AggSrc::Col(c) => {
                    let v = eval(&miso_plan::Expr::Column(*c), row)?;
                    acc.update(Some(&v));
                }
                AggSrc::Expr(e) => {
                    let v = eval(e, row)?;
                    acc.update(Some(&v));
                }
            }
        }
    }
    Ok(table)
}

/// Accumulates one columnar morsel `[start, start + n)` into a fresh partial
/// [`GroupTable`]. Only reached for batch-eligible aggregates (every source
/// is `COUNT(*)` or an in-range bare column), so unlike [`aggregate_morsel`]
/// nothing here can fail. Group hashes go through [`Cell`]'s `Hash`, which
/// streams identically to [`Value`]'s, so partial tables merge with row-path
/// partials' semantics bit-for-bit.
fn aggregate_morsel_cols(
    batch: &ColBatch,
    start: usize,
    n: usize,
    group_by: &[usize],
    aggs: &[miso_plan::AggExpr],
    srcs: &[AggSrc<'_>],
    float_sum: &[bool],
) -> GroupTable {
    let mut table = GroupTable::with_capacity(n.min(1024));
    for i in start..start + n {
        let hash = if let [g] = group_by {
            fnv1a_hash_one(&batch.cell(i, *g))
        } else {
            let mut h = FnvHasher::default();
            for &g in group_by {
                batch.cell(i, g).hash(&mut h);
            }
            h.finish()
        };
        let slot = match table.find(hash, |key| {
            group_by
                .iter()
                .zip(key)
                .all(|(&g, k)| batch.cell(i, g).eq_value(k))
        }) {
            Some(slot) => slot,
            None => {
                let key: Vec<Value> = group_by
                    .iter()
                    .map(|&g| batch.cell(i, g).to_value())
                    .collect();
                let accs: Vec<Acc> = aggs
                    .iter()
                    .zip(float_sum)
                    .map(|(a, &fs)| Acc::new(a.func, fs))
                    .collect();
                table.insert(hash, key, accs)
            }
        };
        let accs = &mut table.slots[slot].2;
        for (acc, src) in accs.iter_mut().zip(srcs) {
            match src {
                AggSrc::CountAll => acc.update(None),
                AggSrc::Col(c) => acc.update_cell(&batch.cell(i, *c)),
                AggSrc::Expr(_) => unreachable!("columnar aggregate requires column sources"),
            }
        }
    }
    table
}

/// Per-group-slot byte estimate for accumulator charging: slot bookkeeping
/// plus one accumulator's state per aggregate. Depends only on the data and
/// the fixed morsel structure, so the charge is thread-count-invariant.
const AGG_SLOT_BYTES: u64 = 48;
const AGG_ACC_BYTES: u64 = 16;

/// Morsel-parallel grouped aggregation: each morsel folds into a partial
/// table, partials merge serially in morsel order. The global first-seen
/// group order equals the serial row-order first-seen order because earlier
/// morsels cover earlier rows. The partial accumulator tables are charged
/// against `guard`'s memory budget while they are alive.
fn aggregate(
    input: &[Row],
    group_by: &[usize],
    aggs: &[miso_plan::AggExpr],
    guard: &QueryGuard,
) -> Result<Vec<Row>> {
    let float_sum = float_sum_flags(input, aggs);
    let srcs = classify_aggs(aggs);
    let parts = par_chunks(guard, input, |_, chunk| {
        aggregate_morsel(chunk, group_by, aggs, &srcs, &float_sum)
    })?;
    let parts = collect_ok(parts)?;
    finish_aggregate(parts, group_by, aggs, &float_sum, input.is_empty(), guard)
}

/// Shared tail of row and columnar aggregation: charges the partial tables,
/// merges them serially in morsel order, and emits the grouped output rows.
fn finish_aggregate(
    parts: Vec<GroupTable>,
    group_by: &[usize],
    aggs: &[miso_plan::AggExpr],
    float_sum: &[bool],
    input_empty: bool,
    guard: &QueryGuard,
) -> Result<Vec<Row>> {
    let slot_count: u64 = parts.iter().map(|t| t.slots.len() as u64).sum();
    let _accs = TempCharge::new(
        guard,
        slot_count * (AGG_SLOT_BYTES + aggs.len() as u64 * AGG_ACC_BYTES),
    )?;
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && input_empty {
        let accs: Vec<Acc> = aggs
            .iter()
            .zip(float_sum)
            .map(|(a, &fs)| Acc::new(a.func, fs))
            .collect();
        let values: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![Row::new(values)]);
    }
    let total: usize = parts.iter().map(|t| t.slots.len()).sum();
    let mut global = GroupTable::with_capacity(total);
    for part in parts {
        for (hash, key, accs) in part.slots {
            match global.find(hash, |k| k == key.as_slice()) {
                Some(slot) => {
                    for (acc, partial) in global.slots[slot].2.iter_mut().zip(accs) {
                        acc.merge(partial);
                    }
                }
                None => {
                    global.insert(hash, key, accs);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(global.slots.len());
    for (_, key, accs) in global.slots {
        let mut values = key;
        values.extend(accs.into_iter().map(Acc::finish));
        out.push(Row::new(values));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::{DataType, Field, Schema};
    use miso_plan::{AggExpr, Expr, PlanBuilder};

    fn source() -> MemSource {
        let mut src = MemSource::new();
        src.add_log(
            "events",
            vec![
                r#"{"uid": 1, "city": "sf", "score": 10}"#.to_string(),
                r#"{"uid": 2, "city": "ny", "score": 20}"#.to_string(),
                r#"{"uid": 1, "city": "sf", "score": 30}"#.to_string(),
                "not json at all".to_string(),
                r#"{"uid": 3, "city": "sf"}"#.to_string(),
            ],
        );
        src
    }

    fn extract_plan() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("uid".into(), Expr::col(0).get("uid").cast(DataType::Int)),
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                        (
                            "score".into(),
                            Expr::col(0).get("score").cast(DataType::Int),
                        ),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        b.finish(proj).unwrap()
    }

    #[test]
    fn scan_skips_malformed_lines() {
        let exec = execute(&extract_plan(), &source(), &UdfRegistry::new()).unwrap();
        assert_eq!(exec.skipped_lines, 1);
        assert_eq!(exec.root_rows().unwrap().len(), 4);
    }

    #[test]
    fn missing_fields_become_null() {
        let exec = execute(&extract_plan(), &source(), &UdfRegistry::new()).unwrap();
        let last = &exec.root_rows().unwrap()[3];
        assert_eq!(last.get(0), &Value::Int(3));
        assert_eq!(last.get(2), &Value::Null);
    }

    #[test]
    fn filter_and_aggregate() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                        (
                            "score".into(),
                            Expr::col(0).get("score").cast(DataType::Int),
                        ),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit("sf")),
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![0],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                        AggExpr::new(AggFunc::Avg, Some(Expr::col(1)), "avg"),
                        AggExpr::new(AggFunc::Min, Some(Expr::col(1)), "lo"),
                        AggExpr::new(AggFunc::Max, Some(Expr::col(1)), "hi"),
                    ],
                },
                vec![filt],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new()).unwrap();
        let rows = exec.root_rows().unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.get(0), &Value::str("sf"));
        assert_eq!(row.get(1), &Value::Int(3), "COUNT(*) counts null-score row");
        assert_eq!(row.get(2), &Value::Int(40), "SUM skips NULL");
        assert_eq!(row.get(3), &Value::Float(20.0), "AVG over non-null only");
        assert_eq!(row.get(4), &Value::Int(10));
        assert_eq!(row.get(5), &Value::Int(30));
    }

    #[test]
    fn count_distinct() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![("uid".into(), Expr::col(0).get("uid").cast(DataType::Int))],
                },
                vec![scan],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(
                        AggFunc::CountDistinct,
                        Some(Expr::col(0)),
                        "users",
                    )],
                },
                vec![proj],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new()).unwrap();
        assert_eq!(exec.root_rows().unwrap()[0].get(0), &Value::Int(3));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let mut src = MemSource::new();
        src.add_log("empty", vec![]);
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "empty".into(),
                },
                vec![],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(0)), "s"),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let exec = execute(&plan, &src, &UdfRegistry::new()).unwrap();
        let rows = exec.root_rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(0));
        assert_eq!(rows[0].get(1), &Value::Null);
    }

    #[test]
    fn hash_join_matches_and_skips_nulls() {
        let left = vec![
            Row::new(vec![Value::Int(1), Value::str("a")]),
            Row::new(vec![Value::Int(2), Value::str("b")]),
            Row::new(vec![Value::Null, Value::str("n")]),
        ];
        let right = vec![
            Row::new(vec![Value::Int(1), Value::str("x")]),
            Row::new(vec![Value::Int(1), Value::str("y")]),
            Row::new(vec![Value::Null, Value::str("z")]),
        ];
        let out = hash_join(&left, &right, &[(0, 0)]).unwrap();
        assert_eq!(out.len(), 2, "uid 1 matches twice; NULLs never join");
        assert!(out.iter().all(|r| r.get(0) == &Value::Int(1)));
        assert_eq!(out[0].arity(), 4);
    }

    #[test]
    fn hash_join_multi_column_and_cross_type_keys() {
        // Int/Float keys that compare equal must join (hash consistency).
        let left = vec![
            Row::new(vec![Value::Int(1), Value::str("a"), Value::Int(7)]),
            Row::new(vec![Value::Float(1.0), Value::str("a"), Value::Int(8)]),
            Row::new(vec![Value::Int(1), Value::str("b"), Value::Int(9)]),
        ];
        let right = vec![Row::new(vec![Value::Int(1), Value::str("a")])];
        let out = hash_join(&left, &right, &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(out.len(), 2, "both (1,a) variants match; (1,b) does not");
        assert_eq!(out[0].get(2), &Value::Int(7));
        assert_eq!(out[1].get(2), &Value::Int(8));
    }

    #[test]
    fn sort_and_limit() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("uid".into(), Expr::col(0).get("uid").cast(DataType::Int)),
                        (
                            "score".into(),
                            Expr::col(0).get("score").cast(DataType::Int),
                        ),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let sort = b
            .add(
                Operator::Sort {
                    keys: vec![(1, true)],
                },
                vec![proj],
            )
            .unwrap();
        let limit = b.add(Operator::Limit { n: 2 }, vec![sort]).unwrap();
        let plan = b.finish(limit).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new()).unwrap();
        let rows = exec.root_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1), &Value::Int(30));
        assert_eq!(rows[1].get(1), &Value::Int(20));
    }

    #[test]
    fn sort_ties_keep_input_order() {
        // The (key, index) unstable sort must reproduce stable-sort output.
        let mut src = MemSource::new();
        src.add_view(
            "v",
            (0..3000)
                .map(|i| Row::new(vec![Value::Int(i % 7), Value::Int(i)]))
                .collect(),
        );
        let mut b = PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "v".into(),
                    schema: Schema::new(vec![
                        Field::new("k", DataType::Int),
                        Field::new("seq", DataType::Int),
                    ]),
                },
                vec![],
            )
            .unwrap();
        let sort = b
            .add(
                Operator::Sort {
                    keys: vec![(0, false)],
                },
                vec![sv],
            )
            .unwrap();
        let plan = b.finish(sort).unwrap();
        let exec = execute(&plan, &src, &UdfRegistry::new()).unwrap();
        let rows = exec.root_rows().unwrap();
        let mut last = (i64::MIN, i64::MIN);
        for row in rows {
            let k = row.get(0).as_i64().unwrap();
            let seq = row.get(1).as_i64().unwrap();
            assert!((k, seq) > last, "equal keys must keep input order");
            last = (k, seq);
        }
    }

    #[test]
    fn udf_execution() {
        use std::sync::Arc as StdArc;
        let mut reg = UdfRegistry::new();
        reg.register(crate::udf::Udf::new(
            "uid_only_positive",
            Schema::new(vec![Field::new("uid", DataType::Int)]),
            StdArc::new(
                |row: &Row| match row.get(0).get_field("uid").and_then(Value::as_i64) {
                    Some(uid) if uid > 1 => Ok(vec![Row::new(vec![Value::Int(uid)])]),
                    _ => Ok(vec![]),
                },
            ),
        ));
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let udf = b
            .add(
                Operator::Udf {
                    name: "uid_only_positive".into(),
                    output: Schema::new(vec![Field::new("uid", DataType::Int)]),
                },
                vec![scan],
            )
            .unwrap();
        let plan = b.finish(udf).unwrap();
        let exec = execute(&plan, &source(), &UdfRegistry::new().clone()).unwrap_err();
        assert!(exec.to_string().contains("unknown UDF"));
        let exec = execute(&plan, &source(), &reg).unwrap();
        assert_eq!(exec.root_rows().unwrap().len(), 2); // uids 2 and 3
    }

    #[test]
    fn split_execution_equals_full_execution() {
        let plan = extract_plan();
        let src = source();
        let udfs = UdfRegistry::new();
        let full = execute(&plan, &src, &udfs).unwrap();
        // HV side: scan only.
        let hv_set: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
        let hv = execute_subset(&plan, Some(&hv_set), HashMap::new(), &src, &udfs).unwrap();
        // DW side: project, with scan's output provided.
        let provided: HashMap<NodeId, Arc<Vec<Row>>> = [(NodeId(0), hv.output(NodeId(0)).clone())]
            .into_iter()
            .collect();
        let dw_set: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        let dw = execute_subset(&plan, Some(&dw_set), provided, &src, &udfs).unwrap();
        assert_eq!(dw.root_rows().unwrap(), full.root_rows().unwrap());
    }

    #[test]
    fn missing_provided_input_is_an_error() {
        let plan = extract_plan();
        let dw_set: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        let err = execute_subset(
            &plan,
            Some(&dw_set),
            HashMap::new(),
            &source(),
            &UdfRegistry::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("neither executed nor provided"));
    }

    #[test]
    fn output_bytes_reflect_content() {
        let exec = execute(&extract_plan(), &source(), &UdfRegistry::new()).unwrap();
        assert!(exec.output_bytes(NodeId(1)).as_bytes() > 0);
        assert!(exec.output_bytes(NodeId(0)) > exec.output_bytes(NodeId(1)));
        assert_eq!(exec.output_bytes(NodeId(42)), ByteSize::ZERO);
    }

    /// A scan → filter → sort → limit pipeline over enough rows to span
    /// several morsels, used by the retention/steal and threading tests.
    fn steal_pipeline() -> (LogicalPlan, MemSource) {
        let mut src = MemSource::new();
        src.add_view(
            "big",
            (0..10_000)
                .map(|i| Row::new(vec![Value::Int(i), Value::Int((i * 37) % 1000)]))
                .collect(),
        );
        let mut b = PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "big".into(),
                    schema: Schema::new(vec![
                        Field::new("id", DataType::Int),
                        Field::new("x", DataType::Int),
                    ]),
                },
                vec![],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::Binary {
                        op: miso_plan::BinOp::Lt,
                        left: Box::new(Expr::col(1)),
                        right: Box::new(Expr::lit(500i64)),
                    },
                },
                vec![sv],
            )
            .unwrap();
        let sort = b
            .add(
                Operator::Sort {
                    keys: vec![(1, false)],
                },
                vec![filt],
            )
            .unwrap();
        let limit = b.add(Operator::Limit { n: 100 }, vec![sort]).unwrap();
        (b.finish(limit).unwrap(), src)
    }

    #[test]
    fn retain_root_only_matches_full_retention_at_the_root() {
        let (plan, src) = steal_pipeline();
        let udfs = UdfRegistry::new();
        let full = execute(&plan, &src, &udfs).unwrap();
        let lean = execute_subset_opts(
            &plan,
            None,
            HashMap::new(),
            &src,
            &udfs,
            ExecOptions {
                retain_root_only: true,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(lean.root_rows().unwrap(), full.root_rows().unwrap());
        // Intermediates were released but their row counts survive.
        assert!(lean.try_output(NodeId(0)).is_none());
        assert!(lean.try_output(NodeId(1)).is_none());
        assert_eq!(lean.rows_out(NodeId(0)), full.rows_out(NodeId(0)));
        assert_eq!(lean.rows_out(NodeId(1)), full.rows_out(NodeId(1)));
        assert_eq!(lean.executed_nodes().count(), full.executed_nodes().count());
        // Full retention keeps everything observable (harvest contract).
        assert!(full.try_output(NodeId(0)).is_some());
    }

    #[test]
    fn outputs_are_thread_count_invariant() {
        let (plan, src) = steal_pipeline();
        let udfs = UdfRegistry::new();
        let before = pool::threads();
        let mut reference: Option<Vec<Row>> = None;
        for t in [1, 2, 8] {
            pool::set_threads(t);
            let exec = execute(&plan, &src, &udfs).unwrap();
            let rows = exec.root_rows().unwrap().to_vec();
            match &reference {
                None => reference = Some(rows),
                Some(want) => assert_eq!(&rows, want, "threads={t}"),
            }
        }
        pool::set_threads(before);
    }

    /// Root-only retention with `columnar` explicitly set.
    fn lean(columnar: bool) -> ExecOptions {
        ExecOptions {
            retain_root_only: true,
            columnar,
        }
    }

    fn run_opts(plan: &LogicalPlan, src: &MemSource, opts: ExecOptions) -> Execution {
        execute_subset_opts(plan, None, HashMap::new(), src, &UdfRegistry::new(), opts).unwrap()
    }

    /// A multi-morsel log pipeline that hits every columnar operator body:
    /// fused scan+project, vectorized filter, columnar grouped aggregation.
    fn columnar_pipeline() -> (LogicalPlan, MemSource) {
        let mut src = MemSource::new();
        let lines: Vec<String> = (0..12_000)
            .map(|i| {
                if i % 97 == 13 {
                    "oops not json".to_string()
                } else if i % 53 == 0 {
                    // Missing score: NULL after projection.
                    format!(r#"{{"uid": {}, "city": "c{}"}}"#, i % 50, i % 7)
                } else {
                    format!(
                        r#"{{"uid": {}, "city": "c{}", "score": {}}}"#,
                        i % 50,
                        i % 7,
                        (i * 31) % 1000
                    )
                }
            })
            .collect();
        src.add_log("events", lines);
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "events".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("uid".into(), Expr::col(0).get("uid").cast(DataType::Int)),
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                        (
                            "score".into(),
                            Expr::col(0).get("score").cast(DataType::Int),
                        ),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::Binary {
                        op: miso_plan::BinOp::Lt,
                        left: Box::new(Expr::col(2)),
                        right: Box::new(Expr::lit(700i64)),
                    },
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![1],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(2)), "total"),
                        AggExpr::new(AggFunc::Min, Some(Expr::col(0)), "lo"),
                        AggExpr::new(AggFunc::Max, Some(Expr::col(2)), "hi"),
                        AggExpr::new(AggFunc::Avg, Some(Expr::col(2)), "avg"),
                    ],
                },
                vec![filt],
            )
            .unwrap();
        (b.finish(agg).unwrap(), src)
    }

    #[test]
    fn columnar_lean_matches_row_path_and_serial_oracle() {
        let (plan, src) = columnar_pipeline();
        let udfs = UdfRegistry::new();
        let serial = crate::serial::execute_serial(&plan, &src, &udfs).unwrap();
        let before = pool::threads();
        for t in [1, 8] {
            pool::set_threads(t);
            let col = run_opts(&plan, &src, lean(true));
            let row = run_opts(&plan, &src, lean(false));
            assert_eq!(
                col.root_rows().unwrap(),
                serial.root_rows().unwrap(),
                "columnar vs serial, threads={t}"
            );
            assert_eq!(
                row.root_rows().unwrap(),
                serial.root_rows().unwrap(),
                "row vs serial, threads={t}"
            );
            assert_eq!(col.skipped_lines, serial.skipped_lines);
            // The fused scan still reports per-node row counts.
            for id in serial.executed_nodes() {
                assert_eq!(
                    col.rows_out(id),
                    serial.rows_out(id),
                    "node {id} threads={t}"
                );
            }
        }
        pool::set_threads(before);
    }

    #[test]
    fn columnar_outputs_are_thread_count_invariant() {
        let (plan, src) = columnar_pipeline();
        let before = pool::threads();
        let mut reference: Option<Vec<Row>> = None;
        for t in [1, 2, 8] {
            pool::set_threads(t);
            let exec = run_opts(&plan, &src, lean(true));
            let rows = exec.root_rows().unwrap().to_vec();
            match &reference {
                None => reference = Some(rows),
                Some(want) => assert_eq!(&rows, want, "threads={t}"),
            }
        }
        pool::set_threads(before);
    }

    /// View scans publish a columnar twin beside the zero-copy rows; the
    /// filter consumes the batch while sort/limit pivot back — the whole
    /// steal pipeline must agree with its row-mode run.
    #[test]
    fn columnar_view_scan_matches_row_path() {
        let (plan, src) = steal_pipeline();
        let col = run_opts(&plan, &src, lean(true));
        let row = run_opts(&plan, &src, lean(false));
        assert_eq!(col.root_rows().unwrap(), row.root_rows().unwrap());
    }

    /// Joins stay row-wise: with columnar on, the join's view inputs use the
    /// zero-copy row handles; the downstream aggregate pivots the joined
    /// rows to a batch on demand (`ensure_cols`) and must still agree with
    /// the row path.
    #[test]
    fn columnar_join_pipeline_matches_row_path() {
        let mut src = MemSource::new();
        src.add_view(
            "facts",
            (0..5_000)
                .map(|i| Row::new(vec![Value::Int(i % 400), Value::Int(i)]))
                .collect(),
        );
        src.add_view(
            "dims",
            (0..400)
                .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("seg-{}", i % 13))]))
                .collect(),
        );
        let schema = |fields: Vec<Field>| Schema::new(fields);
        let mut b = PlanBuilder::new();
        let facts = b
            .add(
                Operator::ScanView {
                    view: "facts".into(),
                    schema: schema(vec![
                        Field::new("k", DataType::Int),
                        Field::new("v", DataType::Int),
                    ]),
                },
                vec![],
            )
            .unwrap();
        let dims = b
            .add(
                Operator::ScanView {
                    view: "dims".into(),
                    schema: schema(vec![
                        Field::new("k", DataType::Int),
                        Field::new("seg", DataType::Str),
                    ]),
                },
                vec![],
            )
            .unwrap();
        let join = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![facts, dims])
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![3],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                    ],
                },
                vec![join],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let col = run_opts(&plan, &src, lean(true));
        let row = run_opts(&plan, &src, lean(false));
        assert_eq!(col.root_rows().unwrap(), row.root_rows().unwrap());
    }

    /// The production DW shape: a working set shipped from HV arrives as a
    /// *provided* row seed (not a view scan), and the vectorizable consumers
    /// above it — filter, project, aggregate — must pivot it on demand
    /// (`ensure_cols`) and agree with the row path and the full execution.
    #[test]
    fn columnar_provided_seed_matches_row_path() {
        let mut src = MemSource::new();
        src.add_view(
            "ws",
            (0..9_000)
                .map(|i| {
                    Row::new(vec![
                        Value::str(format!("city-{}", i % 23)),
                        Value::Int(i % 500),
                        Value::Float(i as f64 / 7.0),
                    ])
                })
                .collect(),
        );
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanView {
                    view: "ws".into(),
                    schema: Schema::new(vec![
                        Field::new("city", DataType::Str),
                        Field::new("n", DataType::Int),
                        Field::new("score", DataType::Float),
                    ]),
                },
                vec![],
            )
            .unwrap();
        let filter = b
            .add(
                Operator::Filter {
                    predicate: Expr::Binary {
                        op: miso_plan::BinOp::Gt,
                        left: Box::new(Expr::col(1)),
                        right: Box::new(Expr::lit(100i64)),
                    },
                },
                vec![scan],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("city".into(), Expr::col(0)),
                        ("score".into(), Expr::col(2)),
                    ],
                },
                vec![filter],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![0],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                    ],
                },
                vec![proj],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let udfs = UdfRegistry::new();
        let full = execute(&plan, &src, &udfs).unwrap();
        // Ship the scan's output as a provided seed, DW-style: the consumer
        // subset never sees the view, only the pre-staged rows.
        let provided: HashMap<NodeId, Arc<Vec<Row>>> =
            [(scan, full.output(scan).clone())].into_iter().collect();
        let dw_set: HashSet<NodeId> = [filter, proj, agg].into_iter().collect();
        for columnar in [true, false] {
            let dw = execute_subset_opts(
                &plan,
                Some(&dw_set),
                provided.clone(),
                &src,
                &udfs,
                lean(columnar),
            )
            .unwrap();
            assert_eq!(
                dw.root_rows().unwrap(),
                full.root_rows().unwrap(),
                "columnar={columnar}"
            );
        }
    }
}
