//! Per-operator execution profiles (the raw material for EXPLAIN ANALYZE).
//!
//! Profiling is a process-wide switch behind a single relaxed atomic load:
//! [`enabled`] is checked once per executed plan, and when off the engine
//! does no extra work — no byte counting, no morsel accounting, no map
//! inserts — so the profiling-off path stays on the same instruction budget
//! as before this module existed.
//!
//! Every field of an [`OpProfile`] except `wall_ns` is **deterministic**:
//! row and byte counts follow from the data, and morsel counts follow from
//! the fixed [`crate::MORSEL_SIZE`] constant, never from the worker count.
//! Profiles collected at `MISO_THREADS=1` and `MISO_THREADS=8` therefore
//! agree on everything but wall time ([`OpProfile::deterministic`]).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Whether per-operator profiling is collected. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turns per-operator profiling on or off (process-wide).
pub fn set_enabled(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Enables profiling when `MISO_XRAY` is set to anything but `0`/`false`.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("MISO_XRAY") {
        set_enabled(!matches!(v.as_str(), "" | "0" | "false"));
    }
}

/// What one operator did during one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpProfile {
    /// Real wall-clock nanoseconds spent in the operator body. The only
    /// nondeterministic field — excluded from [`OpProfile::deterministic`].
    pub wall_ns: u64,
    /// Rows flowing in: the sum of the input nodes' output row counts
    /// (0 for leaf scans, which read lines/view rows instead of node rows).
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Approximate serialized bytes of the produced rows.
    pub bytes_out: u64,
    /// Morsels dispatched to the worker pool while this operator ran.
    pub morsels: u64,
    /// Items (rows or lines) that went through morsel-parallel dispatch.
    pub par_rows: u64,
}

impl OpProfile {
    /// The deterministic fields, for cross-thread-count comparison.
    pub fn deterministic(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.rows_in,
            self.rows_out,
            self.bytes_out,
            self.morsels,
            self.par_rows,
        )
    }

    /// Fraction of input items that were processed via morsel-parallel
    /// dispatch (`par_rows` can exceed `rows_in` for joins, which dispatch
    /// both sides; clamped to 1.0).
    pub fn parallel_fraction(&self) -> f64 {
        if self.rows_in == 0 {
            if self.par_rows > 0 {
                1.0
            } else {
                0.0
            }
        } else {
            (self.par_rows as f64 / self.rows_in as f64).min(1.0)
        }
    }
}

thread_local! {
    /// (morsels, par_rows) dispatched on this thread since the last
    /// [`take_dispatch`]. `par_chunks` coordinates from the calling thread,
    /// so per-node attribution needs no cross-thread aggregation.
    static DISPATCH: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Records a morsel dispatch (called by the engine's `par_chunks`).
pub(crate) fn note_dispatch(morsels: u64, items: u64) {
    DISPATCH.with(|d| {
        let (m, r) = d.get();
        d.set((m + morsels, r + items));
    });
}

/// Drains the dispatch counters accumulated since the previous call.
pub(crate) fn take_dispatch() -> (u64, u64) {
    DISPATCH.with(|d| d.replace((0, 0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_fraction_edge_cases() {
        let p = OpProfile::default();
        assert_eq!(p.parallel_fraction(), 0.0);
        let scan = OpProfile {
            par_rows: 100,
            ..Default::default()
        };
        assert_eq!(scan.parallel_fraction(), 1.0);
        let join = OpProfile {
            rows_in: 50,
            par_rows: 100,
            ..Default::default()
        };
        assert_eq!(join.parallel_fraction(), 1.0);
        let half = OpProfile {
            rows_in: 100,
            par_rows: 50,
            ..Default::default()
        };
        assert_eq!(half.parallel_fraction(), 0.5);
    }

    #[test]
    fn dispatch_counters_accumulate_and_drain() {
        let _ = take_dispatch();
        note_dispatch(2, 8000);
        note_dispatch(1, 100);
        assert_eq!(take_dispatch(), (3, 8100));
        assert_eq!(take_dispatch(), (0, 0));
    }
}
