//! The original row-at-a-time interpreter, preserved verbatim as a
//! reference implementation.
//!
//! [`execute_serial`] is the semantic oracle for the morsel-parallel engine
//! in [`crate::engine`]: differential tests and `execbench` run both over
//! the same plans and assert row-for-row identical output. It is also the
//! benchmark baseline — the "before" in the engine's speedup numbers — so
//! it intentionally keeps the seed implementation's allocation behaviour
//! (per-probe key `Vec`s in the join, per-row group-key clones in the
//! aggregate, full-input stable sorts) rather than sharing the reworked
//! operator bodies.

use crate::engine::{float_sum_flags, Acc, DataSource, Execution};
use crate::eval::{eval, eval_predicate};
use crate::udf::UdfRegistry;
use miso_common::ids::NodeId;
use miso_common::{MisoError, Result};
use miso_data::json::parse_json;
use miso_data::{Row, Value};
use miso_plan::{LogicalPlan, Operator};
use std::collections::HashMap;
use std::sync::Arc;

/// Executes the whole plan with the seed row-at-a-time operator bodies,
/// single-threaded regardless of the pool's worker count.
pub fn execute_serial(
    plan: &LogicalPlan,
    source: &dyn DataSource,
    udfs: &UdfRegistry,
) -> Result<Execution> {
    let mut outputs: HashMap<NodeId, Arc<Vec<Row>>> = HashMap::new();
    let mut rows_out: HashMap<NodeId, u64> = HashMap::with_capacity(plan.len());
    let mut skipped_lines = 0u64;
    for node in plan.nodes() {
        let get_input = |idx: usize| -> Result<&Arc<Vec<Row>>> {
            outputs.get(&node.inputs[idx]).ok_or_else(|| {
                MisoError::Execution(format!(
                    "node {} input {} neither executed nor provided",
                    node.id, node.inputs[idx]
                ))
            })
        };
        let rows: Vec<Row> = match &node.op {
            Operator::ScanLog { log } => {
                let mut rows = Vec::new();
                for line in source.log_lines(log)? {
                    match parse_json(line) {
                        Ok(v) => rows.push(Row::new(vec![v])),
                        Err(_) => skipped_lines += 1,
                    }
                }
                rows
            }
            Operator::ScanView { view, .. } => source.view_rows(view)?.to_vec(),
            Operator::Filter { predicate } => {
                let input = get_input(0)?;
                let mut rows = Vec::new();
                for row in input.iter() {
                    if eval_predicate(predicate, row)? {
                        rows.push(row.clone());
                    }
                }
                rows
            }
            Operator::Project { exprs } => {
                let input = get_input(0)?;
                let mut rows = Vec::with_capacity(input.len());
                for row in input.iter() {
                    let values: Vec<Value> = exprs
                        .iter()
                        .map(|(_, e)| eval(e, row))
                        .collect::<Result<_>>()?;
                    rows.push(Row::new(values));
                }
                rows
            }
            Operator::Join { on } => {
                let left = get_input(0)?.clone();
                let right = get_input(1)?;
                hash_join_serial(&left, right, on)
            }
            Operator::Aggregate { group_by, aggs } => {
                let input = get_input(0)?;
                aggregate_serial(input, group_by, aggs)?
            }
            Operator::Udf { name, .. } => {
                let udf = udfs.require(name)?;
                let input = get_input(0)?;
                let mut rows = Vec::new();
                for row in input.iter() {
                    rows.extend(udf.apply(row)?);
                }
                rows
            }
            Operator::Sort { keys } => {
                let input = get_input(0)?;
                let mut rows = input.as_ref().clone();
                rows.sort_by(|a, b| {
                    for &(col, desc) in keys {
                        let ord = a.get(col).cmp(b.get(col));
                        let ord = if desc { ord.reverse() } else { ord };
                        if !ord.is_eq() {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                rows
            }
            Operator::Limit { n } => {
                let input = get_input(0)?;
                input.iter().take(*n as usize).cloned().collect()
            }
        };
        rows_out.insert(node.id, rows.len() as u64);
        outputs.insert(node.id, Arc::new(rows));
    }
    Ok(Execution::from_parts(
        outputs,
        rows_out,
        skipped_lines,
        plan.root(),
    ))
}

/// Inner hash equijoin, seed edition: `Vec<&Value>` key per row, SipHash.
pub fn hash_join_serial(left: &[Row], right: &[Row], on: &[(usize, usize)]) -> Vec<Row> {
    // Build on the right side.
    let mut table: HashMap<Vec<&Value>, Vec<&Row>> = HashMap::new();
    'right: for row in right {
        let mut key = Vec::with_capacity(on.len());
        for &(_, r) in on {
            let v = row.get(r);
            if v.is_null() {
                continue 'right;
            }
            key.push(v);
        }
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    'left: for row in left {
        let mut key = Vec::with_capacity(on.len());
        for &(l, _) in on {
            let v = row.get(l);
            if v.is_null() {
                continue 'left;
            }
            key.push(v);
        }
        if let Some(matches) = table.get(&key) {
            for m in matches {
                out.push(row.concat(m));
            }
        }
    }
    out
}

/// Grouped aggregation, seed edition: clone the full group key per row.
fn aggregate_serial(
    input: &[Row],
    group_by: &[usize],
    aggs: &[miso_plan::AggExpr],
) -> Result<Vec<Row>> {
    let float_sum = float_sum_flags(input, aggs);
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    // Deterministic output: remember first-seen order of groups.
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in input {
        let key: Vec<Value> = group_by.iter().map(|&g| row.get(g).clone()).collect();
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(|| {
                    aggs.iter()
                        .zip(&float_sum)
                        .map(|(a, &fs)| Acc::new(a.func, fs))
                        .collect()
                })
            }
        };
        for (acc, agg) in accs.iter_mut().zip(aggs) {
            match &agg.input {
                Some(e) => {
                    let v = eval(e, row)?;
                    acc.update(Some(&v));
                }
                None => acc.update(None),
            }
        }
    }
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = aggs
            .iter()
            .zip(&float_sum)
            .map(|(a, &fs)| Acc::new(a.func, fs))
            .collect();
        let values: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![Row::new(values)]);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group exists");
        let mut values = key;
        values.extend(accs.into_iter().map(Acc::finish));
        out.push(Row::new(values));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute, MemSource};
    use miso_data::{DataType, Field, Schema};
    use miso_plan::{AggExpr, AggFunc, Expr, PlanBuilder};

    /// Serial and morsel-parallel engines agree on a join + aggregate plan
    /// big enough to span several morsels.
    #[test]
    fn serial_is_the_oracle_for_the_parallel_engine() {
        let mut src = MemSource::new();
        src.add_view(
            "facts",
            (0..9000)
                .map(|i| Row::new(vec![Value::Int(i % 700), Value::Int(i)]))
                .collect(),
        );
        src.add_view(
            "dims",
            (0..700)
                .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("seg-{}", i % 13))]))
                .collect(),
        );
        let schema_facts = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]);
        let schema_dims = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seg", DataType::Str),
        ]);
        let mut b = PlanBuilder::new();
        let facts = b
            .add(
                Operator::ScanView {
                    view: "facts".into(),
                    schema: schema_facts,
                },
                vec![],
            )
            .unwrap();
        let dims = b
            .add(
                Operator::ScanView {
                    view: "dims".into(),
                    schema: schema_dims,
                },
                vec![],
            )
            .unwrap();
        let join = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![facts, dims])
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![3],
                    aggs: vec![
                        AggExpr::new(AggFunc::Count, None, "n"),
                        AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                        AggExpr::new(AggFunc::Min, Some(Expr::col(1)), "lo"),
                        AggExpr::new(AggFunc::Max, Some(Expr::col(1)), "hi"),
                    ],
                },
                vec![join],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let udfs = UdfRegistry::new();
        let serial = execute_serial(&plan, &src, &udfs).unwrap();
        let parallel = execute(&plan, &src, &udfs).unwrap();
        assert_eq!(serial.root_rows().unwrap(), parallel.root_rows().unwrap());
        assert_eq!(serial.skipped_lines, parallel.skipped_lines);
    }
}
