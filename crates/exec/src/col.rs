//! Columnar (vectorized) execution support for the morsel engine.
//!
//! This module is the expression half of miso-col: a process-wide toggle
//! ([`enabled`], `MISO_COL`), a vectorizability check over plan
//! expressions, a morsel-at-a-time expression evaluator ([`eval_vec`])
//! that produces whole [`Column`] vectors instead of per-row [`Value`]s,
//! and the fused scan+project line parser that turns raw JSON log lines
//! straight into typed column vectors. The operator integration (columnar
//! filter/project/aggregate bodies) lives in [`crate::engine`], which owns
//! morsel dispatch, the guard seam and the accumulator machinery.
//!
//! **Semantics contract**: every path here must agree bit-for-bit with the
//! scalar evaluator in [`crate::eval`]. Fast paths are only taken where
//! the scalar semantics are reproduced exactly (Int/Int comparisons are
//! `i64::cmp`, Str/Str comparisons are `str::cmp`, everything else routes
//! through the shared scalar kernels `eval_binary`/`eval_unary`/`cast`).
//! AND/OR reproduce the scalar short-circuit: the right side is evaluated
//! only at positions where the left side did not decide, so a plan whose
//! right branch would error serially errors columnar-ly in exactly the
//! same cases.

use crate::eval::{cast, eval_binary, eval_unary, logical_combine};
use miso_common::{MisoError, Result};
use miso_data::json::{parse_flat_line, parse_json, FlatVal};
use miso_data::{Cell, ColBatch, ColBuilder, Column, DataType, Value};
use miso_plan::{BinOp, Expr, UnaryOp};
use std::sync::atomic::{AtomicBool, Ordering};

static COLUMNAR: AtomicBool = AtomicBool::new(true);

/// Whether the engine runs eligible operators column-at-a-time. One
/// relaxed load; defaults to **on**.
#[inline]
pub fn enabled() -> bool {
    COLUMNAR.load(Ordering::Relaxed)
}

/// Turns columnar execution on or off (process-wide).
pub fn set_enabled(on: bool) {
    COLUMNAR.store(on, Ordering::Relaxed);
}

/// Applies `MISO_COL` when set: `0`/`false`/empty disable, anything else
/// enables. Absent leaves the compiled-in default (on).
pub fn init_from_env() {
    if let Ok(v) = std::env::var("MISO_COL") {
        set_enabled(!matches!(v.as_str(), "" | "0" | "false"));
    }
}

/// Can `eval_vec` evaluate this expression? Field access and builtin
/// functions stay on the row path (they produce/consume nested JSON, where
/// a columnar layout buys nothing), which makes the whole operator fall
/// back to rows.
pub(crate) fn vectorizable(e: &Expr) -> bool {
    match e {
        Expr::Column(_) | Expr::Literal(_) => true,
        Expr::Cast { input, .. } | Expr::Unary { input, .. } => vectorizable(input),
        Expr::Binary { left, right, .. } => vectorizable(left) && vectorizable(right),
        Expr::FieldGet { .. } | Expr::Func { .. } => false,
    }
}

/// One evaluated vector over a morsel `[start, start + n)` of a batch.
#[derive(Debug)]
pub(crate) enum VCol<'a> {
    /// Same constant at every position.
    Const(Value),
    /// Borrowed input column; position `j` reads slot `start + j`.
    Ref(&'a Column, usize),
    /// Computed column of length `n`; positions outside the evaluation
    /// mask hold NULL and are never read by the consumer.
    Owned(Column),
}

impl VCol<'_> {
    /// Borrowed scalar at morsel-local position `j`.
    #[inline]
    pub(crate) fn cell(&self, j: usize) -> Cell<'_> {
        match self {
            VCol::Const(v) => Cell::of(v),
            VCol::Ref(c, start) => c.cell(start + j),
            VCol::Owned(c) => c.cell(j),
        }
    }

    /// The underlying column vector, when there is one.
    fn column(&self) -> Option<&Column> {
        match self {
            VCol::Ref(c, _) => Some(c),
            VCol::Owned(c) => Some(c),
            VCol::Const(_) => None,
        }
    }

    /// Materializes morsel-local positions `0..n` as an owned column.
    pub(crate) fn into_column(self, n: usize) -> Column {
        match self {
            VCol::Owned(c) => c,
            v => {
                let mut b = ColBuilder::new();
                b.reserve(n);
                for j in 0..n {
                    b.push_value(v.cell(j).to_value());
                }
                b.finish()
            }
        }
    }
}

/// Builds an owned column of length `n` from `at`, evaluated only at the
/// masked positions (`mask` is sorted ascending); unmasked slots are NULL.
fn build_masked(n: usize, mask: Option<&[u32]>, mut at: impl FnMut(usize) -> Value) -> Column {
    let mut b = ColBuilder::new();
    b.reserve(n);
    match mask {
        None => {
            for j in 0..n {
                b.push_value(at(j));
            }
        }
        Some(sel) => {
            let mut sel = sel.iter().copied();
            let mut next = sel.next();
            for j in 0..n {
                if next == Some(j as u32) {
                    b.push_value(at(j));
                    next = sel.next();
                } else {
                    b.push_null();
                }
            }
        }
    }
    b.finish()
}

/// Mirror of [`crate::eval::logical_short_circuits`] on a borrowed cell.
#[inline]
fn cell_short_circuits(op: BinOp, c: &Cell) -> bool {
    matches!(
        (op, c),
        (BinOp::And, Cell::Bool(false)) | (BinOp::Or, Cell::Bool(true))
    )
}

/// Binary kernel on cells: allocation-free fast arms for the typed pairs
/// the workload runs hot (Int/Int, Str/Str), the shared scalar kernel for
/// everything else. Must agree with `eval_binary` on the equivalent owned
/// values — `Value::cmp` is `i64::cmp` on Int/Int and `str::cmp` on
/// Str/Str, so the fast arms reproduce it exactly.
#[inline]
fn binary_cells(op: BinOp, l: Cell, r: Cell) -> Value {
    match (l, r) {
        (Cell::Null, _) | (_, Cell::Null) => Value::Null,
        (Cell::Int(a), Cell::Int(b)) => match op {
            BinOp::Eq => Value::Bool(a == b),
            BinOp::Ne => Value::Bool(a != b),
            BinOp::Lt => Value::Bool(a < b),
            BinOp::Le => Value::Bool(a <= b),
            BinOp::Gt => Value::Bool(a > b),
            BinOp::Ge => Value::Bool(a >= b),
            _ => eval_binary(op, Value::Int(a), Value::Int(b)),
        },
        (Cell::Str(a), Cell::Str(b)) => match op {
            BinOp::Eq => Value::Bool(a == b),
            BinOp::Ne => Value::Bool(a != b),
            BinOp::Lt => Value::Bool(a < b),
            BinOp::Le => Value::Bool(a <= b),
            BinOp::Gt => Value::Bool(a > b),
            BinOp::Ge => Value::Bool(a >= b),
            // Arithmetic on strings is NULL either way; avoid the clones.
            _ => Value::Null,
        },
        (l, r) => eval_binary(op, l.to_value(), r.to_value()),
    }
}

/// Unary kernel on cells; shares `eval_unary` for the value-dependent arms.
#[inline]
fn unary_cell(op: UnaryOp, c: Cell) -> Value {
    match op {
        UnaryOp::IsNull => Value::Bool(c.is_null()),
        UnaryOp::IsNotNull => Value::Bool(!c.is_null()),
        // Not/Neg on strings and containers are NULL; skip the clone.
        _ => match c {
            Cell::Str(_) | Cell::Val(_) => Value::Null,
            c => eval_unary(op, c.to_value()),
        },
    }
}

/// Cast kernel on cells; borrows string payloads so `CAST(str AS INT)`
/// does not allocate, and routes every other shape through the shared
/// scalar [`cast`].
#[inline]
fn cast_cell(c: Cell, ty: DataType) -> Value {
    match (c, ty) {
        (Cell::Null, _) => Value::Null,
        (Cell::Str(s), DataType::Int) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Null),
        (Cell::Str(s), DataType::Float) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or(Value::Null),
        (c, ty) => cast(c.to_value(), ty),
    }
}

/// Evaluates `expr` over the morsel `[start, start + n)` of `batch`.
///
/// `mask` (morsel-local positions, sorted ascending) restricts evaluation
/// to a subset — used for the right side of AND/OR so short-circuited
/// positions are genuinely not evaluated, exactly like the scalar path.
/// The only possible error is a static out-of-range column reference,
/// raised with the scalar evaluator's exact message — and only when at
/// least one unmasked position exists, since the scalar path would not
/// have touched the expression otherwise.
pub(crate) fn eval_vec<'a>(
    expr: &Expr,
    batch: &'a ColBatch,
    start: usize,
    n: usize,
    mask: Option<&[u32]>,
) -> Result<VCol<'a>> {
    let masked_empty = n == 0 || mask.is_some_and(<[u32]>::is_empty);
    match expr {
        Expr::Column(i) => {
            if *i >= batch.arity() {
                if masked_empty {
                    // No position evaluates this expression; the scalar
                    // path would never have observed the bad reference.
                    return Ok(VCol::Const(Value::Null));
                }
                return Err(MisoError::Execution(format!(
                    "column ${i} out of range for row of arity {}",
                    batch.arity()
                )));
            }
            Ok(VCol::Ref(batch.col(*i), start))
        }
        Expr::Literal(v) => Ok(VCol::Const(v.clone())),
        Expr::Cast { input, ty } => {
            let v = eval_vec(input, batch, start, n, mask)?;
            // Identity casts pass the vector through untouched: CAST to
            // JSON is the identity, and casting a typed column to its own
            // type changes nothing (NULL slots stay NULL either way).
            let identity = *ty == DataType::Json
                || v.column().is_some_and(|c| {
                    matches!(
                        (c, *ty),
                        (Column::Int(..), DataType::Int)
                            | (Column::Float(..), DataType::Float)
                            | (Column::Bool(..), DataType::Bool)
                            | (Column::Str(..), DataType::Str)
                    )
                });
            if identity {
                return Ok(v);
            }
            Ok(VCol::Owned(build_masked(n, mask, |j| {
                cast_cell(v.cell(j), *ty)
            })))
        }
        Expr::Unary { op, input } => {
            let v = eval_vec(input, batch, start, n, mask)?;
            Ok(VCol::Owned(build_masked(n, mask, |j| {
                unary_cell(*op, v.cell(j))
            })))
        }
        Expr::Binary { op, left, right } if matches!(op, BinOp::And | BinOp::Or) => {
            let l = eval_vec(left, batch, start, n, mask)?;
            // Positions where the left side did not decide the result.
            let need: Vec<u32> = match mask {
                None => (0..n as u32)
                    .filter(|&j| !cell_short_circuits(*op, &l.cell(j as usize)))
                    .collect(),
                Some(sel) => sel
                    .iter()
                    .copied()
                    .filter(|&j| !cell_short_circuits(*op, &l.cell(j as usize)))
                    .collect(),
            };
            let r = eval_vec(right, batch, start, n, Some(&need))?;
            Ok(VCol::Owned(build_masked(n, mask, |j| {
                let lc = l.cell(j);
                if cell_short_circuits(*op, &lc) {
                    lc.to_value()
                } else {
                    logical_combine(*op, lc.to_value(), r.cell(j).to_value())
                }
            })))
        }
        Expr::Binary { op, left, right } => {
            let l = eval_vec(left, batch, start, n, mask)?;
            let r = eval_vec(right, batch, start, n, mask)?;
            Ok(VCol::Owned(build_masked(n, mask, |j| {
                binary_cells(*op, l.cell(j), r.cell(j))
            })))
        }
        Expr::FieldGet { .. } | Expr::Func { .. } => Err(MisoError::Execution(
            "internal: non-vectorizable expression reached eval_vec".into(),
        )),
    }
}

/// Batch-global indexes (within the morsel `[start, start + n)`) where the
/// predicate vector is `TRUE` — SQL WHERE semantics, so NULL and non-bool
/// results do not select.
pub(crate) fn select_true(pred: &VCol, start: usize, n: usize) -> Vec<u32> {
    // A constant FALSE/NULL predicate selects nothing without a scan.
    if let VCol::Const(v) = pred {
        if !v.is_true() {
            return Vec::new();
        }
    }
    (0..n)
        .filter(|&j| matches!(pred.cell(j), Cell::Bool(true)))
        .map(|j| (start + j) as u32)
        .collect()
}

/// One output column of a fused scan+project: a field to pull out of each
/// log line, with an optional cast to apply.
pub(crate) struct FusedField<'a> {
    pub key: &'a str,
    pub ty: Option<DataType>,
}

/// Recognizes a projection whose every output is
/// `CAST(input->'key' AS ty)` or bare `input->'key'` over the scanned
/// line — the SerDe shape every log query in the workload starts with.
/// Such a projection can be fused into the scan and parsed straight into
/// typed column vectors, skipping the intermediate JSON object rows.
pub(crate) fn fused_fields<'a>(
    exprs: impl IntoIterator<Item = &'a Expr>,
) -> Option<Vec<FusedField<'a>>> {
    exprs
        .into_iter()
        .map(|e| {
            let (inner, ty) = match e {
                Expr::Cast { input, ty } => (input.as_ref(), Some(*ty)),
                other => (other, None),
            };
            match inner {
                Expr::FieldGet { input, key } if matches!(input.as_ref(), Expr::Column(0)) => {
                    Some(FusedField { key, ty })
                }
                _ => None,
            }
        })
        .collect()
}

/// Pushes `field cast to ty` for one parsed token. Fast arms avoid
/// `Value` round-trips for the common shapes; everything else goes
/// through the shared scalar [`cast`] for exact semantics.
fn push_cast(b: &mut ColBuilder, tok: FlatVal<'_>, ty: Option<DataType>) {
    let Some(ty) = ty else {
        match tok {
            FlatVal::Null => b.push_null(),
            FlatVal::Bool(x) => b.push_bool(x),
            FlatVal::Int(i) => b.push_i64(i),
            FlatVal::Float(f) => b.push_f64(f),
            FlatVal::Str(s) => b.push_str(s.to_string()),
        }
        return;
    };
    match (tok, ty) {
        (FlatVal::Null, _) => b.push_null(),
        (FlatVal::Int(i), DataType::Int) => b.push_i64(i),
        (FlatVal::Int(i), DataType::Float) => b.push_f64(i as f64),
        (FlatVal::Float(f), DataType::Float) => b.push_f64(f),
        (FlatVal::Str(s), DataType::Int) => match s.trim().parse::<i64>() {
            Ok(i) => b.push_i64(i),
            Err(_) => b.push_null(),
        },
        (FlatVal::Str(s), DataType::Float) => match s.trim().parse::<f64>() {
            Ok(f) => b.push_f64(f),
            Err(_) => b.push_null(),
        },
        (FlatVal::Str(s), DataType::Str) => b.push_str(s.to_string()),
        (tok, ty) => b.push_value(cast(tok.to_value(), ty)),
    }
}

/// Parses a chunk of log lines straight into one column builder per fused
/// field. Malformed lines are skipped and counted, exactly like the row
/// scan. The zero-copy flat parser handles the (overwhelmingly common)
/// flat-object lines; anything it declines falls back to the strict
/// parser so nested or escaped lines behave identically to the row path.
/// Duplicate keys resolve to the last occurrence, matching
/// `Value::object`'s dedup.
pub(crate) fn parse_lines_fused(lines: &[String], fields: &[FusedField<'_>]) -> (ColBatch, usize) {
    let mut builders: Vec<ColBuilder> = (0..fields.len()).map(|_| ColBuilder::new()).collect();
    for b in &mut builders {
        b.reserve(lines.len());
    }
    let mut skipped = 0usize;
    let mut parsed = 0usize;
    for line in lines {
        if let Some(flat) = parse_flat_line(line) {
            for (f, b) in fields.iter().zip(&mut builders) {
                // Last occurrence wins, as in Value::object's dedup.
                let tok = flat
                    .iter()
                    .rev()
                    .find(|(k, _)| *k == f.key)
                    .map(|(_, v)| *v)
                    .unwrap_or(FlatVal::Null);
                push_cast(b, tok, f.ty);
            }
            parsed += 1;
        } else {
            match parse_json(line) {
                Ok(v) => {
                    for (f, b) in fields.iter().zip(&mut builders) {
                        let field = v.get_field(f.key).cloned().unwrap_or(Value::Null);
                        match f.ty {
                            Some(ty) => b.push_value(cast(field, ty)),
                            None => b.push_value(field),
                        }
                    }
                    parsed += 1;
                }
                Err(_) => skipped += 1,
            }
        }
    }
    (
        ColBatch::from_columns(
            builders.into_iter().map(ColBuilder::finish).collect(),
            parsed,
        ),
        skipped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use miso_data::Row;

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn batch() -> ColBatch {
        let rows: Vec<Row> = vec![
            Row::new(vec![Value::Int(1), Value::str("a"), Value::Float(0.5)]),
            Row::new(vec![Value::Null, Value::str("b"), Value::Int(2)]),
            Row::new(vec![Value::Int(3), Value::Null, Value::Float(f64::NAN)]),
            Row::new(vec![Value::Int(-4), Value::str("a"), Value::Bool(true)]),
        ]
        .into_iter()
        .collect();
        ColBatch::from_rows(&rows).unwrap()
    }

    /// Evaluates `e` both ways over every row and asserts identical values
    /// (or identical error messages).
    fn assert_parity(e: &Expr) {
        let b = batch();
        let rows = b.to_rows();
        let vec_result = eval_vec(e, &b, 0, b.len(), None);
        for (i, row) in rows.iter().enumerate() {
            match (&vec_result, eval(e, row)) {
                (Ok(v), Ok(want)) => {
                    assert_eq!(v.cell(i).to_value(), want, "row {i} of {e:?}");
                }
                (Err(ve), Err(se)) => {
                    assert_eq!(ve.to_string(), se.to_string(), "error parity for {e:?}");
                    return;
                }
                (v, s) => panic!("parity split at row {i} of {e:?}: vec={v:?} serial={s:?}"),
            }
        }
    }

    #[test]
    fn scalar_parity_matrix() {
        use miso_plan::Expr as E;
        let exprs = vec![
            E::col(0),
            E::lit(42i64),
            bin(BinOp::Lt, E::col(0), E::lit(2i64)),
            E::col(0).eq(E::col(2)),
            E::col(1).eq(E::lit("a")),
            bin(BinOp::Lt, E::col(1), E::lit("b")),
            E::Binary {
                op: BinOp::Add,
                left: Box::new(E::col(0)),
                right: Box::new(E::col(2)),
            },
            E::Binary {
                op: BinOp::Div,
                left: Box::new(E::col(0)),
                right: Box::new(E::lit(0i64)),
            },
            E::Binary {
                op: BinOp::Mul,
                left: Box::new(E::lit(i64::MAX)),
                right: Box::new(E::col(0)),
            },
            E::Cast {
                input: Box::new(E::col(1)),
                ty: DataType::Int,
            },
            E::Cast {
                input: Box::new(E::col(0)),
                ty: DataType::Str,
            },
            E::Cast {
                input: Box::new(E::col(2)),
                ty: DataType::Int,
            },
            E::Unary {
                op: UnaryOp::IsNull,
                input: Box::new(E::col(0)),
            },
            E::Unary {
                op: UnaryOp::Neg,
                input: Box::new(E::col(0)),
            },
            E::Unary {
                op: UnaryOp::Not,
                input: Box::new(E::col(2)),
            },
            bin(BinOp::Lt, E::col(0), E::lit(3i64)).and(E::col(1).eq(E::lit("a"))),
            bin(
                BinOp::Or,
                bin(BinOp::Lt, E::col(0), E::lit(3i64)),
                E::col(1).eq(E::lit("a")),
            ),
            // Cross-type comparison: NULL for orderings, false for Eq.
            bin(BinOp::Lt, E::col(1), E::col(0)),
            E::col(1).eq(E::col(0)),
            // Out-of-range column must reproduce the scalar error.
            bin(BinOp::Lt, E::col(9), E::lit(1i64)),
        ];
        for e in &exprs {
            assert_parity(e);
        }
    }

    /// `false AND $bad` never evaluates `$bad`, even when every row
    /// short-circuits — same as the scalar evaluator.
    #[test]
    fn short_circuit_skips_bad_column_when_all_rows_decide() {
        use miso_plan::Expr as E;
        let always_false = E::lit(false).and(E::col(99));
        let b = batch();
        let v = eval_vec(&always_false, &b, 0, b.len(), None).expect("no row evaluates $99");
        for j in 0..b.len() {
            assert_eq!(v.cell(j).to_value(), Value::Bool(false));
        }
        // But when at least one row needs the right side, the error fires.
        let sometimes = bin(BinOp::Lt, E::col(0), E::lit(2i64)).and(E::col(99));
        assert!(eval_vec(&sometimes, &b, 0, b.len(), None).is_err());
    }

    #[test]
    fn selection_edges() {
        use miso_plan::Expr as E;
        let b = batch();
        // All pass.
        let v = eval_vec(&E::lit(true), &b, 0, b.len(), None).unwrap();
        assert_eq!(select_true(&v, 0, b.len()), vec![0, 1, 2, 3]);
        // None pass.
        let v = eval_vec(&E::lit(false), &b, 0, b.len(), None).unwrap();
        assert!(select_true(&v, 0, b.len()).is_empty());
        // NULL comparisons do not select (row 1 has NULL in column 0).
        let v = eval_vec(
            &bin(BinOp::Lt, E::col(0), E::lit(10i64)),
            &b,
            0,
            b.len(),
            None,
        )
        .unwrap();
        assert_eq!(select_true(&v, 0, b.len()), vec![0, 2, 3]);
        // Morsel offset shifts the selection to batch-global indexes.
        let v = eval_vec(&bin(BinOp::Lt, E::col(0), E::lit(10i64)), &b, 2, 2, None).unwrap();
        assert_eq!(select_true(&v, 2, 2), vec![2, 3]);
    }

    #[test]
    fn fused_fields_recognizes_serde_projections() {
        use miso_plan::Expr as E;
        let exprs = vec![
            E::Cast {
                input: Box::new(E::col(0).get("uid")),
                ty: DataType::Int,
            },
            E::col(0).get("text"),
        ];
        let fields = fused_fields(&exprs).expect("serde shape");
        assert_eq!(fields[0].key, "uid");
        assert_eq!(fields[0].ty, Some(DataType::Int));
        assert_eq!(fields[1].key, "text");
        assert_eq!(fields[1].ty, None);
        // Non-serde shapes are declined.
        assert!(fused_fields(&[E::col(1).get("uid")]).is_none());
        assert!(fused_fields(&[E::col(0)]).is_none());
        assert!(fused_fields(&[E::Func {
            name: "lower".into(),
            args: vec![E::col(0).get("text")],
        }])
        .is_none());
    }

    /// The fused parser agrees with parse-then-project row execution on
    /// well-formed, malformed, nested, duplicate-key and missing-field
    /// lines.
    #[test]
    fn fused_parse_matches_row_path() {
        let lines: Vec<String> = vec![
            r#"{"uid": 7, "text": "hi", "score": 1.5}"#.into(),
            r#"{"uid": "12", "text": "pad"}"#.into(),
            r#"{"text": "no uid"}"#.into(),
            "not json".into(),
            r#"{"uid": 1, "uid": 2, "text": "dup"}"#.into(),
            r#"{"uid": 3, "nest": {"a": 1}, "text": "nested"}"#.into(),
            r#"{"uid": null, "text": "explicit null"}"#.into(),
        ]
        .into_iter()
        .collect();
        let fields = vec![
            FusedField {
                key: "uid",
                ty: Some(DataType::Int),
            },
            FusedField {
                key: "text",
                ty: None,
            },
        ];
        let (batch, skipped) = parse_lines_fused(&lines, &fields);
        assert_eq!(skipped, 1);
        assert_eq!(batch.len(), 6);
        // Row-path oracle: parse, project field, cast.
        let mut want: Vec<Row> = Vec::new();
        for line in &lines {
            if let Ok(v) = parse_json(line) {
                let uid = v.get_field("uid").cloned().unwrap_or(Value::Null);
                let text = v.get_field("text").cloned().unwrap_or(Value::Null);
                want.push(Row::new(vec![cast(uid, DataType::Int), text]));
            }
        }
        assert_eq!(batch.to_rows(), want);
    }
}
