//! User-defined functions.
//!
//! The paper's queries "contain relational operators as well as UDFs",
//! arbitrary user code that only HV can execute — which is exactly why UDF
//! nodes pin plan subtrees to HV during split selection. Here a UDF is a
//! registered Rust closure mapping one input row to zero-or-more output rows
//! (covering filters, transformers, and small flat-map extractors), plus its
//! declared output schema.

use miso_common::{MisoError, Result};
use miso_data::{Row, Schema};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The UDF implementation signature: row in, zero-or-more rows out.
pub type UdfFn = Arc<dyn Fn(&Row) -> Result<Vec<Row>> + Send + Sync>;

/// A registered UDF.
#[derive(Clone)]
pub struct Udf {
    /// Registered name (plans reference UDFs by this name).
    pub name: String,
    /// Declared output schema.
    pub output: Schema,
    func: UdfFn,
}

impl Udf {
    /// Registers a new UDF definition.
    pub fn new(name: impl Into<String>, output: Schema, func: UdfFn) -> Self {
        Udf {
            name: name.into(),
            output,
            func,
        }
    }

    /// Applies the UDF to one row.
    pub fn apply(&self, row: &Row) -> Result<Vec<Row>> {
        let out = (self.func)(row)?;
        for r in &out {
            if r.arity() != self.output.arity() {
                return Err(MisoError::Execution(format!(
                    "UDF `{}` produced a row of arity {} but declared {}",
                    self.name,
                    r.arity(),
                    self.output.arity()
                )));
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for Udf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Udf")
            .field("name", &self.name)
            .field("output", &self.output)
            .finish_non_exhaustive()
    }
}

/// Name → UDF lookup shared by the engine and the language front-end.
#[derive(Debug, Clone, Default)]
pub struct UdfRegistry {
    udfs: HashMap<String, Udf>,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a UDF; replaces any previous definition of the same name.
    pub fn register(&mut self, udf: Udf) {
        self.udfs.insert(udf.name.clone(), udf);
    }

    /// Looks up a UDF by name.
    pub fn get(&self, name: &str) -> Option<&Udf> {
        self.udfs.get(name)
    }

    /// Looks up a UDF, erroring with execution context when missing.
    pub fn require(&self, name: &str) -> Result<&Udf> {
        self.get(name)
            .ok_or_else(|| MisoError::Execution(format!("unknown UDF `{name}`")))
    }

    /// Registered names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.udfs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::{DataType, Field, Value};

    fn doubling_udf() -> Udf {
        Udf::new(
            "double",
            Schema::new(vec![Field::new("x2", DataType::Int)]),
            Arc::new(|row| {
                let v = row.get(0).as_i64().unwrap_or(0);
                Ok(vec![Row::new(vec![Value::Int(v * 2)])])
            }),
        )
    }

    #[test]
    fn apply_transforms_rows() {
        let udf = doubling_udf();
        let out = udf.apply(&Row::new(vec![Value::Int(21)])).unwrap();
        assert_eq!(out, vec![Row::new(vec![Value::Int(42)])]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let bad = Udf::new(
            "bad",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
            Arc::new(|_| Ok(vec![Row::new(vec![Value::Int(1)])])),
        );
        assert!(bad.apply(&Row::new(vec![])).is_err());
    }

    #[test]
    fn udf_can_filter_and_fan_out() {
        let fanout = Udf::new(
            "fanout",
            Schema::new(vec![Field::new("x", DataType::Int)]),
            Arc::new(|row| {
                let v = row.get(0).as_i64().unwrap_or(0);
                if v < 0 {
                    Ok(vec![]) // filter
                } else {
                    Ok((0..v).map(|i| Row::new(vec![Value::Int(i)])).collect())
                }
            }),
        );
        assert!(fanout
            .apply(&Row::new(vec![Value::Int(-1)]))
            .unwrap()
            .is_empty());
        assert_eq!(
            fanout.apply(&Row::new(vec![Value::Int(3)])).unwrap().len(),
            3
        );
    }

    #[test]
    fn registry_register_and_require() {
        let mut reg = UdfRegistry::new();
        assert!(reg.require("double").is_err());
        reg.register(doubling_udf());
        assert!(reg.require("double").is_ok());
        assert_eq!(reg.names(), vec!["double"]);
        // re-registration replaces
        reg.register(doubling_udf());
        assert_eq!(reg.names().len(), 1);
    }
}
