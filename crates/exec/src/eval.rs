//! Scalar expression evaluation.
//!
//! Semantics follow Hive's pragmatics, which the workload depends on:
//!
//! * **NULL propagation** — any NULL operand of an arithmetic/comparison
//!   operator yields NULL; a NULL predicate result is *not true*;
//! * **lenient casts** — `CAST` failures yield NULL instead of erroring (raw
//!   logs are messy; queries must survive odd records);
//! * **JSON field access** — missing fields yield NULL, which composes with
//!   the above so queries silently drop malformed records.

use miso_common::{MisoError, Result};
use miso_data::{DataType, Row, Value};
use miso_plan::{BinOp, Expr, UnaryOp};

/// Evaluates `expr` against `row`.
pub fn eval(expr: &Expr, row: &Row) -> Result<Value> {
    match expr {
        Expr::Column(i) => {
            if *i >= row.arity() {
                return Err(MisoError::Execution(format!(
                    "column ${i} out of range for row of arity {}",
                    row.arity()
                )));
            }
            Ok(row.get(*i).clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::FieldGet { input, key } => {
            let v = eval(input, row)?;
            Ok(v.get_field(key).cloned().unwrap_or(Value::Null))
        }
        Expr::Cast { input, ty } => Ok(cast(eval(input, row)?, *ty)),
        Expr::Unary { op, input } => Ok(eval_unary(*op, eval(input, row)?)),
        Expr::Binary { op, left, right } => {
            // Short-circuit logical operators before evaluating both sides.
            if matches!(op, BinOp::And | BinOp::Or) {
                return eval_logical(*op, left, right, row);
            }
            let l = eval(left, row)?;
            let r = eval(right, row)?;
            Ok(eval_binary(*op, l, r))
        }
        Expr::Func { name, args } => {
            let vals: Vec<Value> = args.iter().map(|a| eval(a, row)).collect::<Result<_>>()?;
            eval_func(name, &vals)
        }
    }
}

/// Evaluates a predicate; NULL results count as false (SQL WHERE semantics).
pub fn eval_predicate(expr: &Expr, row: &Row) -> Result<bool> {
    Ok(eval(expr, row)?.is_true())
}

/// The unary-operator body, shared verbatim with the vectorized evaluator.
pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> Value {
    match op {
        UnaryOp::IsNull => Value::Bool(v.is_null()),
        UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
        UnaryOp::Not => match v {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            _ => Value::Null,
        },
        UnaryOp::Neg => match v {
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            _ => Value::Null,
        },
    }
}

fn eval_logical(op: BinOp, left: &Expr, right: &Expr, row: &Row) -> Result<Value> {
    let l = eval(left, row)?;
    if logical_short_circuits(op, &l) {
        return Ok(l);
    }
    let r = eval(right, row)?;
    Ok(logical_combine(op, l, r))
}

/// `false AND _` / `true OR _` decide without the right side — the left
/// value *is* the result.
pub(crate) fn logical_short_circuits(op: BinOp, l: &Value) -> bool {
    matches!(
        (op, l),
        (BinOp::And, Value::Bool(false)) | (BinOp::Or, Value::Bool(true))
    )
}

/// The non-short-circuit half of AND/OR, shared verbatim with the
/// vectorized evaluator.
pub(crate) fn logical_combine(op: BinOp, l: Value, r: Value) -> Value {
    match (op, l, r) {
        (BinOp::And, Value::Bool(a), Value::Bool(b)) => Value::Bool(a && b),
        (BinOp::Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(a || b),
        // NULL-involving logical ops: approximate three-valued logic.
        (BinOp::And, Value::Null, Value::Bool(false))
        | (BinOp::And, Value::Bool(false), Value::Null) => Value::Bool(false),
        (BinOp::Or, Value::Null, Value::Bool(true))
        | (BinOp::Or, Value::Bool(true), Value::Null) => Value::Bool(true),
        _ => Value::Null,
    }
}

pub(crate) fn eval_binary(op: BinOp, l: Value, r: Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    match op {
        BinOp::Eq => Value::Bool(l == r),
        BinOp::Ne => Value::Bool(l != r),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            // Comparisons across incompatible types yield NULL, not a
            // type-rank comparison — `'abc' < 5` is not meaningfully true.
            if !comparable(&l, &r) {
                return Value::Null;
            }
            let ord = l.cmp(&r);
            Value::Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            })
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arithmetic(op, l, r),
        BinOp::And | BinOp::Or => unreachable!("handled by eval_logical"),
    }
}

fn comparable(l: &Value, r: &Value) -> bool {
    use Value::*;
    matches!(
        (l, r),
        (Int(_) | Float(_), Int(_) | Float(_))
            | (Str(_), Str(_))
            | (Bool(_), Bool(_))
            | (Array(_), Array(_))
    )
}

fn arithmetic(op: BinOp, l: Value, r: Value) -> Value {
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinOp::Add => a.checked_add(*b).map(Value::Int).unwrap_or(Value::Null),
            BinOp::Sub => a.checked_sub(*b).map(Value::Int).unwrap_or(Value::Null),
            BinOp::Mul => a.checked_mul(*b).map(Value::Int).unwrap_or(Value::Null),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.rem_euclid(*b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Value::Null;
            };
            match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a.rem_euclid(b))
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Hive-style lenient cast: failures produce NULL.
pub fn cast(v: Value, ty: DataType) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    match ty {
        DataType::Json => v,
        DataType::Bool => match v {
            Value::Bool(b) => Value::Bool(b),
            Value::Int(i) => Value::Bool(i != 0),
            Value::Str(s) => match s.as_str() {
                "true" | "TRUE" => Value::Bool(true),
                "false" | "FALSE" => Value::Bool(false),
                _ => Value::Null,
            },
            _ => Value::Null,
        },
        DataType::Int => match v {
            Value::Int(i) => Value::Int(i),
            Value::Float(f) if f.is_finite() => Value::Int(f.trunc() as i64),
            Value::Bool(b) => Value::Int(b as i64),
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            _ => Value::Null,
        },
        DataType::Float => match v {
            Value::Int(i) => Value::Float(i as f64),
            Value::Float(f) => Value::Float(f),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or(Value::Null),
            _ => Value::Null,
        },
        DataType::Str => match v {
            Value::Str(s) => Value::Str(s),
            other => Value::Str(other.to_string()),
        },
    }
}

fn eval_func(name: &str, args: &[Value]) -> Result<Value> {
    let arity_err = || {
        Err(MisoError::Execution(format!(
            "builtin `{name}` called with {} arguments",
            args.len()
        )))
    };
    match name {
        "lower" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_lowercase())),
            [_] => Ok(Value::Null),
            _ => arity_err(),
        },
        "upper" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_uppercase())),
            [_] => Ok(Value::Null),
            _ => arity_err(),
        },
        "length" => match args {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Array(a)] => Ok(Value::Int(a.len() as i64)),
            [_] => Ok(Value::Null),
            _ => arity_err(),
        },
        "concat" => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Null => return Ok(Value::Null),
                    other => out.push_str(&other.to_string()),
                }
            }
            Ok(Value::Str(out))
        }
        "substr" => match args {
            [Value::Str(s), Value::Int(start), Value::Int(len)] => {
                let start = (*start).max(0) as usize;
                let len = (*len).max(0) as usize;
                Ok(Value::Str(s.chars().skip(start).take(len).collect()))
            }
            [_, _, _] => Ok(Value::Null),
            _ => arity_err(),
        },
        "contains" => match args {
            [Value::Str(hay), Value::Str(needle)] => Ok(Value::Bool(hay.contains(needle.as_str()))),
            [_, _] => Ok(Value::Null),
            _ => arity_err(),
        },
        "array_contains" => match args {
            [Value::Array(items), needle] => Ok(Value::Bool(items.contains(needle))),
            [_, _] => Ok(Value::Null),
            _ => arity_err(),
        },
        "abs" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            [_] => Ok(Value::Null),
            _ => arity_err(),
        },
        "round" => match args {
            [Value::Float(f)] => Ok(Value::Int(f.round() as i64)),
            [Value::Int(i)] => Ok(Value::Int(*i)),
            [_] => Ok(Value::Null),
            _ => arity_err(),
        },
        "sqrt" => match args {
            [v] => Ok(v
                .as_f64()
                .map(|f| {
                    if f < 0.0 {
                        Value::Null
                    } else {
                        Value::Float(f.sqrt())
                    }
                })
                .unwrap_or(Value::Null)),
            _ => arity_err(),
        },
        "ln" => match args {
            [v] => Ok(v
                .as_f64()
                .map(|f| {
                    if f <= 0.0 {
                        Value::Null
                    } else {
                        Value::Float(f.ln())
                    }
                })
                .unwrap_or(Value::Null)),
            _ => arity_err(),
        },
        // Time extraction from epoch-seconds timestamps (synthetic 90-day span).
        "day" => match args {
            [v] => Ok(v
                .as_i64()
                .map(|ts| Value::Int(ts.div_euclid(86_400)))
                .unwrap_or(Value::Null)),
            _ => arity_err(),
        },
        "hour" => match args {
            [v] => Ok(v
                .as_i64()
                .map(|ts| Value::Int(ts.rem_euclid(86_400) / 3_600))
                .unwrap_or(Value::Null)),
            _ => arity_err(),
        },
        _ => Err(MisoError::Execution(format!("unknown builtin `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![
            Value::Int(10),
            Value::str("Hello World"),
            Value::object(vec![
                ("uid".into(), Value::Int(7)),
                ("tags".into(), Value::Array(vec![Value::str("pizza")])),
            ]),
            Value::Null,
        ])
    }

    fn ev(e: &Expr) -> Value {
        eval(e, &row()).unwrap()
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(ev(&Expr::col(0)), Value::Int(10));
        assert_eq!(ev(&Expr::lit("x")), Value::str("x"));
        assert!(eval(&Expr::col(9), &row()).is_err());
    }

    #[test]
    fn field_get_missing_is_null() {
        assert_eq!(ev(&Expr::col(2).get("uid")), Value::Int(7));
        assert_eq!(ev(&Expr::col(2).get("absent")), Value::Null);
        assert_eq!(ev(&Expr::col(0).get("x")), Value::Null, "non-object");
    }

    #[test]
    fn lenient_casts() {
        assert_eq!(cast(Value::str("42"), DataType::Int), Value::Int(42));
        assert_eq!(cast(Value::str(" 42 "), DataType::Int), Value::Int(42));
        assert_eq!(cast(Value::str("nope"), DataType::Int), Value::Null);
        assert_eq!(cast(Value::Float(3.9), DataType::Int), Value::Int(3));
        assert_eq!(cast(Value::Int(1), DataType::Bool), Value::Bool(true));
        assert_eq!(cast(Value::Int(5), DataType::Str), Value::str("5"));
        assert_eq!(cast(Value::Null, DataType::Int), Value::Null);
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        let plus_null = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::col(3)),
        };
        assert_eq!(ev(&plus_null), Value::Null);
        let cmp_null = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::col(3)),
            right: Box::new(Expr::lit(1i64)),
        };
        assert_eq!(ev(&cmp_null), Value::Null);
        assert!(!eval_predicate(&cmp_null, &row()).unwrap());
    }

    #[test]
    fn arithmetic_matrix() {
        let bin = |op, l: Expr, r: Expr| Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        };
        assert_eq!(
            ev(&bin(BinOp::Add, Expr::lit(2i64), Expr::lit(3i64))),
            Value::Int(5)
        );
        assert_eq!(
            ev(&bin(BinOp::Div, Expr::lit(7i64), Expr::lit(2i64))),
            Value::Float(3.5),
            "integer division is float, Hive-style"
        );
        assert_eq!(
            ev(&bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64))),
            Value::Null
        );
        assert_eq!(
            ev(&bin(BinOp::Mod, Expr::lit(-7i64), Expr::lit(3i64))),
            Value::Int(2)
        );
        assert_eq!(
            ev(&bin(BinOp::Mul, Expr::lit(2.5f64), Expr::lit(4i64))),
            Value::Float(10.0)
        );
        // i64 overflow yields NULL, not a panic.
        assert_eq!(
            ev(&bin(BinOp::Add, Expr::lit(i64::MAX), Expr::lit(1i64))),
            Value::Null
        );
    }

    #[test]
    fn cross_type_comparison_is_null() {
        let cmp = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::lit("abc")),
            right: Box::new(Expr::lit(5i64)),
        };
        assert_eq!(ev(&cmp), Value::Null);
        // but equality across types is false, not NULL
        let eq = Expr::lit("abc").eq(Expr::lit(5i64));
        assert_eq!(ev(&eq), Value::Bool(false));
    }

    #[test]
    fn short_circuit_logical() {
        // col0=10, so (false AND <error>) must not evaluate the error side.
        let err_side = Expr::col(99);
        let pred = Expr::col(0).eq(Expr::lit(999i64)).and(err_side);
        assert_eq!(ev(&pred), Value::Bool(false));
        let or = Expr::Binary {
            op: BinOp::Or,
            left: Box::new(Expr::col(0).eq(Expr::lit(10i64))),
            right: Box::new(Expr::col(99)),
        };
        assert_eq!(ev(&or), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic_approximation() {
        let null = Expr::col(3).eq(Expr::lit(1i64)); // NULL
        let f = Expr::lit(false);
        let and = Expr::Binary {
            op: BinOp::And,
            left: Box::new(null.clone()),
            right: Box::new(f),
        };
        assert_eq!(ev(&and), Value::Bool(false));
        let t = Expr::lit(true);
        let or = Expr::Binary {
            op: BinOp::Or,
            left: Box::new(null.clone()),
            right: Box::new(t),
        };
        assert_eq!(ev(&or), Value::Bool(true));
        let and_t = Expr::Binary {
            op: BinOp::And,
            left: Box::new(null),
            right: Box::new(Expr::lit(true)),
        };
        assert_eq!(ev(&and_t), Value::Null);
    }

    #[test]
    fn builtins() {
        let f = |name: &str, args: Vec<Expr>| {
            ev(&Expr::Func {
                name: name.into(),
                args,
            })
        };
        assert_eq!(f("lower", vec![Expr::col(1)]), Value::str("hello world"));
        assert_eq!(f("upper", vec![Expr::lit("ab")]), Value::str("AB"));
        assert_eq!(f("length", vec![Expr::col(1)]), Value::Int(11));
        assert_eq!(
            f("contains", vec![Expr::col(1), Expr::lit("World")]),
            Value::Bool(true)
        );
        assert_eq!(
            f(
                "array_contains",
                vec![Expr::col(2).get("tags"), Expr::lit("pizza")]
            ),
            Value::Bool(true)
        );
        assert_eq!(
            f(
                "array_contains",
                vec![Expr::col(2).get("tags"), Expr::lit("sushi")]
            ),
            Value::Bool(false)
        );
        assert_eq!(
            f("concat", vec![Expr::lit("a"), Expr::lit(1i64)]),
            Value::str("a1")
        );
        assert_eq!(
            f(
                "substr",
                vec![Expr::col(1), Expr::lit(0i64), Expr::lit(5i64)]
            ),
            Value::str("Hello")
        );
        assert_eq!(f("abs", vec![Expr::lit(-3i64)]), Value::Int(3));
        assert_eq!(f("round", vec![Expr::lit(2.6f64)]), Value::Int(3));
        assert_eq!(f("sqrt", vec![Expr::lit(-1.0f64)]), Value::Null);
        assert_eq!(f("day", vec![Expr::lit(90_000i64)]), Value::Int(1));
        assert_eq!(f("hour", vec![Expr::lit(7_200i64)]), Value::Int(2));
    }

    #[test]
    fn unknown_builtin_errors() {
        let e = Expr::Func {
            name: "nope".into(),
            args: vec![],
        };
        assert!(eval(&e, &row()).is_err());
    }

    #[test]
    fn is_null_tests() {
        let isnull = Expr::Unary {
            op: UnaryOp::IsNull,
            input: Box::new(Expr::col(3)),
        };
        assert_eq!(ev(&isnull), Value::Bool(true));
        let isnotnull = Expr::Unary {
            op: UnaryOp::IsNotNull,
            input: Box::new(Expr::col(0)),
        };
        assert_eq!(ev(&isnotnull), Value::Bool(true));
    }
}
