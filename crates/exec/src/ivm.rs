//! Incremental aggregate maintenance state.
//!
//! The engine's morsel-parallel aggregation ends in one global
//! [`GroupTable`](crate::engine): groups in first-seen input order, one
//! accumulator per aggregate per group. [`AggState`] keeps that table
//! *alive* between refreshes so an append-only delta folds into it in
//! O(|delta|), instead of re-aggregating the full input.
//!
//! The fold is **bit-identical** to a full rebuild for the accumulator
//! variants it accepts:
//!
//! * `COUNT` / `COUNT DISTINCT` — integer adds / set union, associative;
//! * integer `SUM` — `i64` addition, order-independent;
//! * `MIN` / `MAX` — strict comparisons keep the first-seen value on ties,
//!   and appends only ever add later-seen values;
//! * group order — rebuilds emit groups in first-seen input order, which is
//!   prefix-stable under appends: existing groups keep their row index, new
//!   groups append in delta first-seen order.
//!
//! Float accumulation (`AVG`, float `SUM`) is rejected at build time and
//! re-checked per delta: IEEE 754 addition is non-associative, and the
//! rebuild's morsel grouping (fixed 4096-row boundaries over the *grown*
//! input) differs from a row-order delta fold, so the low bits could
//! diverge. Those views fall back to full recomputation.
//!
//! The int-vs-float `SUM` decision itself is replayed exactly: the engine
//! scans the input in row order and decides from the first `Int`/`Float`
//! value (`float_sum_flags`). [`AggState`] carries a per-aggregate
//! tri-state — `Int` once some base value decided it, `Undecided` while no
//! numeric value has appeared — and resolves `Undecided` against each
//! delta the way the engine would against the grown input.

use crate::engine::{aggregate_morsel, classify_aggs, group_hash, Acc, AggSrc, GroupTable};
use crate::eval::eval;
use miso_common::Result;
use miso_data::{Row, Value};
use miso_plan::expr::{AggExpr, AggFunc, Expr};
use std::collections::BTreeSet;

/// Per-aggregate `SUM` typing state (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SumFlag {
    /// Not a `SUM` (or `COUNT(*)`-style with no input): typing never moves.
    NotSum,
    /// Some base-input value decided integer accumulation; appends cannot
    /// change the engine's first-value decision.
    Int,
    /// No numeric input value seen yet — the next delta may still decide.
    Undecided,
}

/// The changed rows a delta fold produced: existing groups that were
/// updated (by slot index == view row index) and brand-new groups, in
/// first-seen delta order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggApplied {
    /// `(slot, new aggregate output row)` for every touched existing group,
    /// in ascending slot order.
    pub updated: Vec<(usize, Row)>,
    /// Output rows of groups first seen in this delta, in insertion order.
    pub appended: Vec<Row>,
}

/// Outcome of folding one delta into an [`AggState`].
pub enum FoldOutcome {
    /// The fold applied; the changed rows are enclosed.
    Applied(AggApplied),
    /// A `SUM` resolved to float accumulation mid-stream — the caller must
    /// fall back to a full recomputation (order-sensitive arithmetic).
    FloatSum,
}

/// Live aggregation state for one maintained view: the serial-equivalent
/// group table plus the per-aggregate `SUM` typing flags.
pub struct AggState {
    table: GroupTable,
    flags: Vec<SumFlag>,
}

impl AggState {
    /// Replays `input` (the aggregate's full input, in row order) into
    /// fresh state. Returns `None` when the aggregate is not incrementally
    /// maintainable — `AVG` present, or a `SUM` that resolves to float
    /// accumulation — in which case the caller keeps no state.
    pub fn build(input: &[Row], group_by: &[usize], aggs: &[AggExpr]) -> Result<Option<AggState>> {
        let mut flags = Vec::with_capacity(aggs.len());
        for agg in aggs {
            if agg.func == AggFunc::Avg {
                return Ok(None);
            }
            if agg.func != AggFunc::Sum {
                flags.push(SumFlag::NotSum);
                continue;
            }
            let Some(e) = &agg.input else {
                flags.push(SumFlag::NotSum);
                continue;
            };
            match first_numeric(input, e) {
                Some(true) => return Ok(None),
                Some(false) => flags.push(SumFlag::Int),
                None => flags.push(SumFlag::Undecided),
            }
        }
        // A single-chunk "morsel" IS the serial replay; for the accepted
        // accumulator variants it equals the engine's morsel-merged table.
        let float_sum = vec![false; aggs.len()];
        let srcs = classify_aggs(aggs);
        let mut table = aggregate_morsel(input, group_by, aggs, &srcs, &float_sum)?;
        if group_by.is_empty() && table.slots.is_empty() {
            // A global aggregate over empty input still has one output row;
            // materialize the implicit group so deltas update slot 0.
            let hash = group_hash(&Row::new(vec![]), &[]);
            let accs: Vec<Acc> = aggs.iter().map(|a| Acc::new(a.func, false)).collect();
            table.insert(hash, Vec::new(), accs);
        }
        Ok(Some(AggState { table, flags }))
    }

    /// Number of group slots (== maintained view rows before projection).
    pub fn groups(&self) -> usize {
        self.table.slots.len()
    }

    /// Rough retained bytes, for memory accounting.
    pub fn approx_bytes(&self) -> u64 {
        let keys: u64 = self
            .table
            .slots
            .iter()
            .map(|(_, key, accs)| 32 + 24 * key.len() as u64 + 48 * accs.len() as u64)
            .sum();
        keys + 64
    }

    /// The full output row set in slot order — equals what the engine's
    /// aggregation emits over the same input. Used to (re)derive the stored
    /// view when state is first built.
    pub fn output_rows(&self) -> Vec<Row> {
        (0..self.table.slots.len())
            .map(|s| self.row_at(s))
            .collect()
    }

    /// Folds one delta (the aggregate's delta-input rows, in order) into
    /// the state and reports exactly which output rows changed.
    pub fn apply(
        &mut self,
        delta: &[Row],
        group_by: &[usize],
        aggs: &[AggExpr],
    ) -> Result<FoldOutcome> {
        // Resolve still-undecided SUM typings against the delta, exactly as
        // the engine's first-value scan over the grown input would: the
        // base contributed no numeric values, so the delta's first numeric
        // value is the grown input's first numeric value.
        for (flag, agg) in self.flags.iter_mut().zip(aggs) {
            if *flag != SumFlag::Undecided {
                continue;
            }
            let Some(e) = &agg.input else { continue };
            match first_numeric(delta, e) {
                Some(true) => return Ok(FoldOutcome::FloatSum),
                Some(false) => *flag = SumFlag::Int,
                None => {}
            }
        }
        let srcs = classify_aggs(aggs);
        let before = self.table.slots.len();
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for row in delta {
            let hash = group_hash(row, group_by);
            let slot = match self.table.find(hash, |key| {
                group_by.iter().zip(key).all(|(&g, k)| row.get(g) == k)
            }) {
                Some(slot) => slot,
                None => {
                    let key: Vec<Value> = group_by.iter().map(|&g| row.get(g).clone()).collect();
                    let accs: Vec<Acc> = aggs.iter().map(|a| Acc::new(a.func, false)).collect();
                    self.table.insert(hash, key, accs)
                }
            };
            if slot < before {
                touched.insert(slot);
            }
            let accs = &mut self.table.slots[slot].2;
            for (acc, src) in accs.iter_mut().zip(&srcs) {
                match src {
                    AggSrc::CountAll => acc.update(None),
                    AggSrc::Col(c) if *c < row.arity() => acc.update(Some(row.get(*c))),
                    AggSrc::Col(c) => {
                        let v = eval(&Expr::Column(*c), row)?;
                        acc.update(Some(&v));
                    }
                    AggSrc::Expr(e) => {
                        let v = eval(e, row)?;
                        acc.update(Some(&v));
                    }
                }
            }
        }
        let updated: Vec<(usize, Row)> = touched.iter().map(|&s| (s, self.row_at(s))).collect();
        let appended: Vec<Row> = (before..self.table.slots.len())
            .map(|s| self.row_at(s))
            .collect();
        Ok(FoldOutcome::Applied(AggApplied { updated, appended }))
    }

    fn row_at(&self, slot: usize) -> Row {
        let (_, key, accs) = &self.table.slots[slot];
        let mut values = key.clone();
        values.extend(accs.iter().map(Acc::finish_ref));
        Row::new(values)
    }
}

/// First-value SUM typing scan, identical to the engine's
/// `float_sum_flags`: `Some(true)` = float, `Some(false)` = int, `None` =
/// no numeric value in `input`.
fn first_numeric(input: &[Row], e: &Expr) -> Option<bool> {
    for row in input {
        if let Ok(v) = eval(e, row) {
            match v {
                Value::Float(_) => return Some(true),
                Value::Int(_) => return Some(false),
                _ => {}
            }
        }
    }
    None
}

/// Applies the maintained view's post-aggregate projection layers
/// (bottom-up) to one changed aggregate row, producing the stored-view row.
/// Mirrors the engine's `Project`: one output row per input row, evaluation
/// errors propagate.
pub fn apply_projection(layers: &[Vec<(String, Expr)>], row: &Row) -> Result<Row> {
    let mut cur = row.clone();
    for layer in layers {
        let values: Vec<Value> = layer
            .iter()
            .map(|(_, e)| eval(e, &cur))
            .collect::<Result<_>>()?;
        cur = Row::new(values);
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_plan::expr::AggFunc;

    fn rows(spec: &[(&str, i64)]) -> Vec<Row> {
        spec.iter()
            .map(|(city, score)| Row::new(vec![Value::str(*city), Value::Int(*score)]))
            .collect()
    }

    fn all_aggs() -> Vec<AggExpr> {
        vec![
            AggExpr::new(AggFunc::Count, None, "n"),
            AggExpr::new(AggFunc::CountDistinct, Some(Expr::col(1)), "d"),
            AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "s"),
            AggExpr::new(AggFunc::Min, Some(Expr::col(1)), "lo"),
            AggExpr::new(AggFunc::Max, Some(Expr::col(1)), "hi"),
        ]
    }

    /// Build-on-base + delta fold must equal build-on-full for every split.
    #[test]
    fn delta_fold_equals_full_replay() {
        let full = rows(&[
            ("sf", 10),
            ("ny", 20),
            ("sf", 10),
            ("la", 5),
            ("ny", -3),
            ("sf", 7),
            ("austin", 0),
        ]);
        let aggs = all_aggs();
        for split in 0..=full.len() {
            let mut state = AggState::build(&full[..split], &[0], &aggs)
                .unwrap()
                .expect("int aggs are maintainable");
            let mut view = state.output_rows();
            match state.apply(&full[split..], &[0], &aggs).unwrap() {
                FoldOutcome::Applied(applied) => {
                    for (slot, row) in applied.updated {
                        view[slot] = row;
                    }
                    view.extend(applied.appended);
                }
                FoldOutcome::FloatSum => panic!("int sum must not resolve float"),
            }
            let oracle = AggState::build(&full, &[0], &aggs).unwrap().unwrap();
            assert_eq!(view, oracle.output_rows(), "split {split}");
        }
    }

    #[test]
    fn global_aggregate_over_empty_base_updates_in_place() {
        let aggs = vec![AggExpr::new(AggFunc::Count, None, "n")];
        let mut state = AggState::build(&[], &[], &aggs).unwrap().unwrap();
        assert_eq!(state.groups(), 1, "implicit global group");
        assert_eq!(state.output_rows(), vec![Row::new(vec![Value::Int(0)])]);
        let FoldOutcome::Applied(applied) = state
            .apply(&rows(&[("sf", 1), ("ny", 2)]), &[], &aggs)
            .unwrap()
        else {
            panic!("count is never float");
        };
        assert_eq!(applied.appended, vec![]);
        assert_eq!(applied.updated, vec![(0, Row::new(vec![Value::Int(2)]))]);
    }

    #[test]
    fn float_sum_is_rejected_at_build_and_detected_in_delta() {
        let aggs = vec![AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "s")];
        let floaty = vec![Row::new(vec![Value::str("sf"), Value::Float(1.5)])];
        assert!(AggState::build(&floaty, &[0], &aggs).unwrap().is_none());
        let avg = vec![AggExpr::new(AggFunc::Avg, Some(Expr::col(1)), "a")];
        assert!(AggState::build(&[], &[0], &avg).unwrap().is_none());
        // All-null base leaves the SUM undecided; a float delta detects.
        let nullish = vec![Row::new(vec![Value::str("sf"), Value::Null])];
        let mut state = AggState::build(&nullish, &[0], &aggs).unwrap().unwrap();
        assert!(matches!(
            state.apply(&floaty, &[0], &aggs).unwrap(),
            FoldOutcome::FloatSum
        ));
        // ... while an int delta decides int and folds.
        let mut state = AggState::build(&nullish, &[0], &aggs).unwrap().unwrap();
        assert!(matches!(
            state.apply(&rows(&[("sf", 4)]), &[0], &aggs).unwrap(),
            FoldOutcome::Applied(_)
        ));
    }

    #[test]
    fn projection_layers_compose() {
        let layers = vec![
            vec![
                ("b".to_string(), Expr::col(1)),
                ("a".to_string(), Expr::col(0)),
            ],
            vec![("a2".to_string(), Expr::col(1))],
        ];
        let row = Row::new(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            apply_projection(&layers, &row).unwrap(),
            Row::new(vec![Value::Int(1)])
        );
        assert_eq!(apply_projection(&[], &row).unwrap(), row);
    }
}
