//! miso-xray: per-query EXPLAIN ANALYZE.
//!
//! Joins three views of the same query into one plan-shaped artifact:
//!
//! * what the optimizer **predicted** — the per-node size estimates and the
//!   [`CostBreakdown`] from the exact what-if path the tuner costs designs
//!   with ([`miso_optimizer::optimize`]);
//! * what the engine **measured** — the per-node [`OpProfile`]s collected by
//!   `miso_exec` when `miso_exec::profile::enabled()` is on (wall time, rows
//!   in/out, bytes, morsels, parallel fraction);
//! * what actually **flowed** — output row counts, which the engine records
//!   for every node even with profiling off.
//!
//! [`explain_analyze`] renders the annotated tree (the multistore analogue
//! of `EXPLAIN ANALYZE`); [`QueryXray::to_value`] emits the same data as
//! JSON for `results/<bin>.report.json`. Store-level drift accounting built
//! on these artifacts lives in `miso_core::calibration`.

use miso_common::ids::NodeId;
use miso_common::SimDuration;
use miso_data::Value;
use miso_dw::DwCostModel;
use miso_exec::OpProfile;
use miso_hv::HvCostModel;
use miso_obs::MetricsSnapshot;
use miso_optimizer::{CostBreakdown, PlannedQuery, TransferModel};
use miso_plan::estimate::SizeEstimate;
use std::collections::HashMap;
use std::fmt::Write;

/// One plan node, annotated with prediction and measurement.
#[derive(Debug, Clone)]
pub struct NodeXray {
    /// The plan node.
    pub id: NodeId,
    /// Operator label (e.g. `Join(on=[0=0])`).
    pub label: String,
    /// Input node ids, for tree rendering.
    pub inputs: Vec<NodeId>,
    /// Whether the split placed this node in HV (else DW).
    pub hv: bool,
    /// Whether this node's working set crosses the wire to DW.
    pub cut: bool,
    /// Optimizer cardinality estimate.
    pub est_rows: f64,
    /// Optimizer size estimate.
    pub est_bytes: f64,
    /// Predicted *marginal* cost of this node: its per-row CPU charge, its
    /// per-byte scan charge if it is a leaf, and its dump+transfer+load
    /// charge if it is a cut. Stage-level constants (HV job startup, DW
    /// query startup) are amortized over whole stages by the cost model and
    /// are deliberately not re-attributed to single nodes here — the query
    /// header carries the authoritative [`CostBreakdown`].
    pub predicted: SimDuration,
    /// Measured output rows (recorded even with profiling off).
    pub actual_rows: Option<u64>,
    /// Full measured profile, when profiling was on.
    pub profile: Option<OpProfile>,
}

/// A whole query's EXPLAIN ANALYZE artifact.
#[derive(Debug, Clone)]
pub struct QueryXray {
    /// Caller-supplied name (query id, view name, ...).
    pub label: String,
    /// Root node of the (possibly view-rewritten) plan.
    pub root: NodeId,
    /// Every plan node in plan order.
    pub nodes: Vec<NodeXray>,
    /// The optimizer's whole-query prediction, from the tuner's what-if path.
    pub predicted: CostBreakdown,
    /// Views the rewrite consumed.
    pub used_views: Vec<String>,
}

/// The three per-store cost models a query was priced with, borrowed
/// together so callers hand [`analyze`] one coherent pricing context.
#[derive(Debug, Clone, Copy)]
pub struct CostModels<'a> {
    /// The HV (MapReduce-style) model.
    pub hv: &'a HvCostModel,
    /// The DW (warehouse) model.
    pub dw: &'a DwCostModel,
    /// The HV→DW network model.
    pub transfer: &'a TransferModel,
}

/// Marginal predicted cost of one node under the split's placement (see
/// [`NodeXray::predicted`]).
fn node_predicted(
    planned: &PlannedQuery,
    id: NodeId,
    est: &SizeEstimate,
    cut: bool,
    models: &CostModels<'_>,
) -> SimDuration {
    let node = planned.plan.node(id);
    let in_hv = planned.split.in_hv(id);
    let scan_bytes = if node.op.is_scan() { est.bytes } else { 0.0 };
    let mut secs = if in_hv {
        scan_bytes * models.hv.read_secs_per_byte + est.rows * models.hv.cpu_secs_per_row
    } else {
        scan_bytes * models.dw.read_secs_per_byte + est.rows * models.dw.cpu_secs_per_row
    };
    if cut {
        secs += est.bytes
            * (models.hv.dump_secs_per_byte
                + models.transfer.network_secs_per_byte
                + models.dw.load_secs_per_byte);
    }
    SimDuration::from_secs_f64(secs)
}

/// Builds the EXPLAIN ANALYZE artifact for one planned-and-executed query.
///
/// * `estimates` — per-node sizes from `miso_plan::estimate::estimate_plan`
///   over the same stats the optimizer used;
/// * `profiles` — per-node [`OpProfile`]s merged from the HV and DW
///   executions (empty when profiling was off);
/// * `rows_out` — per-node output row counts merged the same way.
pub fn analyze(
    label: impl Into<String>,
    planned: &PlannedQuery,
    estimates: &HashMap<NodeId, SizeEstimate>,
    profiles: &HashMap<NodeId, OpProfile>,
    rows_out: &HashMap<NodeId, u64>,
    models: &CostModels<'_>,
) -> QueryXray {
    let cuts = planned.split.cut_nodes(&planned.plan);
    let nodes = planned
        .plan
        .nodes()
        .iter()
        .map(|node| {
            let est = estimates.get(&node.id).copied().unwrap_or(SizeEstimate {
                rows: 0.0,
                bytes: 0.0,
            });
            let cut = cuts.contains(&node.id);
            NodeXray {
                id: node.id,
                label: node.op.label(),
                inputs: node.inputs.clone(),
                hv: planned.split.in_hv(node.id),
                cut,
                est_rows: est.rows,
                est_bytes: est.bytes,
                predicted: node_predicted(planned, node.id, &est, cut, models),
                actual_rows: rows_out.get(&node.id).copied(),
                profile: profiles.get(&node.id).copied(),
            }
        })
        .collect();
    QueryXray {
        label: label.into(),
        root: planned.plan.root(),
        nodes,
        predicted: planned.est,
        used_views: planned.used_views.clone(),
    }
}

/// Formats real nanoseconds compactly (`812ns`, `4.1µs`, `23.5ms`, `1.20s`).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Renders the annotated plan tree.
pub fn explain_analyze(x: &QueryXray) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "explain analyze [{}]: predicted total {} (HV {}, transfer {}, DW {})",
        x.label,
        x.predicted.total(),
        x.predicted.hv,
        x.predicted.transfer,
        x.predicted.dw
    );
    if x.used_views.is_empty() {
        let _ = writeln!(out, "views: none");
    } else {
        let _ = writeln!(out, "views: {}", x.used_views.join(", "));
    }
    let by_id: HashMap<NodeId, &NodeXray> = x.nodes.iter().map(|n| (n.id, n)).collect();
    render_node(&by_id, x.root, 0, &mut out);
    out
}

/// [`explain_analyze`] plus an operator-latency tail footer sourced from the
/// `exec.op_ns` histogram of `snapshot` (when it recorded anything).
pub fn explain_analyze_with_metrics(x: &QueryXray, snapshot: &MetricsSnapshot) -> String {
    let mut out = explain_analyze(x);
    if let Some((p50, p95, p99)) = snapshot.tail("exec.op_ns") {
        let _ = writeln!(
            out,
            "operator latency: p50 {} · p95 {} · p99 {}",
            fmt_ns(p50),
            fmt_ns(p95),
            fmt_ns(p99)
        );
    }
    out
}

fn render_node(by_id: &HashMap<NodeId, &NodeXray>, id: NodeId, depth: usize, out: &mut String) {
    let Some(n) = by_id.get(&id) else { return };
    let store = if n.hv { "HV" } else { "DW" };
    let _ = write!(
        out,
        "  [{store}] {}{}  pred {} · est {} rows",
        "  ".repeat(depth),
        n.label,
        n.predicted,
        n.est_rows.round() as u64
    );
    match n.actual_rows {
        Some(rows) => {
            let _ = write!(out, " · act {rows} rows");
        }
        None => {
            let _ = write!(out, " · act -");
        }
    }
    if let Some(p) = &n.profile {
        let _ = write!(
            out,
            " · {} · {} morsels · par {:.0}%",
            fmt_ns(p.wall_ns),
            p.morsels,
            p.parallel_fraction() * 100.0
        );
    }
    if n.cut {
        let _ = write!(out, "  <== working set ships to DW");
    }
    let _ = writeln!(out);
    for &input in &n.inputs {
        render_node(by_id, input, depth + 1, out);
    }
}

impl QueryXray {
    /// The JSON form, for embedding in bench reports.
    pub fn to_value(&self) -> Value {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let mut obj = vec![
                    ("id".into(), Value::Int(n.id.raw() as i64)),
                    ("op".into(), Value::str(&n.label)),
                    ("store".into(), Value::str(if n.hv { "HV" } else { "DW" })),
                    ("cut".into(), Value::Bool(n.cut)),
                    ("est_rows".into(), Value::Float(n.est_rows)),
                    ("est_bytes".into(), Value::Float(n.est_bytes)),
                    ("pred_s".into(), Value::Float(n.predicted.as_secs_f64())),
                ];
                if let Some(rows) = n.actual_rows {
                    obj.push(("act_rows".into(), Value::Int(rows as i64)));
                }
                if let Some(p) = &n.profile {
                    obj.push(("wall_ns".into(), Value::Int(p.wall_ns as i64)));
                    obj.push(("rows_in".into(), Value::Int(p.rows_in as i64)));
                    obj.push(("bytes_out".into(), Value::Int(p.bytes_out as i64)));
                    obj.push(("morsels".into(), Value::Int(p.morsels as i64)));
                    obj.push(("par_rows".into(), Value::Int(p.par_rows as i64)));
                    obj.push((
                        "parallel_fraction".into(),
                        Value::Float(p.parallel_fraction()),
                    ));
                }
                Value::object(obj)
            })
            .collect();
        Value::object(vec![
            ("label".into(), Value::str(&self.label)),
            (
                "predicted".into(),
                Value::object(vec![
                    ("hv_s".into(), Value::Float(self.predicted.hv.as_secs_f64())),
                    (
                        "transfer_s".into(),
                        Value::Float(self.predicted.transfer.as_secs_f64()),
                    ),
                    ("dw_s".into(), Value::Float(self.predicted.dw.as_secs_f64())),
                ]),
            ),
            (
                "views".into(),
                Value::Array(self.used_views.iter().map(Value::str).collect()),
            ),
            ("nodes".into(), Value::Array(nodes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_exec::engine::{execute, MemSource};
    use miso_exec::UdfRegistry;
    use miso_lang::{compile, Catalog};
    use miso_optimizer::optimize::{optimize, Design, OptimizerEnv};
    use miso_plan::estimate::{estimate_plan, MapStats};

    fn lines(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "{{\"user_id\": {}, \"city\": \"c{}\", \"followers\": {}, \"likes\": {}, \"text\": \"t\"}}",
                    i,
                    i % 7,
                    (i * 37) % 2000,
                    i % 10
                )
            })
            .collect()
    }

    fn build() -> (PlannedQuery, HashMap<NodeId, SizeEstimate>, MemSource) {
        let plan = compile(
            "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 500 GROUP BY t.city",
            &Catalog::standard(),
        )
        .unwrap();
        let mut stats = MapStats::new();
        stats.set_log("twitter", 2_000.0, 2_000.0 * 90.0);
        let hv = HvCostModel::paper_default();
        let dw = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();
        let env = OptimizerEnv {
            stats: &stats,
            hv: &hv,
            dw: &dw,
            transfer: &tm,
            catalog: None,
        };
        let planned = optimize(&plan, &Design::new(), &env).unwrap();
        let est = estimate_plan(&planned.plan, &stats);
        let mut source = MemSource::new();
        source.add_log("twitter", lines(2_000));
        (planned, est, source)
    }

    #[test]
    fn explain_analyze_renders_pred_and_act_per_node() {
        let (planned, est, source) = build();
        let was = miso_exec::profile::enabled();
        miso_exec::profile::set_enabled(true);
        let exec = execute(&planned.plan, &source, &UdfRegistry::new()).unwrap();
        miso_exec::profile::set_enabled(was);
        let x = analyze(
            "q1",
            &planned,
            &est,
            exec.profiles(),
            &exec
                .executed_nodes()
                .map(|id| (id, exec.rows_out(id).unwrap()))
                .collect(),
            &CostModels {
                hv: &HvCostModel::paper_default(),
                dw: &DwCostModel::paper_default(),
                transfer: &TransferModel::paper_default(),
            },
        );
        let text = explain_analyze(&x);
        assert!(text.contains("explain analyze [q1]"), "{text}");
        assert!(text.contains("ScanLog(twitter)"), "{text}");
        // Every node line carries a prediction and a measurement.
        for line in text.lines().filter(|l| l.contains("pred ")) {
            assert!(line.contains("act "), "no actuals on: {line}");
        }
        assert_eq!(
            text.lines().filter(|l| l.contains("pred ")).count(),
            planned.plan.len()
        );
        // Profiles annotate morsel structure.
        assert!(text.contains("morsels"), "{text}");
        // JSON form round-trips through the repo's own JSON.
        let json = miso_data::json::to_json(&x.to_value());
        let v = miso_data::json::parse_json(&json).unwrap();
        assert_eq!(v.get_field("label"), Some(&Value::str("q1")));
        assert!(v.get_field("nodes").is_some());
    }

    #[test]
    fn explain_analyze_without_profiles_still_shows_rows() {
        let (planned, est, source) = build();
        let was = miso_exec::profile::enabled();
        miso_exec::profile::set_enabled(false);
        let exec = execute(&planned.plan, &source, &UdfRegistry::new()).unwrap();
        miso_exec::profile::set_enabled(was);
        assert!(exec.profiles().is_empty());
        let x = analyze(
            "q2",
            &planned,
            &est,
            exec.profiles(),
            &exec
                .executed_nodes()
                .map(|id| (id, exec.rows_out(id).unwrap()))
                .collect(),
            &CostModels {
                hv: &HvCostModel::paper_default(),
                dw: &DwCostModel::paper_default(),
                transfer: &TransferModel::paper_default(),
            },
        );
        let text = explain_analyze(&x);
        assert!(text.contains("act "), "{text}");
        assert!(!text.contains("morsels"), "{text}");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(812), "812ns");
        assert_eq!(fmt_ns(4_100), "4.1µs");
        assert_eq!(fmt_ns(23_500_000), "23.5ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
