//! Epoch-publish correctness: atomic snapshot visibility, admission-time
//! pinning, drain classification, and crash-safe reorg commit.
//!
//! These tests exercise the promises DESIGN.md §15 makes about the serving
//! layer's epoch lifecycle:
//!
//! * a reader racing a reorg commit observes *either* the old image *or*
//!   the new one, never a mixed catalog (real-thread race + deterministic
//!   crash-at-every-step sweep through the engine);
//! * in-flight queries finish against their admission-time snapshot;
//! * queries killed at the drain deadline are classified losses;
//! * a crash mid-commit recovers through the reorg journal and converges to
//!   the same design a crash-free run commits.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use miso_common::ids::QueryId;
use miso_common::{Budgets, ByteSize, SimClock, SimDuration};
use miso_core::{MultistoreSystem, SystemConfig, Variant};
use miso_data::logs::{Corpus, LogsConfig};
use miso_dw::DwStore;
use miso_exec::UdfRegistry;
use miso_hv::HvStore;
use miso_lang::compile;
use miso_optimizer::TransferModel;
use miso_plan::LogicalPlan;
use miso_serve::{EpochSnapshot, ServeConfig, ServeEngine, SnapExecutor, SnapshotCell};
use miso_views::{ViewCatalog, ViewDef};

/// Chaos state (plans, RNG, hit counters, the enabled flag toggled by
/// suspend/resume) is process-global; tests that install, disable, or rely
/// on suspended chaos must not interleave. Poisoning is ignored — a failed
/// test must not cascade.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_system(budget_kib: u64) -> MultistoreSystem {
    let corpus = Corpus::generate(&LogsConfig::tiny());
    let budgets = Budgets::new(
        ByteSize::from_kib(budget_kib),
        ByteSize::from_kib(budget_kib),
        ByteSize::from_kib(budget_kib),
    )
    .with_discretization(ByteSize::from_kib(16));
    MultistoreSystem::new(
        &corpus,
        miso_lang::Catalog::standard(),
        UdfRegistry::new(),
        SystemConfig::paper_default(budgets),
    )
}

fn queries() -> Vec<(String, LogicalPlan)> {
    let c = miso_lang::Catalog::standard();
    [
        "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
         WHERE t.followers > 100 GROUP BY t.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS s FROM twitter t \
         WHERE t.followers > 100 GROUP BY t.city",
        "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
         WHERE t.followers > 100 GROUP BY t.city ORDER BY n DESC LIMIT 5",
        "SELECT f.city AS city, COUNT(*) AS n FROM foursquare f \
         WHERE f.likes > 2 GROUP BY f.city",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| (format!("q{i}"), compile(sql, &c).unwrap()))
    .collect()
}

fn snapshot_of(sys: &MultistoreSystem, epoch: u64) -> EpochSnapshot {
    EpochSnapshot {
        epoch,
        hv: sys.hv.clone(),
        dw: sys.dw.clone(),
        catalog: sys.catalog.clone(),
        transfer: sys.transfer_model().clone(),
    }
}

/// A reader racing reorg commits never observes a half-updated image: the
/// catalog and the HV view residency always agree, and the view count always
/// matches the epoch number. If publish updated its parts non-atomically,
/// the racing loads below would catch a mix.
#[test]
fn racing_reader_never_observes_mixed_snapshot() {
    const EPOCHS: u64 = 200;
    let lang = miso_lang::Catalog::standard();
    // Epoch k's image carries exactly views v_1..v_k, registered in the
    // catalog AND installed in HV as one unit.
    let mut staged = Vec::new();
    let mut hv = HvStore::new();
    let mut catalog = ViewCatalog::new();
    for k in 1..=EPOCHS {
        let sql = format!(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > {k} GROUP BY t.city"
        );
        let plan = compile(&sql, &lang).unwrap();
        let schema = plan.schema().clone();
        let def = ViewDef::from_plan(plan, ByteSize::from_kib(1), 0, QueryId(k));
        let name = def.name.clone();
        catalog.register(def);
        hv.install_view(&name, schema, Arc::new(Vec::new()));
        staged.push(EpochSnapshot {
            epoch: k,
            hv: hv.clone(),
            dw: DwStore::new(),
            catalog: catalog.clone(),
            transfer: TransferModel::default(),
        });
    }

    let cell = Arc::new(SnapshotCell::new(EpochSnapshot {
        epoch: 0,
        hv: HvStore::new(),
        dw: DwStore::new(),
        catalog: ViewCatalog::new(),
        transfer: TransferModel::default(),
    }));
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let cell = cell.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut loads = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = cell.load();
                    let hv_views = snap.hv.view_names();
                    assert_eq!(
                        snap.catalog.len() as u64,
                        snap.epoch,
                        "epoch {} published with {} catalog entries",
                        snap.epoch,
                        snap.catalog.len()
                    );
                    assert_eq!(
                        hv_views.len(),
                        snap.catalog.len(),
                        "catalog and HV residency diverged within one epoch"
                    );
                    for def in snap.catalog.defs() {
                        assert!(
                            snap.hv.has_view(&def.name),
                            "catalog lists {} but HV does not carry it",
                            def.name
                        );
                    }
                    loads += 1;
                }
                loads
            })
        })
        .collect();

    for snap in staged {
        cell.publish(snap);
    }
    assert_eq!(cell.epoch(), EPOCHS);
    done.store(true, Ordering::Relaxed);
    for r in readers {
        let loads = r.join().expect("reader never panics");
        assert!(loads > 0, "reader must have raced at least one load");
    }
}

/// An in-flight query's `Arc`-held admission snapshot is bit-for-bit
/// unaffected by a concurrent publish: re-running it after the reorg commits
/// reproduces the admission-time base run exactly — answer *and* costs.
#[test]
fn drained_inflight_work_uses_admission_snapshot() {
    let _chaos = chaos_guard();
    let mut sys = tiny_system(100_000);
    let workload = queries();
    let snap0 = Arc::new(snapshot_of(&sys, 0));
    let none = BTreeSet::new();

    let mut exec = SnapExecutor::new(UdfRegistry::new());
    let (label, plan) = &workload[0];
    let before = exec.run(&snap0, label, plan, &none, false).unwrap();

    // "Reorg commits" — the serial driver harvests views and retunes,
    // changing catalog/HV/DW state; epoch 1 is published from it.
    sys.run_workload(Variant::MsMiso, &workload).unwrap();
    let cell = SnapshotCell::new(EpochSnapshot {
        epoch: 0,
        ..(*snap0).clone()
    });
    let held = cell.load();
    cell.publish(snapshot_of(&sys, 1));
    assert_eq!(cell.epoch(), 1);
    assert_eq!(held.epoch, 0, "in-flight query keeps its admission image");

    // A fresh executor (no memo carry-over) against the held snapshot
    // reproduces the admission-time run exactly.
    let mut fresh = SnapExecutor::new(UdfRegistry::new());
    let after = fresh.run(&held, label, plan, &none, false).unwrap();
    assert_eq!(after.result_rows, before.result_rows);
    assert_eq!(after.checksum, before.checksum);
    assert_eq!(after.service(), before.service());
    assert_eq!(after.bytes_transferred, before.bytes_transferred);

    // And the *published* epoch still returns the same answer (views only
    // ever rewrite, never change semantics), even if its costs differ.
    let published = fresh.run(&cell.load(), label, plan, &none, false).unwrap();
    assert_eq!(published.result_rows, before.result_rows);
    assert_eq!(published.checksum, before.checksum);
}

fn sweep_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        sessions: 8,
        tenants: 2,
        queries_per_session: 3,
        seed: 5,
        mean_think: SimDuration::from_secs(5),
        reorg_every: 4,
        drain: SimDuration::from_secs(1),
        ..ServeConfig::standard()
    }
}

fn sweep_engine() -> ServeEngine {
    let sys = tiny_system(100_000);
    ServeEngine::new(sweep_config(), sys, queries(), UdfRegistry::new())
}

/// Deterministic interleaving sweep: crash the reorg at every individual
/// step (chaos `reorg.step=crash@n{k}` fires on exactly the k-th step) while
/// the engine is serving. Whatever the interleaving, every delivered answer
/// matches the serial oracle, every loss is classified, and the published
/// epoch advances only by whole commits.
#[test]
fn crash_at_every_reorg_step_never_mixes_epochs() {
    let _chaos = chaos_guard();
    // Crash-free control: fixes the sweep's expected delivery totals.
    miso_chaos::disable();
    let control = sweep_engine().run();
    assert!(control.reorgs >= 1, "control run must reorganize");
    assert_eq!(control.wrong_answers, 0);
    assert_eq!(control.unclassified, 0);

    for k in 1..=8u64 {
        let spec = format!("seed=7;reorg.step=crash@n{k}");
        let plan = miso_chaos::parse_spec(&spec).expect("sweep spec parses");
        miso_chaos::install(plan);
        let report = sweep_engine().run();
        miso_chaos::disable();

        assert_eq!(
            report.wrong_answers, 0,
            "crash at reorg step {k} produced wrong answers"
        );
        assert_eq!(
            report.unclassified, 0,
            "crash at reorg step {k} left unclassified losses"
        );
        assert_eq!(
            report.submitted,
            report.delivered + report.shed + report.killed,
            "crash at reorg step {k} lost track of a query"
        );
        // Epochs advance only by whole published reorgs; an abandoned reorg
        // leaves the epoch untouched.
        assert_eq!(report.final_epoch, report.reorgs);
        assert!(
            report.reorgs + report.reorg_failures >= 1,
            "crash at reorg step {k}: the reorg must commit or fail classified"
        );
        // Recovery costs sim time (shifting drain boundaries), so delivery
        // totals may differ from the control — but the server must keep
        // serving through the crash.
        assert!(
            report.delivered > 0,
            "crash at reorg step {k} starved delivery entirely"
        );
    }
}

/// The same serving config replays bit-identically: the discrete-event loop
/// is deterministic, so epoch boundaries, drains, and latencies reproduce.
#[test]
fn serving_replays_deterministically() {
    let _chaos = chaos_guard();
    miso_chaos::disable();
    let a = sweep_engine().run();
    let b = sweep_engine().run();
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.killed, b.killed);
    assert_eq!(a.drained, b.drained);
    assert_eq!(a.reorgs, b.reorgs);
    assert_eq!(a.final_epoch, b.final_epoch);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.p50, b.p50);
    assert_eq!(a.p99, b.p99);
}

/// Queries killed at the drain deadline are classified `cancelled` losses
/// with tenant/session attribution — and everything that was delivered is
/// still oracle-correct.
#[test]
fn drain_kills_are_classified_cancellations() {
    let _chaos = chaos_guard();
    miso_chaos::disable();
    let cfg = ServeConfig {
        // Zero-length drain window: any old-epoch straggler at publish time
        // is killed immediately at the boundary.
        drain: SimDuration::ZERO,
        mean_think: SimDuration::from_secs(1),
        ..sweep_config()
    };
    let sys = tiny_system(100_000);
    let report = ServeEngine::new(cfg, sys, queries(), UdfRegistry::new()).run();
    assert!(report.reorgs >= 1, "run must publish at least one epoch");
    assert!(
        report.drained > 0,
        "zero drain window with saturated workers must drain stragglers"
    );
    assert_eq!(report.wrong_answers, 0);
    assert_eq!(report.unclassified, 0);
    let drains: Vec<_> = report
        .failures
        .iter()
        .filter(|f| f.message.contains("drained at epoch"))
        .collect();
    assert_eq!(drains.len() as u64, report.drained);
    for f in drains {
        assert_eq!(f.kind, "cancelled");
        assert!(f.tenant.is_some() && f.session.is_some());
        assert!(!f.shed);
    }
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

/// Crash-during-commit, journal variant: the reorg journal is two-phase, so
/// a crash **before** the commit record rolls the migration back (the
/// pre-reorg design survives untouched) and a crash **after** it rolls
/// forward (the crashed twin converges to exactly the design a crash-free
/// twin commits). Either way the resulting image is a consistent, atomic
/// epoch that serves the same answers.
#[test]
fn crashed_commit_recovers_to_the_crash_free_design() {
    let _chaos = chaos_guard();
    let workload = queries();
    let window: Vec<LogicalPlan> = workload.iter().map(|(_, p)| p.clone()).collect();
    // Three twin systems with identical workload history.
    let mut twin = || {
        miso_chaos::disable();
        let mut sys = tiny_system(100_000);
        sys.run_workload(Variant::MsMiso, &workload).unwrap();
        sys
    };
    let mut control = twin();
    let mut pre_commit = twin();
    let mut post_commit = twin();
    let pre_reorg_hv = sorted(control.hv.view_names());
    let pre_reorg_dw = sorted(control.dw.view_names());

    miso_chaos::disable();
    let mut clock = SimClock::new();
    let rec = control.reorg_now(&window, &mut clock).unwrap();
    assert_eq!(rec.recoveries, 0, "crash-free commit needs no recovery");
    assert!(!rec.rolled_back);
    assert!(
        !rec.moved_to_dw.is_empty(),
        "the tuner must migrate something for the crash sweep to mean anything"
    );

    // Crash on step 2: mid-staging, before the journal's Commit record —
    // recovery must roll the whole migration back.
    let plan = miso_chaos::parse_spec("seed=3;reorg.step=crash@n2").unwrap();
    miso_chaos::install(plan);
    let mut clock = SimClock::new();
    let rec = pre_commit.reorg_now(&window, &mut clock).unwrap();
    miso_chaos::disable();
    assert!(
        rec.recoveries >= 1,
        "the crash must force a journal recovery"
    );
    assert!(rec.rolled_back, "a pre-commit crash rolls back");
    assert!(rec.moved_to_dw.is_empty() && rec.moved_to_hv.is_empty());
    assert_eq!(sorted(pre_commit.hv.view_names()), pre_reorg_hv);
    assert_eq!(sorted(pre_commit.dw.view_names()), pre_reorg_dw);

    // Crash on step 4: mid-apply, after the Commit record — recovery must
    // roll forward to exactly the crash-free design.
    let plan = miso_chaos::parse_spec("seed=3;reorg.step=crash@n4").unwrap();
    miso_chaos::install(plan);
    let mut clock = SimClock::new();
    let rec = post_commit.reorg_now(&window, &mut clock).unwrap();
    miso_chaos::disable();
    assert!(
        rec.recoveries >= 1,
        "the crash must force a journal recovery"
    );
    assert!(!rec.rolled_back, "a post-commit crash rolls forward");
    assert_eq!(post_commit.catalog.names(), control.catalog.names());
    assert_eq!(
        sorted(post_commit.hv.view_names()),
        sorted(control.hv.view_names())
    );
    assert_eq!(
        sorted(post_commit.dw.view_names()),
        sorted(control.dw.view_names())
    );

    // Whichever side of the commit the crash landed on, the recovered image
    // is a publishable epoch serving the same answers as the control's.
    let none = BTreeSet::new();
    let snap_control = snapshot_of(&control, 1);
    for sys in [&pre_commit, &post_commit] {
        let snap = snapshot_of(sys, 1);
        let mut exec_a = SnapExecutor::new(UdfRegistry::new());
        let mut exec_b = SnapExecutor::new(UdfRegistry::new());
        for (label, plan) in &workload {
            let a = exec_a
                .run(&snap_control, label, plan, &none, false)
                .unwrap();
            let b = exec_b.run(&snap, label, plan, &none, false).unwrap();
            assert_eq!(
                a.result_rows, b.result_rows,
                "{label} diverged after recovery"
            );
            assert_eq!(a.checksum, b.checksum, "{label} diverged after recovery");
        }
    }
}

/// Streaming growth across serving epochs: the corpus grows and views are
/// incrementally maintained *between* snapshots, so a session pinned to the
/// pre-growth image keeps answering over the old corpus bit-for-bit, while
/// sessions admitted after the growth epoch publishes see the appended
/// data.
#[test]
fn growth_publishes_new_epoch_old_snapshots_keep_old_answers() {
    use miso_core::MaintenancePolicy;
    use miso_data::logs::{LogKind, LogsConfig};
    use miso_data::Delta;

    let _chaos = chaos_guard();
    let mut sys = tiny_system(100_000);
    let workload = queries();
    // Materialize opportunistic views so maintenance has something to keep
    // current across the growth step.
    sys.run_workload(Variant::MsMiso, &workload).unwrap();

    let c = miso_lang::Catalog::standard();
    let count_all = compile(
        "SELECT t.tweet_id AS id FROM twitter t WHERE t.tweet_id >= 0",
        &c,
    )
    .unwrap();
    let none = BTreeSet::new();
    let cell = SnapshotCell::new(snapshot_of(&sys, 0));
    let held = cell.load();
    let mut exec = SnapExecutor::new(UdfRegistry::new());
    let before = exec
        .run(&held, "count_all", &count_all, &none, false)
        .unwrap();

    // The corpus grows: one delta batch ingested under Refresh, views
    // delta-maintained, then the grown image is published as epoch 1.
    let mut clock = SimClock::new();
    let delta = Delta::generated(&LogsConfig::tiny(), LogKind::Twitter, 0, 150);
    sys.grow(&delta, MaintenancePolicy::Refresh, &mut clock)
        .unwrap();
    cell.publish(snapshot_of(&sys, 1));
    assert_eq!(cell.epoch(), 1);

    // The held pre-growth snapshot still answers over the old corpus.
    let mut fresh = SnapExecutor::new(UdfRegistry::new());
    let old = fresh
        .run(&held, "count_all", &count_all, &none, false)
        .unwrap();
    assert_eq!(old.result_rows, before.result_rows);
    assert_eq!(old.checksum, before.checksum);

    // The published epoch sees every appended record.
    let grown = fresh
        .run(&cell.load(), "count_all", &count_all, &none, false)
        .unwrap();
    assert_eq!(grown.result_rows, before.result_rows + 150);

    // And the maintained views inside the published image answer the same
    // workload queries as the pre-growth image *plus* the delta — spot
    // check: every workload query still runs cleanly against epoch 1.
    for (label, plan) in &workload {
        fresh.run(&cell.load(), label, plan, &none, false).unwrap();
    }
}
