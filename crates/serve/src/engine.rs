//! The serving engine: a deterministic discrete-event simulation of N
//! concurrent client sessions over W worker slots.
//!
//! # Why discrete-event
//!
//! Store execution in this repo charges *simulated* time; wall-clock
//! parallelism on the host contributes nothing to the measured figures (and
//! the CI box may have a single core). The engine therefore simulates
//! concurrency the same way the stores simulate cost: arrivals, dispatches,
//! completions, reorg publishes, and drain kills are events on one totally
//! ordered queue `(instant, sequence)`, and W worker slots bound how many
//! queries occupy sim-time concurrently. Identical configs replay
//! bit-identically on any host.
//!
//! # Epoch lifecycle
//!
//! 1. Queries load the published [`EpochSnapshot`] once, at dispatch, and
//!    execute against it for their whole lifetime.
//! 2. When `reorg_every` completions have accumulated, harvested view
//!    candidates are folded into the master copy and the tuner runs against
//!    it ([`MultistoreSystem::reorg_now`] — journaled, crash-recoverable).
//!    Serving continues on the old snapshot meanwhile.
//! 3. The reorganized image is published atomically at `now + duration`.
//!    In-flight queries keep their admission-time snapshot; any that would
//!    outlive `drain` past the publish are killed at the drain deadline with
//!    a classified `cancelled` loss, so a reorg can never be wedged open by
//!    a straggler.
//!
//! # Loss classification
//!
//! Every query the engine accepts ends in exactly one of: a delivered
//! result (checked against the serial oracle), a shed (with `retry_after`),
//! or a classified kill (`cancelled`, `resource_exhausted`, `transient`,
//! `crash`, …) recorded as a [`QueryFailure`] with tenant/session
//! attribution. Nothing panics the process; unclassified losses are a
//! reported invariant violation.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

use miso_common::{
    CircuitBreaker, DetRng, QueryGuard, RetryPolicy, SimClock, SimDuration, SimInstant,
};
use miso_core::{GuardConfig, MultistoreSystem, QueryFailure};
use miso_data::Checksum;
use miso_exec::UdfRegistry;
use miso_plan::LogicalPlan;

use crate::executor::{BaseRun, SnapExecutor};
use crate::scheduler::{Admission, FairScheduler, Lane, QueryReq};
use crate::snapshot::{EpochSnapshot, SnapshotCell};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated worker slots (queries occupying sim-time concurrently).
    pub workers: usize,
    /// Client sessions.
    pub sessions: u64,
    /// Tenants; session `s` belongs to tenant `s % tenants`.
    pub tenants: u64,
    /// Queries each session submits.
    pub queries_per_session: usize,
    /// Master seed for arrivals and query choice.
    pub seed: u64,
    /// Mean think time between a session's submissions.
    pub mean_think: SimDuration,
    /// Completions between reorganizations (0 = never reorganize).
    pub reorg_every: usize,
    /// Drain deadline: how long after a publish old-epoch queries may keep
    /// running before they are killed.
    pub drain: SimDuration,
    /// Per-tenant pending-queue cap (excess submissions are shed).
    pub queue_cap: usize,
    /// Per-tenant in-flight cap (dispatch skips tenants at the cap).
    pub tenant_inflight_cap: usize,
    /// Guard knobs: deadline, memory budget, admission capacity, overload
    /// breaker. `max_inflight` bounds queued + running queries.
    pub guard: GuardConfig,
    /// Retry/backoff policy for injected transient faults.
    pub retry: RetryPolicy,
    /// Arrival-rate multiplier for tenant 0 (the "hog"); 1.0 = no hog.
    pub hog_factor: f64,
    /// History window length for the tuner (plans of recent completions).
    pub history_len: usize,
}

impl ServeConfig {
    /// A small, fast default: tune per bench/test.
    pub fn standard() -> Self {
        ServeConfig {
            workers: 4,
            sessions: 32,
            tenants: 4,
            queries_per_session: 2,
            seed: 7,
            mean_think: SimDuration::from_secs(30),
            reorg_every: 0,
            drain: SimDuration::from_secs(600),
            queue_cap: 1_000_000,
            tenant_inflight_cap: 1_000_000,
            guard: GuardConfig::disabled(),
            retry: RetryPolicy::standard(),
            hog_factor: 1.0,
            history_len: 6,
        }
    }
}

/// Per-tenant serving outcomes.
#[derive(Debug, Clone, Default)]
pub struct TenantReport {
    /// Queries the tenant's sessions submitted.
    pub submitted: u64,
    /// Delivered results.
    pub delivered: u64,
    /// Sheds (admission-time, with `retry_after`).
    pub shed: u64,
    /// Classified mid-flight kills.
    pub killed: u64,
    /// p99 latency over the tenant's delivered queries.
    pub p99: SimDuration,
}

/// End-of-run serving report.
#[derive(Debug)]
pub struct ServeReport {
    /// Queries submitted across all sessions.
    pub submitted: u64,
    /// Delivered results (oracle-checked).
    pub delivered: u64,
    /// Delivered results whose rows did not match the serial oracle.
    pub wrong_answers: u64,
    /// Admission-time sheds.
    pub shed: u64,
    /// Classified mid-flight kills (includes drains).
    pub killed: u64,
    /// Kills from epoch-boundary drains (subset of `killed`).
    pub drained: u64,
    /// Losses with no classified failure record (must be zero).
    pub unclassified: u64,
    /// Transparent HV-only fallbacks after DW/transfer fault exhaustion.
    pub hv_fallbacks: u64,
    /// Reorganizations staged and published.
    pub reorgs: u64,
    /// Reorganizations abandoned (recovery cap exceeded under chaos).
    pub reorg_failures: u64,
    /// Final published epoch.
    pub final_epoch: u64,
    /// Sim time from first arrival to last settle.
    pub makespan: SimDuration,
    /// Delivered queries per simulated second.
    pub qps: f64,
    /// Median delivered latency.
    pub p50: SimDuration,
    /// 99th-percentile delivered latency.
    pub p99: SimDuration,
    /// Classified failure records (sheds + kills), tenant/session tagged.
    pub failures: Vec<QueryFailure>,
    /// Per-tenant breakdown.
    pub tenants: BTreeMap<String, TenantReport>,
    /// Distinct base runs actually executed (memo size).
    pub base_runs: usize,
}

#[derive(Debug)]
enum EvKind {
    Arrive(QueryReq),
    Finish { token: u64, version: u32 },
    Publish,
}

#[derive(Debug)]
struct Ev {
    at: SimInstant,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// How a dispatched query ends (decided at dispatch; settled at finish).
#[derive(Debug)]
enum Outcome {
    Deliver {
        rows: u64,
        checksum: Checksum,
        base: Arc<BaseRun>,
    },
    Loss {
        kind: &'static str,
        message: String,
        guard_kill: bool,
        drained: bool,
    },
}

#[derive(Debug)]
struct Inflight {
    req: QueryReq,
    epoch: u64,
    finish_at: SimInstant,
    outcome: Outcome,
    version: u32,
}

struct SessionState {
    rng: DetRng,
    remaining: usize,
    tenant: String,
    lane: Lane,
    think: SimDuration,
}

/// The serving engine. Owns the master multistore copy and the publication
/// cell; drives everything from one deterministic event loop.
pub struct ServeEngine {
    cfg: ServeConfig,
    master: MultistoreSystem,
    master_clock: SimClock,
    cell: SnapshotCell,
    exec: SnapExecutor,
    udfs: UdfRegistry,
    sched: FairScheduler,
    plans: Vec<(String, LogicalPlan)>,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    epoch: u64,
    busy: usize,
    next_token: u64,
    inflight: HashMap<u64, Inflight>,
    sessions: Vec<SessionState>,
    breaker: CircuitBreaker,
    backoff_rng: DetRng,
    banned: BTreeSet<String>,
    oracle: HashMap<String, (u64, Checksum)>,
    history: Vec<LogicalPlan>,
    harvest: Vec<crate::executor::HarvestCandidate>,
    harvest_seen: BTreeSet<String>,
    staged: Option<EpochSnapshot>,
    reorg_inflight: bool,
    completions_since_reorg: usize,
    // report accumulators
    submitted: u64,
    delivered: u64,
    wrong: u64,
    shed: u64,
    killed: u64,
    drained: u64,
    hv_fallbacks: u64,
    reorgs: u64,
    reorg_failures: u64,
    latencies: Vec<SimDuration>,
    failures: Vec<QueryFailure>,
    tenant_stats: BTreeMap<String, TenantReport>,
    tenant_latencies: BTreeMap<String, Vec<SimDuration>>,
    last_settle: SimInstant,
}

impl ServeEngine {
    /// Builds an engine over a freshly constructed system and workload.
    /// The system's current state becomes epoch 0.
    pub fn new(
        cfg: ServeConfig,
        master: MultistoreSystem,
        plans: Vec<(String, LogicalPlan)>,
        udfs: UdfRegistry,
    ) -> Self {
        assert!(cfg.workers > 0, "need at least one worker slot");
        assert!(!plans.is_empty(), "need a workload");
        let snap0 = EpochSnapshot {
            epoch: 0,
            hv: master.hv.clone(),
            dw: master.dw.clone(),
            catalog: master.catalog.clone(),
            transfer: master.transfer_model().clone(),
        };
        let sched = FairScheduler::new(
            cfg.queue_cap,
            cfg.tenant_inflight_cap,
            cfg.guard.shed_cooldown,
        );
        let exec = SnapExecutor::new(udfs.clone());
        let breaker = CircuitBreaker::new(cfg.guard.shed_threshold, cfg.guard.shed_cooldown);
        let backoff_rng = DetRng::new(cfg.seed ^ 0xB0FF);
        ServeEngine {
            master,
            master_clock: SimClock::new(),
            cell: SnapshotCell::new(snap0),
            exec,
            udfs,
            sched,
            plans,
            events: BinaryHeap::new(),
            seq: 0,
            epoch: 0,
            busy: 0,
            next_token: 0,
            inflight: HashMap::new(),
            sessions: Vec::new(),
            breaker,
            backoff_rng,
            banned: BTreeSet::new(),
            oracle: HashMap::new(),
            history: Vec::new(),
            harvest: Vec::new(),
            harvest_seen: BTreeSet::new(),
            staged: None,
            reorg_inflight: false,
            completions_since_reorg: 0,
            submitted: 0,
            delivered: 0,
            wrong: 0,
            shed: 0,
            killed: 0,
            drained: 0,
            hv_fallbacks: 0,
            reorgs: 0,
            reorg_failures: 0,
            latencies: Vec::new(),
            failures: Vec::new(),
            tenant_stats: BTreeMap::new(),
            tenant_latencies: BTreeMap::new(),
            last_settle: SimInstant::EPOCH,
            cfg,
        }
    }

    /// The currently published epoch (test hook).
    pub fn published_epoch(&self) -> u64 {
        self.cell.epoch()
    }

    fn push_event(&mut self, at: SimInstant, kind: EvKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            at,
            seq: self.seq,
            kind,
        }));
    }

    /// Exponential-ish think time with mean `mean` (inverse-CDF over a
    /// deterministic uniform draw, clamped away from zero).
    fn draw_think(rng: &mut DetRng, mean: SimDuration) -> SimDuration {
        let u = rng.f64().clamp(1e-9, 1.0 - 1e-9);
        let factor = -(1.0 - u).ln();
        SimDuration::from_secs_f64((mean.as_secs_f64() * factor).max(1e-6))
    }

    fn seed_sessions(&mut self) {
        let root = DetRng::new(self.cfg.seed);
        for s in 0..self.cfg.sessions {
            let mut rng = root.fork(s);
            let tenant_idx = s % self.cfg.tenants.max(1);
            let tenant = format!("t{tenant_idx}");
            let lane = match tenant_idx % 3 {
                0 => Lane::Normal,
                1 => Lane::High,
                _ => Lane::Low,
            };
            let mut think = self.cfg.mean_think;
            if tenant_idx == 0 && self.cfg.hog_factor > 1.0 {
                think = think / self.cfg.hog_factor;
            }
            let first = SimInstant::EPOCH + Self::draw_think(&mut rng, think);
            self.sessions.push(SessionState {
                rng,
                remaining: self.cfg.queries_per_session,
                tenant,
                lane,
                think,
            });
            self.schedule_arrival(s as usize, first);
        }
    }

    fn schedule_arrival(&mut self, session: usize, at: SimInstant) {
        let state = &mut self.sessions[session];
        if state.remaining == 0 {
            return;
        }
        state.remaining -= 1;
        let plan_idx = state.rng.below(self.plans.len() as u64) as usize;
        let req = QueryReq {
            seq: self.seq, // unique enough: bumped by push_event below
            tenant: state.tenant.clone(),
            session: session as u64,
            lane: state.lane,
            label: self.plans[plan_idx].0.clone(),
            plan_idx,
            arrived: at,
        };
        self.push_event(at, EvKind::Arrive(req));
    }

    /// Runs the simulation to completion and reports.
    pub fn run(mut self) -> ServeReport {
        miso_obs::gauge("serve.epoch", 0.0);
        self.seed_sessions();
        while let Some(Reverse(ev)) = self.events.pop() {
            let now = ev.at;
            match ev.kind {
                EvKind::Arrive(req) => self.on_arrive(req, now),
                EvKind::Finish { token, version } => self.on_finish(token, version, now),
                EvKind::Publish => self.on_publish(now),
            }
        }
        self.report()
    }

    // ---- Arrival / admission ---------------------------------------------

    fn on_arrive(&mut self, req: QueryReq, now: SimInstant) {
        // Schedule the session's next submission first (open-loop within the
        // session's think-time process, independent of this query's fate).
        let session = req.session as usize;
        let think = self.sessions[session].think;
        let next_at = now + Self::draw_think(&mut self.sessions[session].rng, think);
        self.schedule_arrival(session, next_at);

        self.submitted += 1;
        let tstats = self.tenant_stats.entry(req.tenant.clone()).or_default();
        tstats.submitted += 1;

        // Global admission gates, then the fair scheduler's tenant quota.
        let verdict = if self.cfg.guard.enabled && !self.breaker.allow(now) {
            Admission::Shed {
                reason: "overload shedding",
                retry_after: self.cfg.guard.shed_cooldown,
            }
        } else if self.cfg.guard.enabled
            && self.sched.pending() + self.busy >= self.cfg.guard.max_inflight
        {
            Admission::Shed {
                reason: "admission capacity",
                retry_after: self.cfg.guard.shed_cooldown,
            }
        } else {
            self.sched.submit(req.clone())
        };
        match verdict {
            Admission::Queued => {
                miso_obs::count("serve.admitted", 1);
            }
            Admission::Shed {
                reason,
                retry_after,
            } => {
                miso_obs::count("serve.shed", 1);
                self.shed += 1;
                self.tenant_stats.get_mut(&req.tenant).expect("tenant").shed += 1;
                self.failures.push(QueryFailure {
                    query: miso_common::ids::QueryId(req.seq),
                    label: req.label.clone(),
                    kind: "resource_exhausted",
                    message: format!("query shed at admission ({reason})"),
                    shed: true,
                    retry_after: Some(retry_after),
                    at: now,
                    tenant: Some(req.tenant.clone()),
                    session: Some(req.session),
                });
            }
        }
        self.dispatch_ready(now);
    }

    // ---- Dispatch ---------------------------------------------------------

    fn dispatch_ready(&mut self, now: SimInstant) {
        while self.busy < self.cfg.workers {
            let Some(req) = self.sched.pop_next() else {
                break;
            };
            self.busy += 1;
            miso_obs::gauge("serve.inflight", self.busy as f64);
            let (finish_at, outcome) = self.execute_dispatch(&req, now);
            self.next_token += 1;
            let token = self.next_token;
            self.inflight.insert(
                token,
                Inflight {
                    req,
                    epoch: self.epoch,
                    finish_at,
                    outcome,
                    version: 0,
                },
            );
            self.push_event(finish_at, EvKind::Finish { token, version: 0 });
        }
    }

    /// Decides a dispatched query's whole fate: base run + chaos/guard
    /// envelope → (finish instant, outcome). Never panics; every error path
    /// becomes a classified loss.
    fn execute_dispatch(&mut self, req: &QueryReq, now: SimInstant) -> (SimInstant, Outcome) {
        let snap = self.cell.load();
        let raw = self.plans[req.plan_idx].1.clone();
        let label = &self.plans[req.plan_idx].0;
        let deadline = if self.cfg.guard.enabled {
            self.cfg.guard.deadline.map(|d| now + d)
        } else {
            None
        };
        let budget = if self.cfg.guard.enabled {
            self.cfg.guard.mem_budget.as_bytes()
        } else {
            0
        };
        let guard = QueryGuard::new(deadline, budget);
        let retry = self.cfg.retry.clone();
        let mut service = SimDuration::ZERO;
        let mut banned = self.banned.clone();

        macro_rules! loss {
            ($kind:expr, $msg:expr, $guard_kill:expr) => {
                return (
                    now + service,
                    Outcome::Loss {
                        kind: $kind,
                        message: $msg,
                        guard_kill: $guard_kill,
                        drained: false,
                    },
                )
            };
        }

        let mut base = match self.exec.run(&snap, label, &raw, &banned, false) {
            Ok(b) => b,
            Err(e) => loss!(e.kind(), e.to_string(), false),
        };
        if let Err(e) = guard.try_charge(base.charged_bytes) {
            loss!(e.kind(), e.to_string(), true);
        }

        // HV phase.
        if base.hv_cost > SimDuration::ZERO {
            let mut attempt = 0u32;
            loop {
                match miso_chaos::hit("hv.execute") {
                    miso_chaos::Action::Proceed | miso_chaos::Action::Corrupt => {
                        service += base.hv_cost;
                        break;
                    }
                    miso_chaos::Action::Fail => {
                        if attempt >= retry.max_retries {
                            loss!("transient", "HV retries exhausted".to_string(), false);
                        }
                        attempt += 1;
                        service += retry.backoff(attempt, &mut self.backoff_rng);
                        miso_obs::count("store.retries", 1);
                    }
                    miso_chaos::Action::Crash => {
                        loss!("crash", "injected crash at hv.execute".to_string(), false)
                    }
                    miso_chaos::Action::Delay(f) => {
                        service += base.hv_cost * f;
                        break;
                    }
                    miso_chaos::Action::Stall => {
                        service += base.hv_cost * miso_chaos::STALL_FACTOR;
                        break;
                    }
                    miso_chaos::Action::Hog(f) => {
                        let extra = ((f - 1.0).max(0.0) * base.charged_bytes as f64) as u64;
                        if let Err(e) = guard.try_charge(extra) {
                            loss!(e.kind(), e.to_string(), true);
                        }
                        guard.release(extra);
                        service += base.hv_cost;
                        break;
                    }
                }
            }
        }

        // View reads: a detected corruption quarantines the copy for the
        // rest of the epoch and transparently re-plans without it — the
        // query pays for both the torn read and the recomputation, but the
        // answer stays right.
        let mut corrupted = Vec::new();
        for (view, is_hv) in &base.used_views {
            let point = if *is_hv {
                "hv.view_read"
            } else {
                "dw.view_read"
            };
            match miso_chaos::hit(point) {
                miso_chaos::Action::Corrupt => {
                    miso_obs::count("integrity.checksum_failures", 1);
                    corrupted.push(view.clone());
                }
                miso_chaos::Action::Fail => {
                    service += retry.backoff(1, &mut self.backoff_rng);
                    miso_obs::count("store.retries", 1);
                }
                miso_chaos::Action::Crash => {
                    loss!("crash", format!("injected crash at {point}"), false)
                }
                _ => {}
            }
        }
        if !corrupted.is_empty() {
            for v in corrupted {
                self.banned.insert(v.clone());
                banned.insert(v);
            }
            miso_obs::count("query.view_fallback", 1);
            match self.exec.run(&snap, label, &raw, &banned, false) {
                Ok(b) => {
                    // The original (partial) work plus the full re-plan.
                    service += b.service();
                    base = b;
                }
                Err(e) => loss!(e.kind(), e.to_string(), false),
            }
        }

        // Transfer + DW phase; transient exhaustion degrades to HV-only.
        let mut fell_back = false;
        'split: {
            for (i, cut_cost) in base.cut_costs.iter().enumerate() {
                let mut tries = 0u32;
                loop {
                    match miso_chaos::hit("transfer.ship") {
                        miso_chaos::Action::Proceed => {
                            service += *cut_cost;
                            break;
                        }
                        miso_chaos::Action::Fail => {
                            if tries >= retry.max_retries {
                                fell_back = true;
                                break 'split;
                            }
                            tries += 1;
                            service += retry.backoff(tries, &mut self.backoff_rng);
                            miso_obs::count("store.retries", 1);
                        }
                        miso_chaos::Action::Corrupt => {
                            // The corrupted ship was paid for; verify fails
                            // and the working set is re-shipped.
                            miso_obs::count("integrity.checksum_failures", 1);
                            service += *cut_cost;
                            if tries >= retry.max_retries {
                                fell_back = true;
                                break 'split;
                            }
                            tries += 1;
                            miso_obs::count("transfer.reshipped", 1);
                        }
                        miso_chaos::Action::Crash => {
                            loss!("crash", format!("injected crash shipping cut {i}"), false)
                        }
                        miso_chaos::Action::Delay(f) => {
                            service += *cut_cost * f;
                            break;
                        }
                        miso_chaos::Action::Stall => {
                            service += *cut_cost * miso_chaos::STALL_FACTOR;
                            break;
                        }
                        miso_chaos::Action::Hog(_) => {
                            service += *cut_cost;
                            break;
                        }
                    }
                }
            }
            if base.dw_cost > SimDuration::ZERO {
                let mut attempt = 0u32;
                loop {
                    match miso_chaos::hit("dw.execute") {
                        miso_chaos::Action::Proceed | miso_chaos::Action::Corrupt => {
                            service += base.dw_cost;
                            break;
                        }
                        miso_chaos::Action::Fail => {
                            if attempt >= retry.max_retries {
                                fell_back = true;
                                break 'split;
                            }
                            attempt += 1;
                            service += retry.backoff(attempt, &mut self.backoff_rng);
                            miso_obs::count("store.retries", 1);
                        }
                        miso_chaos::Action::Crash => {
                            loss!("crash", "injected crash at dw.execute".to_string(), false)
                        }
                        miso_chaos::Action::Delay(f) => {
                            service += base.dw_cost * f;
                            break;
                        }
                        miso_chaos::Action::Stall => {
                            service += base.dw_cost * miso_chaos::STALL_FACTOR;
                            break;
                        }
                        miso_chaos::Action::Hog(f) => {
                            let extra = ((f - 1.0).max(0.0) * base.charged_bytes as f64) as u64;
                            if let Err(e) = guard.try_charge(extra) {
                                loss!(e.kind(), e.to_string(), true);
                            }
                            guard.release(extra);
                            service += base.dw_cost;
                            break;
                        }
                    }
                }
            }
        }
        if fell_back {
            // DW-side faults exhausted: transparently re-run HV-only, as the
            // serial driver does. Time already spent stays charged.
            miso_obs::count("query.hv_fallback", 1);
            self.hv_fallbacks += 1;
            match self.exec.run(&snap, label, &raw, &banned, true) {
                Ok(b) => {
                    service += b.service();
                    base = b;
                }
                Err(e) => loss!(e.kind(), e.to_string(), false),
            }
        }

        // Deadline gate: the query finishes (and frees its worker) exactly
        // at its deadline instant if the envelope pushed it past.
        if let Some(d) = deadline {
            if now + service > d {
                return (
                    d,
                    Outcome::Loss {
                        kind: "cancelled",
                        message: "query exceeded its deadline".to_string(),
                        guard_kill: true,
                        drained: false,
                    },
                );
            }
        }
        (
            now + service,
            Outcome::Deliver {
                rows: base.result_rows,
                checksum: base.checksum,
                base,
            },
        )
    }

    // ---- Settle -----------------------------------------------------------

    fn on_finish(&mut self, token: u64, version: u32, now: SimInstant) {
        let stale = self
            .inflight
            .get(&token)
            .is_none_or(|inf| inf.version != version);
        if stale {
            return;
        }
        let inf = self.inflight.remove(&token).expect("checked above");
        self.busy -= 1;
        miso_obs::gauge("serve.inflight", self.busy as f64);
        self.sched.finished(&inf.req.tenant);
        self.last_settle = self.last_settle.max(now);
        let tstats = self.tenant_stats.entry(inf.req.tenant.clone()).or_default();
        match inf.outcome {
            Outcome::Deliver {
                rows,
                checksum,
                base,
            } => {
                let (orows, osum) = self.oracle_for(inf.req.plan_idx);
                if rows != orows || checksum != osum {
                    self.wrong += 1;
                    miso_obs::count("serve.wrong_answers", 1);
                }
                self.delivered += 1;
                self.tenant_stats
                    .get_mut(&inf.req.tenant)
                    .expect("tenant")
                    .delivered += 1;
                let latency = now.duration_since(inf.req.arrived);
                self.latencies.push(latency);
                self.tenant_latencies
                    .entry(inf.req.tenant.clone())
                    .or_default()
                    .push(latency);
                self.breaker.record_success();
                for cand in base.harvest.iter() {
                    if self.harvest_seen.insert(cand.def.name.clone()) {
                        self.harvest.push(cand.clone());
                    }
                }
                self.history.push(self.plans[inf.req.plan_idx].1.clone());
                if self.history.len() > self.cfg.history_len.max(1) {
                    let excess = self.history.len() - self.cfg.history_len.max(1);
                    self.history.drain(..excess);
                }
                self.completions_since_reorg += 1;
            }
            Outcome::Loss {
                kind,
                message,
                guard_kill,
                drained,
            } => {
                self.killed += 1;
                tstats.killed += 1;
                if drained {
                    self.drained += 1;
                    miso_obs::count("serve.drained", 1);
                }
                if guard_kill && self.breaker.record_failure(now) {
                    miso_obs::count("guard.overload_opened", 1);
                }
                self.failures.push(QueryFailure {
                    query: miso_common::ids::QueryId(inf.req.seq),
                    label: inf.req.label.clone(),
                    kind,
                    message,
                    shed: false,
                    retry_after: None,
                    at: now,
                    tenant: Some(inf.req.tenant.clone()),
                    session: Some(inf.req.session),
                });
            }
        }
        self.maybe_reorg(now);
        self.dispatch_ready(now);
    }

    fn oracle_for(&mut self, plan_idx: usize) -> (u64, Checksum) {
        let label = self.plans[plan_idx].0.clone();
        if let Some(hit) = self.oracle.get(&label) {
            return *hit;
        }
        // The oracle is the raw plan over base logs only — no views, no
        // split, no faults: the answer any single serial client would get.
        let was_on = miso_chaos::suspend();
        let run = self
            .master
            .hv
            .execute(&self.plans[plan_idx].1, None, &self.udfs);
        miso_chaos::resume(was_on);
        let entry = match run.and_then(|r| {
            let rows = r.execution.root_rows()?;
            Ok((rows.len() as u64, miso_data::checksum_rows(rows)))
        }) {
            Ok(pair) => pair,
            // An oracle failure would itself be a bug; make it impossible to
            // confuse with a real match by using an empty sentinel.
            Err(_) => (u64::MAX, Checksum(0)),
        };
        self.oracle.insert(label, entry);
        entry
    }

    // ---- Reorg / publish --------------------------------------------------

    fn maybe_reorg(&mut self, now: SimInstant) {
        if self.cfg.reorg_every == 0
            || self.reorg_inflight
            || self.completions_since_reorg < self.cfg.reorg_every
        {
            return;
        }
        self.completions_since_reorg = 0;
        self.reorg_inflight = true;
        // Fold harvested by-products into the master so the tuner can place
        // them; queries keep reading the published snapshot meanwhile.
        for cand in self.harvest.drain(..) {
            if !self.master.catalog.contains(&cand.def.name) {
                let name = cand.def.name.clone();
                self.master.catalog.register(cand.def);
                self.master.hv.install_view(&name, cand.schema, cand.rows);
            }
        }
        let delta = now.duration_since(self.master_clock.now());
        self.master_clock.advance(delta);
        let window = self.history.clone();
        match self.master.reorg_now(&window, &mut self.master_clock) {
            Ok(rec) => {
                self.staged = Some(EpochSnapshot {
                    epoch: self.epoch + 1,
                    hv: self.master.hv.clone(),
                    dw: self.master.dw.clone(),
                    catalog: self.master.catalog.clone(),
                    transfer: self.master.transfer_model().clone(),
                });
                self.push_event(now + rec.duration, EvKind::Publish);
            }
            Err(e) => {
                // The journaled recovery loop gave up (possible only under a
                // sustained chaos storm): stay on the old epoch, classified.
                miso_obs::count("serve.reorg_failed", 1);
                let _ = e;
                self.reorg_failures += 1;
                self.reorg_inflight = false;
            }
        }
    }

    fn on_publish(&mut self, now: SimInstant) {
        self.reorg_inflight = false;
        let Some(snap) = self.staged.take() else {
            return;
        };
        let new_epoch = snap.epoch;
        self.cell.publish(snap);
        self.epoch = new_epoch;
        self.reorgs += 1;
        miso_obs::gauge("serve.epoch", new_epoch as f64);
        // Epoch-local quarantines die with the epoch (the reorg either
        // repaired or dropped the corrupted copies).
        self.banned.clear();
        self.exec.retire_before(new_epoch);
        // Bounded drain: old-epoch stragglers get until `drain` past the
        // publish, then are killed with a classified loss.
        let drain_by = now + self.cfg.drain;
        let mut to_kill: Vec<u64> = Vec::new();
        for (&token, inf) in self.inflight.iter() {
            if inf.epoch < new_epoch && inf.finish_at > drain_by {
                to_kill.push(token);
            }
        }
        to_kill.sort_unstable();
        for token in to_kill {
            let inf = self.inflight.get_mut(&token).expect("live token");
            inf.version += 1;
            inf.finish_at = drain_by;
            inf.outcome = Outcome::Loss {
                kind: "cancelled",
                message: format!("drained at epoch {new_epoch} boundary"),
                guard_kill: false,
                drained: true,
            };
            let version = inf.version;
            self.push_event(drain_by, EvKind::Finish { token, version });
        }
        self.dispatch_ready(now);
    }

    // ---- Report -----------------------------------------------------------

    fn report(mut self) -> ServeReport {
        fn pct(sorted: &[SimDuration], p: f64) -> SimDuration {
            if sorted.is_empty() {
                return SimDuration::ZERO;
            }
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        }
        self.latencies.sort_unstable();
        for (tenant, lats) in self.tenant_latencies.iter_mut() {
            lats.sort_unstable();
            if let Some(stats) = self.tenant_stats.get_mut(tenant) {
                stats.p99 = pct(lats, 0.99);
            }
        }
        let makespan = self.last_settle.duration_since(SimInstant::EPOCH);
        let qps = if makespan > SimDuration::ZERO {
            self.delivered as f64 / makespan.as_secs_f64()
        } else {
            0.0
        };
        // Every loss must carry a classified failure record.
        let losses = self.shed + self.killed;
        let unclassified = losses.saturating_sub(self.failures.len() as u64);
        ServeReport {
            submitted: self.submitted,
            delivered: self.delivered,
            wrong_answers: self.wrong,
            shed: self.shed,
            killed: self.killed,
            drained: self.drained,
            unclassified,
            hv_fallbacks: self.hv_fallbacks,
            reorgs: self.reorgs,
            reorg_failures: self.reorg_failures,
            final_epoch: self.epoch,
            makespan,
            qps,
            p50: pct(&self.latencies, 0.50),
            p99: pct(&self.latencies, 0.99),
            failures: self.failures,
            tenants: self.tenant_stats,
            base_runs: self.exec.memo_len(),
        }
    }
}
