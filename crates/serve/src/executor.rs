//! Read-only split-plan execution against an epoch snapshot.
//!
//! [`SnapExecutor`] replays the serial driver's split-execution pipeline
//! (optimize → HV stages → ship cuts → DW finish) against an immutable
//! [`EpochSnapshot`], with two differences that make it safe to run from
//! many concurrent sessions:
//!
//! 1. **No mutation.** Working sets are handed to DW through the engine's
//!    `provided` map instead of temp-table loads, and harvesting/retention
//!    come back as *candidates* for the engine to apply to the master copy —
//!    the snapshot is never written.
//! 2. **No fault handling.** Base runs are computed with chaos suspended
//!    ([`miso_chaos::suspend`] preserves the storm's RNG stream); the engine
//!    polls the fail points itself per dispatch and applies the resulting
//!    cost/kill envelope on top of the cached base run.
//!
//! Because a snapshot is immutable, a (label, banned-view set) pair always
//! produces the same base run within an epoch. The executor memoizes on
//! exactly that key, so a thousand sessions issuing the same 32 workload
//! templates cost one real execution each per epoch — the discrete-event
//! serving loop then scales to large session counts.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use miso_common::ids::{NodeId, QueryId};
use miso_common::{ByteSize, MisoError, QueryGuard, Result, SimDuration};
use miso_data::{checksum_rows, Checksum, Row, Schema};
use miso_exec::UdfRegistry;
use miso_optimizer::optimize::OptimizerEnv;
use miso_optimizer::{optimize, Design};
use miso_plan::estimate::MapStats;
use miso_plan::fingerprint::{fingerprint_all, fnv1a_str, fnv1a_words};
use miso_plan::LogicalPlan;
use miso_views::ViewDef;

use crate::snapshot::EpochSnapshot;

/// A materialized HV by-product the engine may install into the master
/// catalog (the concurrent analogue of the serial driver's view harvest).
#[derive(Debug, Clone)]
pub struct HarvestCandidate {
    /// Catalog definition (fingerprint name, size, rows, checksum).
    pub def: ViewDef,
    /// Output schema.
    pub schema: Schema,
    /// Materialized rows (shared with the execution that produced them).
    pub rows: Arc<Vec<Row>>,
}

/// One fault-free execution of a query against a snapshot: the costs,
/// result identity, and by-products the engine needs to serve dispatches.
#[derive(Debug)]
pub struct BaseRun {
    /// Simulated HV execution time (zero for DW-only plans).
    pub hv_cost: SimDuration,
    /// Per-cut ship time (dump + wire + load), in cut order.
    pub cut_costs: Vec<SimDuration>,
    /// Simulated DW execution time (zero for HV-only plans).
    pub dw_cost: SimDuration,
    /// Total bytes shipped HV→DW.
    pub bytes_transferred: ByteSize,
    /// Peak bytes a guard charges for this run (join/aggregate scratch +
    /// materializations), measured with an unlimited-budget guard.
    pub charged_bytes: u64,
    /// Root row count.
    pub result_rows: u64,
    /// Order-insensitive multiset checksum of the root rows — compared
    /// against the serial oracle on delivery.
    pub checksum: Checksum,
    /// Views the chosen plan reads, tagged with whether the HV copy is the
    /// one read (`true`) or the DW copy (`false`).
    pub used_views: Vec<(String, bool)>,
    /// Harvestable HV stage outputs not already in the snapshot catalog.
    pub harvest: Vec<HarvestCandidate>,
}

impl BaseRun {
    /// End-to-end fault-free service time.
    pub fn service(&self) -> SimDuration {
        self.hv_cost + self.cut_costs.iter().copied().sum::<SimDuration>() + self.dw_cost
    }
}

/// Memoizing snapshot executor. One per engine; not itself thread-safe —
/// the engine's event loop serializes access.
#[derive(Debug)]
pub struct SnapExecutor {
    udfs: UdfRegistry,
    memo: HashMap<(u64, u64, u64, bool), Arc<BaseRun>>,
}

impl SnapExecutor {
    /// An executor evaluating UDFs from `udfs`.
    pub fn new(udfs: UdfRegistry) -> Self {
        SnapExecutor {
            udfs,
            memo: HashMap::new(),
        }
    }

    /// Memoized base runs computed so far (test/diagnostic hook).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Drops base runs for epochs older than `epoch` (published snapshots
    /// that no in-flight query references any more).
    pub fn retire_before(&mut self, epoch: u64) {
        self.memo.retain(|(e, _, _, _), _| *e >= epoch);
    }

    /// The fault-free run of `raw` against `snap`, excluding `banned` views
    /// from planning. With `hv_only`, DW is out of the design entirely (the
    /// concurrent analogue of the serial driver's HV fallback).
    pub fn run(
        &mut self,
        snap: &EpochSnapshot,
        label: &str,
        raw: &LogicalPlan,
        banned: &BTreeSet<String>,
        hv_only: bool,
    ) -> Result<Arc<BaseRun>> {
        let banned_fp = fnv1a_words(banned.iter().map(|n| fnv1a_str(n)).collect::<Vec<_>>());
        let key = (snap.epoch, fnv1a_str(label), banned_fp, hv_only);
        if let Some(hit) = self.memo.get(&key) {
            return Ok(hit.clone());
        }
        // Base runs are fault-free by definition; the storm's RNG stream and
        // hit counters pass through untouched.
        let was_on = miso_chaos::suspend();
        let computed = self.compute(snap, raw, banned, hv_only);
        miso_chaos::resume(was_on);
        let run = Arc::new(computed?);
        self.memo.insert(key, run.clone());
        Ok(run)
    }

    fn compute(
        &self,
        snap: &EpochSnapshot,
        raw: &LogicalPlan,
        banned: &BTreeSet<String>,
        hv_only: bool,
    ) -> Result<BaseRun> {
        let usable = |name: &String| !banned.contains(name) && !snap.catalog.is_quarantined(name);
        let design = Design {
            hv_views: snap.hv.view_names().into_iter().filter(usable).collect(),
            dw_views: if hv_only {
                HashSet::new()
            } else {
                snap.dw.view_names().into_iter().filter(usable).collect()
            },
        };
        let mut stats = MapStats::new();
        snap.hv.fill_stats(&mut stats);
        snap.dw.fill_stats(&mut stats);
        for def in snap.catalog.defs() {
            stats.set_view(
                def.name.clone(),
                def.rows as f64,
                def.size.as_bytes() as f64,
            );
        }
        let planned = {
            let env = OptimizerEnv {
                stats: &stats,
                hv: &snap.hv.cost_model,
                dw: &snap.dw.cost_model,
                transfer: &snap.transfer,
                catalog: Some(&snap.catalog),
            };
            optimize(raw, &design, &env)?
        };
        let plan = &planned.plan;
        let hv_set: HashSet<NodeId> = planned.split.hv_nodes().iter().copied().collect();
        let dw_set: HashSet<NodeId> = plan
            .nodes()
            .iter()
            .map(|n| n.id)
            .filter(|id| !hv_set.contains(id))
            .collect();
        if hv_only && !dw_set.is_empty() {
            return Err(MisoError::Plan(
                "hv_only planning produced DW-side nodes".to_string(),
            ));
        }

        // Unlimited budget: this guard only *measures* what a real per-query
        // guard would charge, so the engine can replay the charge cheaply.
        let meter = QueryGuard::new(None, 0);
        let mut hv_cost = SimDuration::ZERO;
        let mut cut_costs = Vec::new();
        let mut bytes_transferred = ByteSize::ZERO;
        let mut provided: HashMap<NodeId, Arc<Vec<Row>>> = HashMap::new();
        let mut harvest = Vec::new();
        let mut root: Option<(u64, Checksum)> = None;

        if !hv_set.is_empty() {
            let run = snap
                .hv
                .execute_guarded(plan, Some(&hv_set), &self.udfs, &meter)?;
            hv_cost = run.cost;
            for cut in planned.split.cut_nodes(plan) {
                let rows = run.execution.output(cut).clone();
                let bytes = run.execution.output_bytes(cut);
                bytes_transferred += bytes;
                cut_costs.push(
                    snap.hv.dump_cost(bytes)
                        + snap.transfer.transfer_cost(bytes)
                        + snap.dw.load_cost(bytes),
                );
                provided.insert(cut, rows);
            }
            if planned.split.is_hv_only(plan) {
                let rows = run.execution.root_rows()?;
                root = Some((rows.len() as u64, checksum_rows(rows)));
            }
            let fps = fingerprint_all(plan);
            for m in &run.materialized {
                if plan.node(m.node).op.is_scan() {
                    continue;
                }
                let Some(fp) = fps.get(&m.node) else { continue };
                let name = fp.view_name();
                if snap.catalog.contains(&name) {
                    continue;
                }
                let def = ViewDef::from_plan(
                    plan.subplan(m.node),
                    m.size,
                    m.rows.len() as u64,
                    QueryId(0),
                )
                .with_checksum(checksum_rows(&m.rows));
                harvest.push(HarvestCandidate {
                    def,
                    schema: m.schema.clone(),
                    rows: m.rows.clone(),
                });
            }
        }

        let mut dw_cost = SimDuration::ZERO;
        if !dw_set.is_empty() {
            let run = snap.dw.execute_guarded(
                plan,
                Some(&dw_set),
                provided.clone(),
                &self.udfs,
                &meter,
            )?;
            dw_cost = run.cost;
            let rows = run.execution.root_rows()?;
            root = Some((rows.len() as u64, checksum_rows(rows)));
        }
        let (result_rows, checksum) = root
            .ok_or_else(|| MisoError::Plan("split produced neither HV nor DW root".to_string()))?;

        let used_views = planned
            .used_views
            .iter()
            .map(|v| (v.clone(), snap.hv.has_view(v)))
            .collect();
        Ok(BaseRun {
            hv_cost,
            cut_costs,
            dw_cost,
            bytes_transferred,
            charged_bytes: meter.peak(),
            result_rows,
            checksum,
            used_views,
            harvest,
        })
    }
}
