//! Epoch snapshots: the immutable multistore images queries execute against.
//!
//! The serving layer never lets a query read mutable tuner state. Instead it
//! publishes an [`EpochSnapshot`] — a self-contained, immutable image of the
//! HV store, DW store, view catalog, and transfer model — behind a
//! [`SnapshotCell`]. Loading a snapshot is a read-lock plus an `Arc` clone;
//! publishing a new epoch is a write-lock plus a pointer swap. A reader
//! therefore observes *either* the pre-reorg image *or* the post-reorg image,
//! never a mix: the catalog, HV residency, and DW residency travel as one
//! atomic unit.
//!
//! Row payloads inside the stores are `Arc<Vec<Row>>`, so cloning a store
//! into a snapshot shares data rather than copying it; the clone cost is
//! proportional to the number of logs/views, not the number of rows.

use std::sync::{Arc, RwLock};

use miso_dw::DwStore;
use miso_hv::HvStore;
use miso_optimizer::TransferModel;
use miso_views::ViewCatalog;

/// One immutable, self-consistent image of the multistore.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Monotonic epoch number (0 = the image the server booted with).
    pub epoch: u64,
    /// The HV store as of this epoch (logs + opportunistic views).
    pub hv: HvStore,
    /// The DW store as of this epoch (permanent views).
    pub dw: DwStore,
    /// The view catalog as of this epoch.
    pub catalog: ViewCatalog,
    /// The inter-store transfer model.
    pub transfer: TransferModel,
}

/// The single publication point: readers load, the tuner publishes.
#[derive(Debug)]
pub struct SnapshotCell {
    inner: RwLock<Arc<EpochSnapshot>>,
}

impl SnapshotCell {
    /// Wraps the boot-time image as epoch `snap.epoch`.
    pub fn new(snap: EpochSnapshot) -> Self {
        SnapshotCell {
            inner: RwLock::new(Arc::new(snap)),
        }
    }

    /// The currently published snapshot. Queries call this exactly once, at
    /// admission, and hold the `Arc` for their whole lifetime — that is what
    /// makes "drained queries finish against their admission-time snapshot"
    /// true by construction.
    pub fn load(&self) -> Arc<EpochSnapshot> {
        self.inner.read().expect("snapshot lock").clone()
    }

    /// Atomically publishes a new epoch, returning the replaced snapshot.
    ///
    /// In-flight readers keep their old `Arc`; new loads see `snap`. There
    /// is no intermediate state.
    pub fn publish(&self, snap: EpochSnapshot) -> Arc<EpochSnapshot> {
        let mut slot = self.inner.write().expect("snapshot lock");
        std::mem::replace(&mut *slot, Arc::new(snap))
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("snapshot lock").epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64) -> EpochSnapshot {
        EpochSnapshot {
            epoch,
            hv: HvStore::new(),
            dw: DwStore::new(),
            catalog: ViewCatalog::new(),
            transfer: TransferModel::default(),
        }
    }

    #[test]
    fn load_returns_published_epoch() {
        let cell = SnapshotCell::new(snap(0));
        assert_eq!(cell.load().epoch, 0);
        cell.publish(snap(1));
        assert_eq!(cell.load().epoch, 1);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn inflight_reader_keeps_admission_snapshot() {
        let cell = SnapshotCell::new(snap(0));
        let held = cell.load();
        cell.publish(snap(7));
        // The old Arc is unaffected by the publish.
        assert_eq!(held.epoch, 0);
        assert_eq!(cell.load().epoch, 7);
    }
}
