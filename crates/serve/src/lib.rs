//! miso-serve: concurrent multi-tenant serving for the MISO multistore.
//!
//! The serial driver in `miso-core` executes one query at a time and stops
//! the world to reorganize. This crate turns that engine into a *server*:
//!
//! * **Epoch snapshots** ([`snapshot`]) — queries execute against an
//!   immutable `Arc`-published image of the catalog + view state, so a
//!   thousand concurrent readers and an in-progress reorganization can never
//!   observe (or cause) a half-updated design.
//! * **Read-only split execution** ([`executor`]) — the optimizer → HV →
//!   ship → DW pipeline replayed against a snapshot, memoized per epoch so
//!   repeated workload templates cost one real execution each.
//! * **Fair admission** ([`scheduler`]) — priority lanes and per-tenant
//!   quotas in front of the guard layer's admission/overload breaker: a hog
//!   tenant is shed with `retry_after`, everyone else keeps flowing.
//! * **The serving engine** ([`engine`]) — a deterministic discrete-event
//!   loop tying it together: arrivals, worker slots, chaos/guard envelopes,
//!   online reorg with bounded drain, and oracle-checked delivery.

pub mod engine;
pub mod executor;
pub mod scheduler;
pub mod snapshot;

pub use engine::{ServeConfig, ServeEngine, ServeReport, TenantReport};
pub use executor::{BaseRun, HarvestCandidate, SnapExecutor};
pub use scheduler::{Admission, FairScheduler, Lane, QueryReq};
pub use snapshot::{EpochSnapshot, SnapshotCell};
