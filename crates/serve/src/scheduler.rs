//! Fair admission scheduling: priority lanes + per-tenant quotas.
//!
//! The scheduler sits between client sessions and the worker pool. Requests
//! are grouped by tenant inside three priority lanes; dispatch is a weighted
//! round-robin over lanes (High gets 4 grants per cycle, Normal 2, Low 1)
//! and a plain round-robin over tenants within a lane. Two quotas bound any
//! single tenant's footprint:
//!
//! * a **queue cap**: submissions beyond `queue_cap` pending requests are
//!   shed at admission (the client gets a `retry_after`), and
//! * an **in-flight cap**: a tenant at `tenant_inflight_cap` running queries
//!   is skipped by dispatch until one finishes.
//!
//! Together these make a hog tenant degrade *itself*: its excess load is
//! shed or queued behind its own quota while other tenants' requests keep
//! flowing. All state is plain data structures mutated from the engine's
//! event loop, so scheduling decisions are deterministic.

use std::collections::{HashMap, VecDeque};

use miso_common::{SimDuration, SimInstant};

/// Priority lane of a request. Lane weights are `High:Normal:Low = 4:2:1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Interactive / dashboard traffic.
    High,
    /// Default ad-hoc analyst traffic.
    Normal,
    /// Batch / background traffic.
    Low,
}

impl Lane {
    const ALL: [Lane; 3] = [Lane::High, Lane::Normal, Lane::Low];

    fn index(self) -> usize {
        match self {
            Lane::High => 0,
            Lane::Normal => 1,
            Lane::Low => 2,
        }
    }

    /// Dispatch grants per round-robin cycle.
    fn weight(self) -> u32 {
        match self {
            Lane::High => 4,
            Lane::Normal => 2,
            Lane::Low => 1,
        }
    }
}

/// One client request waiting for (or holding) a worker.
#[derive(Debug, Clone)]
pub struct QueryReq {
    /// Global submission sequence number (doubles as the query id).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Client session within the tenant.
    pub session: u64,
    /// Priority lane.
    pub lane: Lane,
    /// Workload query label (e.g. `A1v2`).
    pub label: String,
    /// Index of the query's plan in the engine's workload table.
    pub plan_idx: usize,
    /// Submission time.
    pub arrived: SimInstant,
}

/// Outcome of a submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Queued for dispatch.
    Queued,
    /// Shed at admission; the client should retry after the hint.
    Shed {
        /// Why the request was shed (stable, test-asserted tags).
        reason: &'static str,
        /// Backoff hint returned to the client.
        retry_after: SimDuration,
    },
}

#[derive(Debug, Default)]
struct LaneState {
    /// Tenant rotation order (first-submission order) and per-tenant queues.
    rotation: Vec<String>,
    queues: HashMap<String, VecDeque<QueryReq>>,
    cursor: usize,
    credits: u32,
}

/// Weighted-fair admission queue. See module docs for the policy.
#[derive(Debug)]
pub struct FairScheduler {
    lanes: [LaneState; 3],
    inflight: HashMap<String, usize>,
    queue_cap: usize,
    tenant_inflight_cap: usize,
    shed_hint: SimDuration,
    pending: usize,
    lane_cursor: usize,
}

impl FairScheduler {
    /// A scheduler with the given per-tenant quotas. `shed_hint` is the
    /// `retry_after` returned on queue-cap sheds.
    pub fn new(queue_cap: usize, tenant_inflight_cap: usize, shed_hint: SimDuration) -> Self {
        let mut lanes: [LaneState; 3] = Default::default();
        for lane in Lane::ALL {
            lanes[lane.index()].credits = lane.weight();
        }
        FairScheduler {
            lanes,
            inflight: HashMap::new(),
            queue_cap: queue_cap.max(1),
            tenant_inflight_cap: tenant_inflight_cap.max(1),
            shed_hint,
            pending: 0,
            lane_cursor: 0,
        }
    }

    /// Requests waiting for a worker.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Queued requests for one tenant (all lanes).
    pub fn tenant_pending(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .filter_map(|l| l.queues.get(tenant))
            .map(VecDeque::len)
            .sum()
    }

    /// Admits or sheds a request. Shedding happens here only for the
    /// tenant's own queue cap; global overload shedding (breaker, admission
    /// capacity) is the engine's responsibility *before* calling this.
    pub fn submit(&mut self, req: QueryReq) -> Admission {
        if self.tenant_pending(&req.tenant) >= self.queue_cap {
            return Admission::Shed {
                reason: "tenant queue cap",
                retry_after: self.shed_hint,
            };
        }
        let lane = &mut self.lanes[req.lane.index()];
        let queue = lane.queues.entry(req.tenant.clone()).or_insert_with(|| {
            lane.rotation.push(req.tenant.clone());
            VecDeque::new()
        });
        queue.push_back(req);
        self.pending += 1;
        Admission::Queued
    }

    /// The next dispatchable request, honoring lane weights, tenant
    /// round-robin, and the per-tenant in-flight cap. `None` when every
    /// queued request belongs to a tenant at its cap (or nothing is queued).
    pub fn pop_next(&mut self) -> Option<QueryReq> {
        if self.pending == 0 {
            return None;
        }
        // Two sweeps: the first honors remaining credits, the second refills
        // and retries so a lane with queued work is never starved by
        // exhausted credits alone.
        for sweep in 0..2 {
            if sweep == 1 {
                for lane in Lane::ALL {
                    self.lanes[lane.index()].credits = lane.weight();
                }
            }
            for offset in 0..3 {
                let li = (self.lane_cursor + offset) % 3;
                if self.lanes[li].credits == 0 {
                    continue;
                }
                if let Some(req) = self.pop_lane(li) {
                    self.lanes[li].credits -= 1;
                    if self.lanes[li].credits == 0 {
                        self.lane_cursor = (li + 1) % 3;
                    }
                    self.pending -= 1;
                    *self.inflight.entry(req.tenant.clone()).or_insert(0) += 1;
                    return Some(req);
                }
            }
        }
        None
    }

    /// Pops the next request from lane `li`'s tenant rotation, skipping
    /// tenants with empty queues or at their in-flight cap.
    fn pop_lane(&mut self, li: usize) -> Option<QueryReq> {
        let lane = &mut self.lanes[li];
        let n = lane.rotation.len();
        for step in 0..n {
            let ti = (lane.cursor + step) % n;
            let tenant = &lane.rotation[ti];
            if self.inflight.get(tenant).copied().unwrap_or(0) >= self.tenant_inflight_cap {
                continue;
            }
            if let Some(queue) = lane.queues.get_mut(tenant) {
                if let Some(req) = queue.pop_front() {
                    lane.cursor = (ti + 1) % n;
                    return Some(req);
                }
            }
        }
        None
    }

    /// Marks a dispatched request finished, freeing its tenant's slot.
    pub fn finished(&mut self, tenant: &str) {
        if let Some(count) = self.inflight.get_mut(tenant) {
            *count = count.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64, tenant: &str, lane: Lane) -> QueryReq {
        QueryReq {
            seq,
            tenant: tenant.to_string(),
            session: seq,
            lane,
            label: format!("q{seq}"),
            plan_idx: 0,
            arrived: SimInstant::EPOCH,
        }
    }

    #[test]
    fn round_robins_across_tenants() {
        let mut s = FairScheduler::new(100, 100, SimDuration::ZERO);
        for i in 0..4 {
            s.submit(req(i, "a", Lane::Normal));
            s.submit(req(100 + i, "b", Lane::Normal));
        }
        let order: Vec<String> = std::iter::from_fn(|| s.pop_next())
            .map(|r| r.tenant)
            .collect();
        assert_eq!(order, ["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn high_lane_gets_more_grants() {
        let mut s = FairScheduler::new(100, 100, SimDuration::ZERO);
        for i in 0..8 {
            s.submit(req(i, "hi", Lane::High));
            s.submit(req(100 + i, "lo", Lane::Low));
        }
        let first_eight: Vec<String> = (0..8)
            .filter_map(|_| s.pop_next())
            .map(|r| r.tenant)
            .collect();
        let hi = first_eight.iter().filter(|t| *t == "hi").count();
        assert!(hi >= 5, "high lane should dominate early grants, got {hi}");
        // Everything still drains eventually.
        let rest = std::iter::from_fn(|| s.pop_next()).count();
        assert_eq!(rest, 8);
    }

    #[test]
    fn queue_cap_sheds_only_the_hog() {
        let mut s = FairScheduler::new(2, 100, SimDuration::from_secs(5));
        assert_eq!(s.submit(req(0, "hog", Lane::Normal)), Admission::Queued);
        assert_eq!(s.submit(req(1, "hog", Lane::Normal)), Admission::Queued);
        let shed = s.submit(req(2, "hog", Lane::Normal));
        assert!(matches!(
            shed,
            Admission::Shed {
                reason: "tenant queue cap",
                ..
            }
        ));
        // A different tenant is unaffected.
        assert_eq!(s.submit(req(3, "calm", Lane::Normal)), Admission::Queued);
    }

    #[test]
    fn inflight_cap_skips_saturated_tenant() {
        let mut s = FairScheduler::new(100, 1, SimDuration::ZERO);
        s.submit(req(0, "hog", Lane::Normal));
        s.submit(req(1, "hog", Lane::Normal));
        s.submit(req(2, "calm", Lane::Normal));
        let first = s.pop_next().unwrap();
        assert_eq!(first.tenant, "hog");
        // hog is at its cap: next dispatch must be calm.
        let second = s.pop_next().unwrap();
        assert_eq!(second.tenant, "calm");
        assert!(
            s.pop_next().is_none(),
            "hog's second query waits for the slot"
        );
        s.finished("hog");
        assert_eq!(s.pop_next().unwrap().tenant, "hog");
    }
}
