//! Delta maintainability analysis for materialized views.
//!
//! Given a view's defining plan and the base log that just grew, this
//! module decides whether the view can be maintained **incrementally** from
//! the appended delta — and if so, produces the rewritten *delta plan* the
//! executor runs over just the new lines. The per-operator algebra (for
//! append-only deltas; logs never see in-place updates):
//!
//! | operator            | delta rule                                       |
//! |---------------------|--------------------------------------------------|
//! | `ScanLog` (changed) | Δout = parse(Δlines)                             |
//! | `Filter`/`Project`/`Udf` | per-record: Δout = op(Δin)                  |
//! | `Join` (Δ on probe/left side) | Δout = Δleft ⋈ stored build side       |
//! | `Join` (Δ on build/right side) | **full refresh** (output interleaves) |
//! | `Aggregate` (topmost, under `Project`s only) | fold Δin into state     |
//! | `Aggregate` (mid-plan), `Sort`, `Limit` | **full refresh**             |
//! | `ScanView` anywhere | **full refresh** (view-over-view chains)         |
//!
//! An aggregate may sit under a chain of `Project`s (lowering always adds a
//! final SELECT-list projection): projects are 1:1 per row, so a group
//! update stays position-stable through them — the maintainer re-evaluates
//! the projection over just the changed aggregate rows and patches the view
//! in place. A `Filter` above the aggregate would *remove* rows when a
//! group's updated value leaves the predicate, which append-only
//! maintenance cannot express — full refresh.
//!
//! The rules are chosen so a delta-applied view is **bit-identical** to a
//! full rebuild, not merely set-equal: the engine emits join output in
//! left-row × right-insertion order and aggregate groups in first-seen
//! order, both of which are prefix-stable under appends to the probe side.
//! A delta on the build side would interleave new matches among old output
//! rows, and a mid-plan aggregate would feed *changed* (not appended) rows
//! downstream — both fall back to recomputation, with the reason reported.
//!
//! Float accumulation (`AVG`, and `SUM` over floats) is excluded even at
//! the root: IEEE 754 addition is not associative, and the morsel-parallel
//! rebuild folds partial sums in morsel order while a delta fold would run
//! in row order. Integer sums wrap, so they stay order-independent.

use miso_common::ids::NodeId;
use miso_data::DataType;
use miso_plan::expr::{AggExpr, AggFunc, Expr};
use miso_plan::{LogicalPlan, Operator, PlanBuilder};
use std::collections::HashSet;

/// Name of the synthetic `ScanView` leaf standing in for a join's stored
/// build side in a delta plan. The `§` prefix keeps it disjoint from real
/// view names (fingerprint strings), and the node id is the right input's
/// id in the *defining* plan.
pub fn build_side_name(node: NodeId) -> String {
    format!("§ivm:{}", node.raw())
}

/// A join build side the maintainer must snapshot: the right input's rows,
/// captured when maintenance state is built and probed on every delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildSide {
    /// The right input node in the defining plan.
    pub node: NodeId,
    /// The `ScanView` name the delta plan references it by.
    pub name: String,
}

/// A per-record delta pipeline: run `plan` over just the delta lines (join
/// build sides resolved from stored state) and append its output rows to
/// the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaAppend {
    /// The rewritten delta plan (build sides replaced by `ScanView`s).
    pub plan: LogicalPlan,
    /// Build sides the plan references, in first-use order (deduplicated).
    pub builds: Vec<BuildSide>,
}

/// A topmost-aggregate fold: run `input` over the delta, fold its rows
/// into the view's stored accumulator state, then push the changed
/// aggregate rows through the `post` projection layers and patch the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaAggregate {
    /// Delta pipeline for the aggregate's input subtree.
    pub input: DeltaAppend,
    /// The aggregate node in the defining plan.
    pub agg: NodeId,
    /// Grouping columns.
    pub group_by: Vec<usize>,
    /// Aggregates computed per group.
    pub aggs: Vec<AggExpr>,
    /// Projection layers between the aggregate and the root, bottom-up
    /// (often exactly one: the lowered SELECT-list projection). Each layer
    /// maps one aggregate output row to one view row.
    pub post: Vec<Vec<(String, Expr)>>,
}

/// How a view can be maintained from an append-only delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintPlan {
    /// Delta rows append to the stored view.
    Append(DeltaAppend),
    /// Delta rows fold into stored aggregate state.
    Aggregate(Box<DeltaAggregate>),
}

impl MaintPlan {
    /// The delta pipeline to execute (the aggregate's input for folds).
    pub fn delta_plan(&self) -> &LogicalPlan {
        match self {
            MaintPlan::Append(a) => &a.plan,
            MaintPlan::Aggregate(a) => &a.input.plan,
        }
    }

    /// Build sides the delta pipeline references.
    pub fn builds(&self) -> &[BuildSide] {
        match self {
            MaintPlan::Append(a) => &a.builds,
            MaintPlan::Aggregate(a) => &a.input.builds,
        }
    }
}

/// Why a view must be fully recomputed instead of delta-maintained. The
/// first five are structural (decided from the plan alone); the rest are
/// runtime policy decisions made by the maintenance layer and carried here
/// so reports use one vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FullReason {
    /// The view does not scan the changed log at all.
    Unaffected,
    /// The view scans another view (view-over-view chains re-snapshot).
    ViewOverView,
    /// An operator on the delta path has no append-only delta rule.
    NonMaintainableOp(String),
    /// The changed log feeds a join's build (right) side.
    DeltaOnBuildSide,
    /// `AVG`/float `SUM`: IEEE 754 accumulation is order-sensitive.
    FloatAggregate,
    /// Policy: the delta is too large a fraction of the base for the
    /// delta path to win.
    DeltaTooLarge {
        /// Rows in the delta batch.
        delta_rows: u64,
        /// Rows in the base log before the append.
        base_rows: u64,
    },
    /// The view is quarantined; repair goes through the integrity path.
    Quarantined,
    /// No maintenance state yet — this refresh builds it (warm-up).
    StateCold,
    /// Stored maintenance state disagrees with the catalog checksum.
    StateStale,
    /// Incremental maintenance is switched off (`MISO_IVM=0`).
    IvmDisabled,
}

impl std::fmt::Display for FullReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FullReason::Unaffected => write!(f, "view does not scan the changed log"),
            FullReason::ViewOverView => write!(f, "view scans another view"),
            FullReason::NonMaintainableOp(op) => write!(f, "non-maintainable operator {op}"),
            FullReason::DeltaOnBuildSide => write!(f, "delta reaches a join build side"),
            FullReason::FloatAggregate => write!(f, "float aggregate is order-sensitive"),
            FullReason::DeltaTooLarge {
                delta_rows,
                base_rows,
            } => write!(f, "delta too large ({delta_rows} rows vs {base_rows} base)"),
            FullReason::Quarantined => write!(f, "view is quarantined"),
            FullReason::StateCold => write!(f, "no maintenance state yet"),
            FullReason::StateStale => write!(f, "maintenance state out of date"),
            FullReason::IvmDisabled => write!(f, "incremental maintenance disabled"),
        }
    }
}

impl FullReason {
    /// Short machine-readable tag for counters and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FullReason::Unaffected => "unaffected",
            FullReason::ViewOverView => "view_over_view",
            FullReason::NonMaintainableOp(_) => "non_maintainable_op",
            FullReason::DeltaOnBuildSide => "delta_on_build_side",
            FullReason::FloatAggregate => "float_aggregate",
            FullReason::DeltaTooLarge { .. } => "delta_too_large",
            FullReason::Quarantined => "quarantined",
            FullReason::StateCold => "state_cold",
            FullReason::StateStale => "state_stale",
            FullReason::IvmDisabled => "ivm_disabled",
        }
    }

    /// Whether this full refresh is a *fallback* — the plan shape is
    /// maintainable but a runtime condition forced recomputation this time.
    pub fn is_fallback(&self) -> bool {
        matches!(
            self,
            FullReason::DeltaTooLarge { .. }
                | FullReason::Quarantined
                | FullReason::StateCold
                | FullReason::StateStale
                | FullReason::FloatAggregate
        )
    }
}

/// Classifies how (whether) `plan` can be maintained when `changed_log`
/// grows by an append-only delta. On success, the returned [`MaintPlan`]
/// carries the rewritten delta pipeline; on failure, the [`FullReason`]
/// says exactly why a full recomputation is required.
pub fn analyze_maintenance(plan: &LogicalPlan, changed_log: &str) -> Result<MaintPlan, FullReason> {
    if !plan.scanned_views().is_empty() {
        return Err(FullReason::ViewOverView);
    }
    let reachable = plan.descendants(plan.root());
    // Taint pass: a node is tainted iff its subtree scans the changed log.
    // Arena order is topological, so one forward sweep suffices.
    let mut tainted: HashSet<NodeId> = HashSet::new();
    for node in plan.nodes() {
        if !reachable.contains(&node.id) {
            continue;
        }
        let t = match &node.op {
            Operator::ScanLog { log } => log == changed_log,
            _ => node.inputs.iter().any(|i| tainted.contains(i)),
        };
        if t {
            tainted.insert(node.id);
        }
    }
    if !tainted.contains(&plan.root()) {
        return Err(FullReason::Unaffected);
    }
    // Rule pass: every tainted (delta-path) operator must have a delta rule.
    let root = plan.root();
    let mut tainted_aggs: Vec<NodeId> = Vec::new();
    for node in plan.nodes() {
        if !tainted.contains(&node.id) {
            continue;
        }
        match &node.op {
            Operator::ScanLog { .. }
            | Operator::Filter { .. }
            | Operator::Project { .. }
            | Operator::Udf { .. } => {}
            Operator::Join { .. } => {
                if tainted.contains(&node.inputs[1]) {
                    return Err(FullReason::DeltaOnBuildSide);
                }
            }
            Operator::Aggregate { aggs, .. } => {
                let input_schema = &plan.node(node.inputs[0]).schema;
                for agg in aggs {
                    match agg.func {
                        AggFunc::Avg => return Err(FullReason::FloatAggregate),
                        AggFunc::Sum => {
                            // A statically-Float sum is certainly order-
                            // sensitive; Int stays int, and dynamically
                            // typed inputs are re-checked at fold time.
                            if let Some(e) = &agg.input {
                                if e.infer_type(input_schema) == DataType::Float {
                                    return Err(FullReason::FloatAggregate);
                                }
                            }
                        }
                        AggFunc::Count | AggFunc::CountDistinct | AggFunc::Min | AggFunc::Max => {}
                    }
                }
                tainted_aggs.push(node.id);
            }
            op @ (Operator::Sort { .. } | Operator::Limit { .. }) => {
                return Err(FullReason::NonMaintainableOp(op.label()));
            }
            Operator::ScanView { .. } => unreachable!("scanned views already rejected"),
        }
    }
    // At most one aggregate, and it must hang off the root through a chain
    // of per-row projections (the lowered SELECT-list projection): a group
    // update then stays position-stable all the way to the stored view.
    type AggSpine = (NodeId, Vec<usize>, Vec<AggExpr>, Vec<Vec<(String, Expr)>>);
    let root_agg: Option<AggSpine> = match tainted_aggs.as_slice() {
        [] => None,
        [agg] => {
            let mut post: Vec<Vec<(String, Expr)>> = Vec::new();
            let mut cur = root;
            while cur != *agg {
                match &plan.node(cur).op {
                    Operator::Project { exprs } => {
                        post.push(exprs.clone());
                        cur = plan.node(cur).inputs[0];
                    }
                    op => {
                        return Err(FullReason::NonMaintainableOp(format!(
                            "{} above the aggregate",
                            op.label()
                        )))
                    }
                }
            }
            post.reverse();
            let Operator::Aggregate { group_by, aggs } = &plan.node(*agg).op else {
                unreachable!("collected from Aggregate arms only");
            };
            Some((*agg, group_by.clone(), aggs.clone(), post))
        }
        _ => {
            return Err(FullReason::NonMaintainableOp(
                "multiple aggregates on the delta path".into(),
            ))
        }
    };
    // Rewrite pass: copy the tainted spine below the aggregate (or the
    // whole spine for per-record views), replacing every join's (clean)
    // build side with a ScanView over the stored snapshot. The aggregate
    // and its post-projections are not part of the delta plan — the fold
    // into stored accumulators happens outside the engine.
    let delta_root = match &root_agg {
        Some((agg, ..)) => plan.node(*agg).inputs[0],
        None => root,
    };
    let skip_above: HashSet<NodeId> = match &root_agg {
        Some((agg, ..)) => {
            let below = plan.descendants(*agg);
            tainted
                .iter()
                .copied()
                .filter(|id| *id == *agg || !below.contains(id))
                .collect()
        }
        None => HashSet::new(),
    };
    let mut b = PlanBuilder::new();
    let mut mapping = std::collections::HashMap::new();
    let mut builds: Vec<BuildSide> = Vec::new();
    let fail = |e: miso_common::MisoError| {
        FullReason::NonMaintainableOp(format!("delta plan construction: {e}"))
    };
    for node in plan.nodes() {
        if !tainted.contains(&node.id) || skip_above.contains(&node.id) {
            continue;
        }
        let new_id = match &node.op {
            Operator::Join { on } => {
                let left = mapping[&node.inputs[0]];
                let right = plan.node(node.inputs[1]);
                let name = build_side_name(right.id);
                if !builds.iter().any(|bs| bs.node == right.id) {
                    builds.push(BuildSide {
                        node: right.id,
                        name: name.clone(),
                    });
                }
                let rv = b
                    .add(
                        Operator::ScanView {
                            view: name,
                            schema: right.schema.clone(),
                        },
                        vec![],
                    )
                    .map_err(fail)?;
                b.add(Operator::Join { on: on.clone() }, vec![left, rv])
                    .map_err(fail)?
            }
            op => {
                let inputs: Vec<NodeId> = node.inputs.iter().map(|i| mapping[i]).collect();
                b.add(op.clone(), inputs).map_err(fail)?
            }
        };
        mapping.insert(node.id, new_id);
    }
    let delta_plan = b.finish(mapping[&delta_root]).map_err(fail)?;
    let append = DeltaAppend {
        plan: delta_plan,
        builds,
    };
    Ok(match root_agg {
        Some((agg, group_by, aggs, post)) => MaintPlan::Aggregate(Box::new(DeltaAggregate {
            input: append,
            agg,
            group_by,
            aggs,
            post,
        })),
        None => MaintPlan::Append(append),
    })
}

/// Whether `plan` has an incremental delta rule for appends to `log`
/// (ignoring runtime policy) — the tuner's cost model uses this to price
/// per-epoch upkeep.
pub fn is_maintainable(plan: &LogicalPlan, log: &str) -> bool {
    analyze_maintenance(plan, log).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_lang::{compile, Catalog};

    fn plan(sql: &str) -> LogicalPlan {
        compile(sql, &Catalog::standard()).expect("compiles")
    }

    #[test]
    fn per_record_pipeline_is_appendable() {
        let p =
            plan("SELECT t.user_id AS uid, t.city AS city FROM twitter t WHERE t.followers > 10");
        match analyze_maintenance(&p, "twitter") {
            Ok(MaintPlan::Append(a)) => {
                assert!(a.builds.is_empty());
                assert_eq!(a.plan.schema().names(), p.schema().names());
                assert_eq!(a.plan.base_logs(), vec!["twitter"]);
            }
            other => panic!("expected Append, got {other:?}"),
        }
    }

    #[test]
    fn unaffected_log_is_reported() {
        let p = plan("SELECT t.city AS city FROM twitter t");
        assert_eq!(
            analyze_maintenance(&p, "landmarks"),
            Err(FullReason::Unaffected)
        );
    }

    #[test]
    fn root_aggregate_folds() {
        let p = plan(
            "SELECT t.city AS city, COUNT(*) AS n, MIN(t.followers) AS lo \
             FROM twitter t GROUP BY t.city",
        );
        match analyze_maintenance(&p, "twitter") {
            Ok(MaintPlan::Aggregate(a)) => {
                assert_eq!(a.group_by, vec![0]);
                assert_eq!(a.aggs.len(), 2);
                // The delta plan is the aggregate's input, not the aggregate.
                assert!(!a
                    .input
                    .plan
                    .nodes()
                    .iter()
                    .any(|n| matches!(n.op, Operator::Aggregate { .. })));
            }
            other => panic!("expected Aggregate, got {other:?}"),
        }
    }

    #[test]
    fn probe_side_join_delta_is_maintainable_build_side_is_not() {
        let sql = "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
                   JOIN foursquare f ON t.user_id = f.user_id GROUP BY t.city";
        let p = plan(sql);
        // Twitter is the left (probe) side: maintainable with one build.
        match analyze_maintenance(&p, "twitter") {
            Ok(mp @ MaintPlan::Aggregate(_)) => {
                assert_eq!(mp.builds().len(), 1);
                let dp = mp.delta_plan();
                assert_eq!(dp.scanned_views(), vec![mp.builds()[0].name.clone()]);
                assert_eq!(dp.base_logs(), vec!["twitter"]);
            }
            other => panic!("expected Aggregate, got {other:?}"),
        }
        // Foursquare feeds the build side: full refresh.
        assert_eq!(
            analyze_maintenance(&p, "foursquare"),
            Err(FullReason::DeltaOnBuildSide)
        );
    }

    #[test]
    fn order_sensitive_shapes_fall_back() {
        let sorted = plan("SELECT t.city AS city FROM twitter t ORDER BY t.city");
        assert!(matches!(
            analyze_maintenance(&sorted, "twitter"),
            Err(FullReason::NonMaintainableOp(_))
        ));
        let avg = plan("SELECT AVG(t.followers) AS a FROM twitter t");
        assert_eq!(
            analyze_maintenance(&avg, "twitter"),
            Err(FullReason::FloatAggregate)
        );
        let fsum = plan("SELECT SUM(t.sentiment) AS s FROM twitter t");
        assert_eq!(
            analyze_maintenance(&fsum, "twitter"),
            Err(FullReason::FloatAggregate)
        );
        let isum = plan("SELECT SUM(t.retweets) AS s FROM twitter t");
        assert!(analyze_maintenance(&isum, "twitter").is_ok());
    }

    #[test]
    fn view_scans_force_full() {
        let p = plan("SELECT t.city AS city FROM twitter t WHERE t.followers > 10");
        let rewritten = p.replace_with_view(p.root(), "v_x").unwrap();
        assert_eq!(
            analyze_maintenance(&rewritten, "twitter"),
            Err(FullReason::ViewOverView)
        );
    }

    #[test]
    fn reason_tags_are_stable() {
        assert_eq!(FullReason::DeltaOnBuildSide.tag(), "delta_on_build_side");
        assert!(FullReason::StateCold.is_fallback());
        assert!(!FullReason::DeltaOnBuildSide.is_fallback());
        assert!(FullReason::DeltaTooLarge {
            delta_rows: 10,
            base_rows: 20
        }
        .is_fallback());
        let text = format!(
            "{}",
            FullReason::DeltaTooLarge {
                delta_rows: 10,
                base_rows: 20
            }
        );
        assert!(text.contains("10 rows"));
    }
}
