//! View metadata and the view catalog.
//!
//! A [`ViewDef`] records everything the tuner needs to know about a view
//! *without* its contents (contents live in whichever store holds the view):
//! the defining sub-plan, semantic fingerprint, schema, size, and
//! provenance. The [`ViewCatalog`] is the tuner's registry of every view
//! that currently exists anywhere in the multistore system.

use miso_common::ids::QueryId;
use miso_common::ByteSize;
use miso_data::{Checksum, Schema};
use miso_plan::{Fingerprint, LogicalPlan};
use std::collections::{BTreeSet, HashMap};

/// Metadata for one opportunistic view.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// Canonical name (`v_<fingerprint>`).
    pub name: String,
    /// Semantic fingerprint of the defining sub-plan.
    pub fingerprint: Fingerprint,
    /// The defining sub-plan (over base logs and/or other views).
    pub plan: LogicalPlan,
    /// Output schema.
    pub schema: Schema,
    /// Materialized size.
    pub size: ByteSize,
    /// Materialized row count.
    pub rows: u64,
    /// The query whose execution produced this view.
    pub created_by: QueryId,
    /// Content checksum of the materialized rows at creation time (the
    /// authoritative value every stored copy must verify against). `None`
    /// for definitions built before materialization finished.
    pub checksum: Option<Checksum>,
}

impl ViewDef {
    /// Builds a definition from a defining plan, deriving name/fingerprint.
    pub fn from_plan(plan: LogicalPlan, size: ByteSize, rows: u64, created_by: QueryId) -> Self {
        let fingerprint = miso_plan::fingerprint::fingerprint_plan(&plan);
        let schema = plan.schema().clone();
        ViewDef {
            name: fingerprint.view_name(),
            fingerprint,
            plan,
            schema,
            size,
            rows,
            created_by,
            checksum: None,
        }
    }

    /// Attaches the materialization-time content checksum (builder style).
    pub fn with_checksum(mut self, checksum: Checksum) -> Self {
        self.checksum = Some(checksum);
        self
    }
}

/// All views known to the tuner, keyed by canonical name.
///
/// Views whose stored content failed checksum verification are
/// **quarantined**: they stay registered (so the tuner can weigh
/// recomputing them) but must never be served to a query until repaired.
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    views: HashMap<String, ViewDef>,
    quarantined: BTreeSet<String>,
}

impl ViewCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a view; a semantically identical view (same name) keeps the
    /// existing entry and returns `false` (dedup under semantic identity).
    pub fn register(&mut self, def: ViewDef) -> bool {
        if self.views.contains_key(&def.name) {
            return false;
        }
        self.views.insert(def.name.clone(), def);
        true
    }

    /// Removes a view (it no longer exists in any store).
    pub fn remove(&mut self, name: &str) -> Option<ViewDef> {
        self.quarantined.remove(name);
        self.views.remove(name)
    }

    /// Marks a registered view as quarantined: its stored content failed
    /// verification and it must not be served until repaired. Returns
    /// whether the view was known (unknown names are not tracked).
    pub fn quarantine(&mut self, name: &str) -> bool {
        if self.views.contains_key(name) {
            self.quarantined.insert(name.to_string());
            true
        } else {
            false
        }
    }

    /// Whether `name` is quarantined.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.quarantined.contains(name)
    }

    /// Lifts a quarantine after the view was repaired (recomputed and
    /// re-verified). Returns whether the view had been quarantined.
    pub fn clear_quarantine(&mut self, name: &str) -> bool {
        self.quarantined.remove(name)
    }

    /// All quarantined names, sorted.
    pub fn quarantined_names(&self) -> Vec<String> {
        self.quarantined.iter().cloned().collect()
    }

    /// Records the authoritative content checksum for a view; no-op when
    /// the view is unknown.
    pub fn set_checksum(&mut self, name: &str, checksum: Checksum) {
        if let Some(def) = self.views.get_mut(name) {
            def.checksum = Some(checksum);
        }
    }

    /// Look up a view by name.
    pub fn get(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(name)
    }

    /// Whether the catalog knows `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True iff no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// All view names, sorted (deterministic iteration for the tuner).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort();
        names
    }

    /// All definitions, sorted by name.
    pub fn defs(&self) -> Vec<&ViewDef> {
        let mut defs: Vec<&ViewDef> = self.views.values().collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        defs
    }

    /// Updates a view's size/rowcount metadata after a refresh; no-op when
    /// the view is unknown.
    pub fn update_stats(&mut self, name: &str, size: ByteSize, rows: u64) {
        if let Some(def) = self.views.get_mut(name) {
            def.size = size;
            def.rows = rows;
        }
    }

    /// Total size of a set of views (absent names contribute zero).
    pub fn total_size(&self, names: &[String]) -> ByteSize {
        names
            .iter()
            .filter_map(|n| self.views.get(n).map(|v| v.size))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::DataType;
    use miso_plan::{Expr, Operator, PlanBuilder};

    fn sample_plan(filter_value: i64) -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![scan],
            )
            .unwrap();
        let f = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(filter_value)),
                },
                vec![proj],
            )
            .unwrap();
        b.finish(f).unwrap()
    }

    fn def(filter_value: i64) -> ViewDef {
        ViewDef::from_plan(
            sample_plan(filter_value),
            ByteSize::from_kib(10),
            100,
            QueryId(1),
        )
    }

    #[test]
    fn from_plan_derives_identity() {
        let d = def(5);
        assert!(d.name.starts_with("v_"));
        assert_eq!(d.name, d.fingerprint.view_name());
        assert_eq!(d.schema.names(), vec!["uid"]);
    }

    #[test]
    fn semantic_dedup() {
        let mut cat = ViewCatalog::new();
        assert!(cat.register(def(5)));
        assert!(!cat.register(def(5)), "same semantics, same name");
        assert!(cat.register(def(6)), "different predicate, new view");
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn names_are_sorted_and_total_size_sums() {
        let mut cat = ViewCatalog::new();
        cat.register(def(1));
        cat.register(def(2));
        let names = cat.names();
        assert_eq!(names.len(), 2);
        assert!(names[0] < names[1]);
        assert_eq!(cat.total_size(&names), ByteSize::from_kib(20));
        assert_eq!(cat.total_size(&["missing".to_string()]), ByteSize::ZERO);
    }

    #[test]
    fn quarantine_lifecycle() {
        let mut cat = ViewCatalog::new();
        let d = def(3);
        let name = d.name.clone();
        cat.register(d);
        assert!(!cat.is_quarantined(&name));
        assert!(!cat.quarantine("unknown"), "unknown views are not tracked");
        assert!(cat.quarantine(&name));
        assert!(cat.is_quarantined(&name));
        assert_eq!(cat.quarantined_names(), vec![name.clone()]);
        assert!(cat.clear_quarantine(&name));
        assert!(!cat.is_quarantined(&name));
        cat.quarantine(&name);
        cat.remove(&name);
        assert!(
            cat.quarantined_names().is_empty(),
            "removal clears quarantine"
        );
    }

    #[test]
    fn checksum_attach_and_update() {
        use miso_data::checksum::checksum_rows;
        let mut cat = ViewCatalog::new();
        let d = def(4);
        let name = d.name.clone();
        assert!(d.checksum.is_none());
        cat.register(d);
        let c = checksum_rows(&[]);
        cat.set_checksum(&name, c);
        assert_eq!(cat.get(&name).unwrap().checksum, Some(c));
        let d2 = def(5).with_checksum(c);
        assert_eq!(d2.checksum, Some(c));
    }

    #[test]
    fn remove_roundtrip() {
        let mut cat = ViewCatalog::new();
        let d = def(7);
        let name = d.name.clone();
        cat.register(d);
        assert!(cat.contains(&name));
        let removed = cat.remove(&name).unwrap();
        assert_eq!(removed.name, name);
        assert!(cat.is_empty());
    }
}
