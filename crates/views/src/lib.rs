//! Opportunistic materialized views and the analyses MISO runs over them.
//!
//! Views are the *elements of the multistore physical design* (paper §4.1).
//! They arise for free — HV stage outputs and migrated working sets — and
//! are identified semantically by their defining sub-plan's fingerprint.
//!
//! * [`view`] — view metadata and the view catalog;
//! * [`rewrite`] — semantic view matching: replacing plan subtrees whose
//!   fingerprint matches an available view with a `ScanView` (the rewriting
//!   algorithm role of the paper's \[15\]);
//! * [`benefit`] — per-view benefit and the **predicted future benefit**
//!   with per-epoch decay over the sliding workload history (\[18\]);
//! * [`maint`] — delta maintainability: which view shapes can absorb an
//!   append-only base-log delta incrementally (and the rewritten delta
//!   plan), versus which must fully recompute and why;
//! * [`interaction`] — signed degree-of-interaction (\[20\]), the stable
//!   partition into interacting sets (\[19\]), and sparsification into
//!   independent knapsack items (paper §4.3), probed through the batched
//!   parallel what-if engine (miso-par);
//! * [`viewset`] — interned view subsets as bitsets over the candidate
//!   universe, the memo key of every what-if probe.

pub mod benefit;
pub mod containment;
pub mod interaction;
pub mod maint;
pub mod rewrite;
pub mod view;
pub mod viewset;

pub use benefit::decay_weights;
pub use interaction::{analyze_candidates, AnalysisConfig, CostFn, KnapsackItem, ViewInfo};
pub use maint::{analyze_maintenance, is_maintainable, FullReason, MaintPlan};
pub use rewrite::{rewrite_with_catalog, rewrite_with_views};
pub use view::{ViewCatalog, ViewDef};
pub use viewset::ViewSet;
