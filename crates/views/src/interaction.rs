//! View interactions: signed doi, stable partition, sparsification.
//!
//! The knapsack DP requires item benefits to be independent, but views
//! interact (paper §4.1): a pair may be worth *more* together (a join's two
//! inputs) or *less* (two views that each answer the same subexpression —
//! the optimizer will only ever use one). Following §4.3:
//!
//! 1. compute the **signed degree of interaction** between view pairs, the
//!    decay-weighted difference between joint and separate benefits;
//! 2. **partition** views into interacting sets: connected components of the
//!    graph with edges where |doi| exceeds a threshold (\[19\]'s stable
//!    partition — views in different parts don't interact);
//! 3. **sparsify** each part: recursively merge the most strongly
//!    *positively* interacting pair into a single composite item (packed
//!    together or not at all), then among the remaining mutually *negative*
//!    items keep only the best benefit-per-byte representative.
//!
//! The result is a list of independent [`KnapsackItem`]s for M-KNAPSACK.
//!
//! All benefits are probed through a caller-supplied what-if cost function
//! `cost(query_index, view_subset)` — the tuner wires this to the multistore
//! optimizer's what-if mode. Probes are the analysis' scaling wall
//! (O(Q·V + Q·V²) full re-optimizations per epoch), so the [`ProbeEngine`]
//! below (a) memoizes by interned [`ViewSet`] bitset instead of cloned name
//! vectors, and (b) *batches* every independent probe front and fans it out
//! across the miso-par worker pool (`miso_common::pool`, `MISO_THREADS`).
//! Probes are pure, results land keyed by task index, and all selection
//! logic runs serially over the filled memo — so the output is byte-equal
//! for every thread count.

use crate::viewset::ViewSet;
use miso_common::{pool, ByteSize};
use std::collections::{BTreeSet, HashMap};

/// A view the tuner is considering, with current placement.
#[derive(Debug, Clone)]
pub struct ViewInfo {
    /// Canonical view name.
    pub name: String,
    /// Materialized size.
    pub size: ByteSize,
}

/// Tuning parameters for the interaction analysis.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Minimum |doi| for an edge to count as a real interaction. System- and
    /// workload-dependent (paper §4.3); expressed in the same simulated-
    /// seconds units as benefits.
    pub doi_threshold: f64,
    /// If set, raise the threshold adaptively until no interacting set has
    /// more than this many views (the paper tunes its threshold "to result
    /// in parts with a small number (e.g., 4) of views").
    pub max_part_size: Option<usize>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            doi_threshold: 1.0,
            max_part_size: Some(4),
        }
    }
}

/// An independent knapsack item: one view, or a positively-interacting
/// view set merged into an all-or-nothing unit.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackItem {
    /// The views packed together by this item.
    pub views: BTreeSet<String>,
    /// Combined size (sum of member sizes).
    pub size: ByteSize,
    /// Decay-weighted benefit of having all members present.
    pub benefit: f64,
}

/// The what-if probe signature: cost of history query `q` under a
/// hypothetical design holding exactly the given views. Must be pure
/// (same inputs ⇒ same cost) and `Sync` so batches can fan out.
pub type CostFn<'c> = dyn Fn(usize, &BTreeSet<String>) -> f64 + Sync + 'c;

/// Batched, memoized front-end over the what-if cost probe.
///
/// Lookups are by `(query, ViewSet)` with no allocation on a hit. Misses
/// are collected with [`ProbeEngine::ensure`] and evaluated across the
/// worker pool; [`ProbeEngine::cost`] serves the (by then) warm memo, with
/// a serial fallback so partial prefetches stay correct.
struct ProbeEngine<'a> {
    /// Candidate universe: `names[i]` is view `i`.
    names: Vec<&'a str>,
    f: &'a CostFn<'a>,
    /// Per-query memo, keyed by interned subset.
    memo: Vec<HashMap<ViewSet, f64>>,
}

impl<'a> ProbeEngine<'a> {
    fn new(views: &'a [ViewInfo], n_q: usize, f: &'a CostFn<'a>) -> Self {
        ProbeEngine {
            names: views.iter().map(|v| v.name.as_str()).collect(),
            f,
            memo: (0..n_q).map(|_| HashMap::new()).collect(),
        }
    }

    /// Materializes a subset's view names for the probe closure.
    fn names_of(&self, set: &ViewSet) -> BTreeSet<String> {
        set.iter().map(|i| self.names[i].to_string()).collect()
    }

    /// Ensures every `(q, set)` task is memoized, evaluating the misses in
    /// one parallel batch. Duplicate and already-cached tasks are skipped;
    /// results are inserted in task order (pure probes make insertion order
    /// irrelevant to values, task order keeps it reproducible anyway).
    fn ensure(&mut self, tasks: &[(usize, ViewSet)]) {
        let mut misses: Vec<(usize, ViewSet)> = Vec::new();
        {
            let mut queued: Vec<std::collections::HashSet<&ViewSet>> =
                (0..self.memo.len()).map(|_| Default::default()).collect();
            for (q, set) in tasks {
                if !self.memo[*q].contains_key(set) && queued[*q].insert(set) {
                    misses.push((*q, set.clone()));
                }
            }
        }
        if misses.is_empty() {
            return;
        }
        miso_obs::count("views.cost_probes", misses.len() as u64);
        let (f, names) = (self.f, &self.names);
        let costs = pool::run_batch(misses.len(), |k| {
            let (q, set) = &misses[k];
            let names: BTreeSet<String> = set.iter().map(|i| names[i].to_string()).collect();
            f(*q, &names)
        })
        // What-if probes are pure cost evaluations; a panic here is a bug
        // in the cost model, not a recoverable per-query failure.
        .unwrap_or_else(|e| panic!("what-if probe batch failed: {e}"));
        for ((q, set), c) in misses.into_iter().zip(costs) {
            self.memo[q].insert(set, c);
        }
    }

    /// Memoized probe; computes serially on a (rare) miss.
    fn cost(&mut self, q: usize, set: &ViewSet) -> f64 {
        if let Some(&v) = self.memo[q].get(set) {
            return v;
        }
        miso_obs::count("views.cost_probes", 1);
        let v = (self.f)(q, &self.names_of(set));
        self.memo[q].insert(set.clone(), v);
        v
    }
}

/// Runs the full §4.3 pipeline and returns independent knapsack items.
///
/// * `views` — candidate views (with sizes);
/// * `weights` — decay weight per history query (`weights[i]` for query `i`;
///   see [`crate::benefit::decay_weights`]);
/// * `cost_fn` — what-if cost of history query `i` under a hypothetical
///   design containing exactly the given views. Must be pure and `Sync`:
///   independent probes are batched across the miso-par pool. The returned
///   items are identical for every `MISO_THREADS` setting.
pub fn analyze_candidates(
    views: &[ViewInfo],
    weights: &[f64],
    cost_fn: &CostFn<'_>,
    config: &AnalysisConfig,
) -> Vec<KnapsackItem> {
    let mut obs = miso_obs::span("tuner.analyze");
    let n_v = views.len();
    let n_q = weights.len();
    let mut engine = ProbeEngine::new(views, n_q, cost_fn);

    // Stage 0 — base costs: one empty-design probe per history query.
    let empty = ViewSet::empty(n_v);
    let base_tasks: Vec<(usize, ViewSet)> = (0..n_q).map(|q| (q, empty.clone())).collect();
    engine.ensure(&base_tasks);
    let base: Vec<f64> = (0..n_q).map(|q| engine.cost(q, &empty)).collect();

    // Stage 1 — per-query relevance: which views individually reduce each
    // query's cost (their decay-weighted benefits are recomputed during
    // sparsification, so only relevance is kept here). All V·Q singleton
    // probes are independent: one batch.
    let singles: Vec<ViewSet> = (0..n_v).map(|v| ViewSet::singleton(n_v, v)).collect();
    let single_tasks: Vec<(usize, ViewSet)> = (0..n_v)
        .flat_map(|v| (0..n_q).map(move |q| (q, ViewSet::singleton(n_v, v))))
        .collect();
    engine.ensure(&single_tasks);
    let mut relevant: Vec<Vec<bool>> = vec![vec![false; n_v]; n_q];
    for (vi, single) in singles.iter().enumerate() {
        for q in 0..n_q {
            if base[q] - engine.cost(q, single) > 0.0 {
                relevant[q][vi] = true;
            }
        }
    }

    // Stage 2 — signed doi for pairs where at least one member is relevant
    // to the query. (A view with no individual benefit on any query never
    // interacts under exact-match rewriting: each replacement reduces cost
    // on its own; interactions only modulate — super- or sub-additively —
    // benefits that already exist.) Each unordered pair is visited exactly
    // once per query, and the joint probes form one batch.
    let pair_tasks: Vec<(usize, ViewSet)> = (0..n_q)
        .flat_map(|q| {
            let rel = &relevant[q];
            (0..n_v).flat_map(move |a| {
                ((a + 1)..n_v)
                    .filter(move |&b| rel[a] || rel[b])
                    .map(move |b| (q, ViewSet::pair(n_v, a, b)))
            })
        })
        .collect();
    engine.ensure(&pair_tasks);
    let mut doi: HashMap<(usize, usize), f64> = HashMap::new();
    for q in 0..n_q {
        for a in 0..n_v {
            for b in (a + 1)..n_v {
                if !(relevant[q][a] || relevant[q][b]) {
                    continue;
                }
                let joint = (base[q] - engine.cost(q, &ViewSet::pair(n_v, a, b))).max(0.0);
                let ba = (base[q] - engine.cost(q, &singles[a])).max(0.0);
                let bb = (base[q] - engine.cost(q, &singles[b])).max(0.0);
                *doi.entry((a, b)).or_insert(0.0) += weights[q] * (joint - ba - bb);
            }
        }
    }

    // Stage 3 — stable partition: union-find over |doi| >= threshold edges.
    // The threshold adapts upward until every part is small (paper §4.3).
    let threshold = adaptive_threshold(&doi, n_v, config);
    let mut parent: Vec<usize> = (0..n_v).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for (&(a, b), &d) in &doi {
        if d.abs() >= threshold {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }
    let mut parts: HashMap<usize, Vec<usize>> = HashMap::new();
    for v in 0..n_v {
        let root = find(&mut parent, v);
        parts.entry(root).or_default().push(v);
    }
    let config = &AnalysisConfig {
        doi_threshold: threshold,
        max_part_size: config.max_part_size,
    };

    // Stage 4 — sparsify each part.
    let mut items = Vec::new();
    let mut part_roots: Vec<usize> = parts.keys().copied().collect();
    part_roots.sort_unstable();
    for root in part_roots {
        let members = &parts[&root];
        items.extend(sparsify_part(
            members,
            views,
            weights,
            &base,
            &doi,
            &mut engine,
            config,
        ));
    }
    // Drop zero-benefit items: they can never help and only consume budget.
    items.retain(|item| item.benefit > 0.0);
    // Deterministic output order.
    items.sort_by(|a, b| a.views.iter().next().cmp(&b.views.iter().next()));
    if obs.is_active() {
        obs.push_field("candidates", miso_obs::FieldValue::U64(n_v as u64));
        obs.push_field("queries", miso_obs::FieldValue::U64(n_q as u64));
        obs.push_field("items", miso_obs::FieldValue::U64(items.len() as u64));
        let merged = items.iter().filter(|i| i.views.len() > 1).count();
        obs.push_field("merged_items", miso_obs::FieldValue::U64(merged as u64));
    }
    items
}

/// Sparsifies one interacting part into zero or more independent items.
fn sparsify_part(
    members: &[usize],
    views: &[ViewInfo],
    weights: &[f64],
    base: &[f64],
    doi: &HashMap<(usize, usize), f64>,
    engine: &mut ProbeEngine<'_>,
    config: &AnalysisConfig,
) -> Vec<KnapsackItem> {
    let n_v = views.len();
    let n_q = weights.len();
    // Current items: interned member subsets.
    let mut sets: Vec<ViewSet> = members
        .iter()
        .map(|&m| ViewSet::singleton(n_v, m))
        .collect();

    let weighted_benefit = |set: &ViewSet, engine: &mut ProbeEngine<'_>| -> f64 {
        (0..n_q)
            .map(|q| weights[q] * (base[q] - engine.cost(q, set)).max(0.0))
            .sum()
    };
    // doi between two current items: recompute from joint benefits when the
    // items are composite; seed from the pairwise table when singleton.
    let pair_doi = |a: &ViewSet, b: &ViewSet, engine: &mut ProbeEngine<'_>| -> f64 {
        if a.len() == 1 && b.len() == 1 {
            let (x, y) = (a.iter().next().unwrap(), b.iter().next().unwrap());
            return *doi.get(&(x.min(y), x.max(y))).unwrap_or(&0.0);
        }
        let ba = weighted_benefit(a, engine);
        let bb = weighted_benefit(b, engine);
        weighted_benefit(&a.union(b), engine) - ba - bb
    };
    // Batches every probe the next round of pair_doi/benefit evaluations
    // will need (composite pairs only — singleton pairs read the doi table).
    let prefetch_pairs = |sets: &[ViewSet], engine: &mut ProbeEngine<'_>| {
        let mut tasks: Vec<(usize, ViewSet)> = Vec::new();
        for (i, a) in sets.iter().enumerate() {
            for b in &sets[(i + 1)..] {
                if a.len() == 1 && b.len() == 1 {
                    continue;
                }
                for q in 0..n_q {
                    tasks.push((q, a.clone()));
                    tasks.push((q, b.clone()));
                    tasks.push((q, a.union(b)));
                }
            }
        }
        engine.ensure(&tasks);
    };

    // Recursively merge the strongest positive edge.
    loop {
        prefetch_pairs(&sets, engine);
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let d = pair_doi(&sets[i], &sets[j], engine);
                if d >= config.doi_threshold && best.is_none_or(|(_, _, bd)| d > bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        miso_obs::count("views.sparsify_merges", 1);
        let merged = sets[i].union(&sets[j]);
        // Remove j first (j > i) to keep indexes valid.
        sets.remove(j);
        sets.remove(i);
        sets.push(merged);
    }

    // Build items. Remaining edges are negative (or weak): greedily select
    // a maximal independent set by decreasing benefit-per-byte, never
    // packing two items with a *strong* negative interaction together —
    // the paper's representative rule, generalized beyond two-view parts
    // (a part may chain A–hub–B where A and B don't interact; both should
    // survive, only the dominated hub is dropped).
    let density_tasks: Vec<(usize, ViewSet)> = sets
        .iter()
        .flat_map(|set| (0..n_q).map(move |q| (q, set.clone())))
        .collect();
    engine.ensure(&density_tasks);
    let mut order: Vec<usize> = (0..sets.len()).collect();
    let densities: Vec<f64> = sets
        .iter()
        .map(|set| {
            let b = weighted_benefit(set, engine);
            let size: ByteSize = set.iter().map(|i| views[i].size).sum();
            b / (size.as_bytes().max(1) as f64)
        })
        .collect();
    order.sort_by(|&a, &b| {
        densities[b]
            .partial_cmp(&densities[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut selected: Vec<usize> = Vec::new();
    for &k in &order {
        let conflicts = selected
            .iter()
            .any(|&s| pair_doi(&sets[s], &sets[k], engine) <= -config.doi_threshold);
        if !conflicts {
            selected.push(k);
        }
    }
    selected.sort_unstable();
    selected
        .iter()
        .map(|&k| {
            let set = &sets[k];
            let benefit = weighted_benefit(set, engine);
            let size: ByteSize = set.iter().map(|i| views[i].size).sum();
            KnapsackItem {
                views: engine.names_of(set),
                size,
                benefit,
            }
        })
        .collect()
}

/// Raises the doi threshold until every connected component has at most
/// `max_part_size` members.
fn adaptive_threshold(
    doi: &HashMap<(usize, usize), f64>,
    n: usize,
    config: &AnalysisConfig,
) -> f64 {
    let Some(max_part) = config.max_part_size else {
        return config.doi_threshold;
    };
    let mut magnitudes: Vec<f64> = doi
        .values()
        .map(|d| d.abs())
        .filter(|&m| m >= config.doi_threshold)
        .collect();
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    magnitudes.dedup();
    let part_ok = |threshold: f64| -> bool {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (&(a, b), &d) in doi {
            if d.abs() >= threshold {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for v in 0..n {
            let root = find(&mut parent, v);
            *counts.entry(root).or_insert(0) += 1;
        }
        counts.values().all(|&c| c <= max_part)
    };
    let mut threshold = config.doi_threshold;
    for &m in &magnitudes {
        if part_ok(threshold) {
            return threshold;
        }
        // Raise just past the next magnitude, dropping its edges.
        threshold = m * (1.0 + 1e-9) + 1e-12;
    }
    threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(names_sizes: &[(&str, u64)]) -> Vec<ViewInfo> {
        names_sizes
            .iter()
            .map(|(n, s)| ViewInfo {
                name: n.to_string(),
                size: ByteSize::from_kib(*s),
            })
            .collect()
    }

    /// A cost model where each view independently saves a fixed amount.
    fn independent_cost(q: usize, set: &BTreeSet<String>) -> f64 {
        let mut cost = 100.0;
        let _ = q;
        if set.contains("a") {
            cost -= 10.0;
        }
        if set.contains("b") {
            cost -= 20.0;
        }
        cost
    }

    #[test]
    fn independent_views_become_separate_items() {
        let v = views(&[("a", 1), ("b", 1)]);
        let weights = vec![1.0];
        let items = analyze_candidates(&v, &weights, &independent_cost, &AnalysisConfig::default());
        assert_eq!(items.len(), 2);
        let by_name: HashMap<String, f64> = items
            .iter()
            .map(|i| (i.views.iter().next().unwrap().clone(), i.benefit))
            .collect();
        assert_eq!(by_name["a"], 10.0);
        assert_eq!(by_name["b"], 20.0);
    }

    #[test]
    fn positive_interaction_merges() {
        // Super-additive pair (two join inputs): each alone saves 10, both
        // together let the whole join collapse, saving 50.
        let f = |_q: usize, set: &BTreeSet<String>| -> f64 {
            match (set.contains("a"), set.contains("b")) {
                (true, true) => 50.0,
                (true, false) | (false, true) => 90.0,
                (false, false) => 100.0,
            }
        };
        let v = views(&[("a", 1), ("b", 2)]);
        let items = analyze_candidates(&v, &[1.0], &f, &AnalysisConfig::default());
        assert_eq!(items.len(), 1);
        let item = &items[0];
        assert_eq!(item.views.len(), 2);
        assert_eq!(item.benefit, 50.0);
        assert_eq!(item.size, ByteSize::from_kib(3));
    }

    #[test]
    fn negative_interaction_keeps_representative() {
        // Either view alone answers the query (saves 30); both adds nothing.
        let f = |_q: usize, set: &BTreeSet<String>| -> f64 {
            if set.contains("a") || set.contains("b") {
                70.0
            } else {
                100.0
            }
        };
        // b is smaller → better benefit/weight → representative.
        let v = views(&[("a", 10), ("b", 2)]);
        let items = analyze_candidates(&v, &[1.0], &f, &AnalysisConfig::default());
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].views.iter().next().unwrap(), "b");
        assert_eq!(items[0].benefit, 30.0);
    }

    #[test]
    fn weak_interactions_are_ignored() {
        // Tiny sub-threshold interaction: treated as independent.
        let f = |_q: usize, set: &BTreeSet<String>| -> f64 {
            let mut c = 100.0;
            if set.contains("a") {
                c -= 10.0;
            }
            if set.contains("b") {
                c -= 10.0;
            }
            if set.contains("a") && set.contains("b") {
                c -= 0.5; // weak positive
            }
            c
        };
        let v = views(&[("a", 1), ("b", 1)]);
        let cfg = AnalysisConfig {
            doi_threshold: 1.0,
            max_part_size: Some(4),
        };
        let items = analyze_candidates(&v, &[1.0], &f, &cfg);
        assert_eq!(items.len(), 2, "below-threshold doi leaves views separate");
    }

    #[test]
    fn zero_benefit_views_are_dropped() {
        let f = |_q: usize, _set: &BTreeSet<String>| -> f64 { 100.0 };
        let v = views(&[("a", 1), ("b", 1)]);
        let items = analyze_candidates(&v, &[1.0], &f, &AnalysisConfig::default());
        assert!(items.is_empty());
    }

    #[test]
    fn decay_weights_discount_old_benefits() {
        // View a helps only the old query, b only the new one.
        let f = |q: usize, set: &BTreeSet<String>| -> f64 {
            let mut c = 100.0;
            if q == 0 && set.contains("a") {
                c -= 10.0;
            }
            if q == 1 && set.contains("b") {
                c -= 10.0;
            }
            c
        };
        let v = views(&[("a", 1), ("b", 1)]);
        let weights = vec![0.5, 1.0];
        let items = analyze_candidates(&v, &weights, &f, &AnalysisConfig::default());
        let by_name: HashMap<String, f64> = items
            .iter()
            .map(|i| (i.views.iter().next().unwrap().clone(), i.benefit))
            .collect();
        assert_eq!(by_name["a"], 5.0);
        assert_eq!(by_name["b"], 10.0);
    }

    #[test]
    fn three_way_positive_chain_merges_all() {
        // a+b strongly positive; the merged pair then interacts positively
        // with c: recursive merging unites all three.
        let f = |_q: usize, set: &BTreeSet<String>| -> f64 {
            let a = set.contains("a");
            let b = set.contains("b");
            let c = set.contains("c");
            let mut cost: f64 = 100.0;
            if a {
                cost -= 5.0;
            }
            if b {
                cost -= 5.0;
            }
            if c {
                cost -= 5.0;
            }
            if a && b {
                cost -= 30.0; // join collapse
            }
            if a && c {
                cost -= 10.0; // pairwise chain linking c into the part
            }
            if a && b && c {
                cost -= 45.0; // whole query answered in DW
            }
            cost
        };
        let v = views(&[("a", 1), ("b", 1), ("c", 1)]);
        let items = analyze_candidates(&v, &[1.0], &f, &AnalysisConfig::default());
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].views.len(), 3);
        assert_eq!(items[0].benefit, 100.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(
            analyze_candidates(&[], &[1.0], &independent_cost, &AnalysisConfig::default())
                .is_empty()
        );
        let v = views(&[("a", 1)]);
        assert!(
            analyze_candidates(&v, &[], &independent_cost, &AnalysisConfig::default()).is_empty()
        );
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The same analysis, serial and fanned out, must produce identical
        // items (the miso-par determinism contract).
        let f = |q: usize, set: &BTreeSet<String>| -> f64 {
            let mut c = 500.0 + q as f64;
            for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
                if set.contains(*name) {
                    c -= 10.0 + (i as f64) * (1.0 + q as f64 * 0.3);
                }
            }
            if set.contains("a") && set.contains("b") {
                c -= 25.0;
            }
            if set.contains("c") && set.contains("d") {
                c += 8.0;
            }
            c
        };
        let v = views(&[("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5)]);
        let weights = vec![1.0, 0.5, 0.25];
        let before = pool::threads();
        pool::set_threads(1);
        let serial = analyze_candidates(&v, &weights, &f, &AnalysisConfig::default());
        pool::set_threads(8);
        let parallel = analyze_candidates(&v, &weights, &f, &AnalysisConfig::default());
        pool::set_threads(before);
        assert_eq!(serial, parallel);
        assert!(!serial.is_empty());
    }
}
