//! Semantic view matching and plan rewriting.
//!
//! Given a query plan and the set of views available in some store, replace
//! every maximal subtree whose fingerprint matches a view with a `ScanView`
//! leaf. Matching is *exact-semantic*: the subtree must compute precisely
//! the view's expression (modulo the canonicalizations in
//! `miso_plan::fingerprint`). Containment-based rewriting (view ⊇ query
//! fragment plus compensation) is future work in the paper's \[15\] lineage;
//! exact matching is what the evolutionary workload's shared subexpressions
//! need.
//!
//! Matching is top-down: if a node matches, its descendants are not
//! considered (the larger the replaced subtree, the more computation is
//! reused).

use crate::containment::{apply_containment, filter_views, find_containment_matches};
use crate::view::ViewCatalog;
use miso_plan::fingerprint::fingerprint_all;
use miso_plan::{LogicalPlan, Operator};
use std::collections::HashSet;

/// The result of a rewrite pass.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// The rewritten plan (equal to the input when `used` is empty).
    pub plan: LogicalPlan,
    /// Names of the views the rewrite consumed, in use order.
    pub used: Vec<String>,
}

/// Rewrites `plan` over the views in `available`, using both exact semantic
/// matches and filter-containment matches with compensation (see
/// [`crate::containment`]). The catalog supplies view structure for the
/// containment pass; exact matches are always preferred.
pub fn rewrite_with_catalog(
    plan: &LogicalPlan,
    available: &HashSet<String>,
    catalog: &ViewCatalog,
) -> Rewrite {
    let mut rewrite = rewrite_with_views(plan, available);
    let fviews = filter_views(catalog, available);
    if fviews.is_empty() {
        return rewrite;
    }
    // Alternate containment and exact passes to fixpoint (each containment
    // application strictly shrinks the plan or its conjunct count).
    for _ in 0..32 {
        let matches = find_containment_matches(&rewrite.plan, &fviews);
        // Skip "matches" that exact rewriting already declined (a ScanView
        // of the same name is already in place).
        let Some(m) = matches.iter().find(|m| m.residual.is_some()) else {
            break;
        };
        let Ok(applied) = apply_containment(&rewrite.plan, m) else {
            break;
        };
        rewrite.plan = applied;
        rewrite.used.push(m.view.clone());
        // New exact opportunities may open above the spliced scan.
        let again = rewrite_with_views(&rewrite.plan, available);
        rewrite.used.extend(again.used);
        rewrite.plan = again.plan;
    }
    rewrite
}

/// Rewrites `plan` over the views in `available` (canonical view names).
///
/// Returns the rewritten plan and which views it uses. Scanning an available
/// view is always preferred over recomputing the subtree; when nested
/// matches exist the outermost wins.
pub fn rewrite_with_views(plan: &LogicalPlan, available: &HashSet<String>) -> Rewrite {
    let mut current = plan.clone();
    let mut used = Vec::new();
    // Iterate until fixpoint: after one replacement node ids shift, so
    // recompute fingerprints and scan again. Each iteration strictly shrinks
    // the plan, so this terminates quickly.
    loop {
        let fps = fingerprint_all(&current);
        // Top-down: visit from root; skip subtrees of matched nodes.
        let mut replaced = false;
        // Consider nodes in reverse topological order (root last in arena,
        // so iterate from the end) and pick the first (largest) match not
        // already a ScanView of the same name.
        let mut skip: HashSet<miso_common::ids::NodeId> = HashSet::new();
        for node in current.nodes().iter().rev() {
            if skip.contains(&node.id) {
                continue;
            }
            let name = fps[&node.id].view_name();
            let already = matches!(&node.op, Operator::ScanView { view, .. } if *view == name);
            if !already && available.contains(&name) {
                current = current
                    .replace_with_view(node.id, &name)
                    .expect("replacing a subtree of a valid plan");
                used.push(name);
                replaced = true;
                break;
            }
            // Don't descend into a ScanView (nothing below it).
            if matches!(node.op, Operator::ScanView { .. }) {
                continue;
            }
            let _ = &mut skip; // descendants handled implicitly by restart
        }
        if !replaced {
            break;
        }
    }
    Rewrite {
        plan: current,
        used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_common::ids::NodeId;
    use miso_data::DataType;
    use miso_plan::fingerprint::{fingerprint_plan, fingerprint_subtree};
    use miso_plan::{AggExpr, AggFunc, Expr, PlanBuilder};

    /// scan → project(uid) → filter(uid = k) → aggregate(count)
    fn plan(k: i64) -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(k)),
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![filt],
            )
            .unwrap();
        b.finish(agg).unwrap()
    }

    fn name_of(plan: &LogicalPlan, id: NodeId) -> String {
        fingerprint_subtree(plan, id).view_name()
    }

    #[test]
    fn no_views_no_change() {
        let p = plan(1);
        let rw = rewrite_with_views(&p, &HashSet::new());
        assert!(rw.used.is_empty());
        assert_eq!(rw.plan, p);
    }

    #[test]
    fn matching_subtree_is_replaced() {
        let p = plan(1);
        let filt_view = name_of(&p, NodeId(2));
        let available: HashSet<String> = [filt_view.clone()].into_iter().collect();
        let rw = rewrite_with_views(&p, &available);
        assert_eq!(rw.used, vec![filt_view.clone()]);
        assert_eq!(rw.plan.len(), 2, "ScanView + Aggregate");
        assert_eq!(rw.plan.scanned_views(), vec![filt_view]);
        assert_eq!(rw.plan.schema(), p.schema());
    }

    #[test]
    fn outermost_match_wins() {
        let p = plan(1);
        let proj_view = name_of(&p, NodeId(1));
        let filt_view = name_of(&p, NodeId(2));
        let available: HashSet<String> = [proj_view, filt_view.clone()].into_iter().collect();
        let rw = rewrite_with_views(&p, &available);
        assert_eq!(rw.used, vec![filt_view], "larger subtree preferred");
        assert_eq!(rw.plan.len(), 2);
    }

    #[test]
    fn non_matching_views_are_ignored() {
        let p = plan(1);
        let other = name_of(&plan(2), NodeId(2));
        let available: HashSet<String> = [other].into_iter().collect();
        let rw = rewrite_with_views(&p, &available);
        assert!(rw.used.is_empty());
    }

    #[test]
    fn whole_plan_match_collapses_to_single_scan() {
        let p = plan(3);
        let root_view = fingerprint_plan(&p).view_name();
        let available: HashSet<String> = [root_view.clone()].into_iter().collect();
        let rw = rewrite_with_views(&p, &available);
        assert_eq!(rw.plan.len(), 1);
        assert!(matches!(rw.plan.root_node().op, Operator::ScanView { .. }));
        assert_eq!(rw.used, vec![root_view]);
    }

    #[test]
    fn rewrite_is_idempotent_over_scan_views() {
        let p = plan(4);
        let root_view = fingerprint_plan(&p).view_name();
        let available: HashSet<String> = [root_view].into_iter().collect();
        let rw1 = rewrite_with_views(&p, &available);
        let rw2 = rewrite_with_views(&rw1.plan, &available);
        assert!(rw2.used.is_empty(), "no infinite self-replacement");
        assert_eq!(rw2.plan, rw1.plan);
    }

    #[test]
    fn multiple_branches_both_rewritten() {
        // join of two identical-shape branches over different logs
        let mut b = PlanBuilder::new();
        let s1 = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let p1 = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![s1],
            )
            .unwrap();
        let s2 = b
            .add(
                Operator::ScanLog {
                    log: "foursquare".into(),
                },
                vec![],
            )
            .unwrap();
        let p2 = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![s2],
            )
            .unwrap();
        let j = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![p1, p2])
            .unwrap();
        let p = b.finish(j).unwrap();
        let v1 = name_of(&p, NodeId(1));
        let v2 = name_of(&p, NodeId(3));
        let available: HashSet<String> = [v1.clone(), v2.clone()].into_iter().collect();
        let rw = rewrite_with_views(&p, &available);
        assert_eq!(rw.used.len(), 2);
        assert_eq!(rw.plan.len(), 3, "two ScanViews + Join");
        let mut scanned = rw.plan.scanned_views();
        scanned.sort();
        let mut expect = vec![v1, v2];
        expect.sort();
        assert_eq!(scanned, expect);
    }
}
