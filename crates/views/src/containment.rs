//! Filter-containment rewriting (the compensation case of \[15\]).
//!
//! Exact semantic matches miss the commonest evolution in the workload: the
//! analyst *tightens* a predicate. If a view materializes
//! `σ_C(π_E(log))` and a query needs `σ_{C∪R}(π_E(log))`, the view answers
//! the query with a compensation filter `σ_R(view)` — conjunct-set
//! containment over the same input subtree.
//!
//! This module recognizes exactly that pattern (the shape every lowered
//! branch has: filters directly over extraction projections or UDF/join
//! outputs). Broader containment — projection subsetting, range subsumption,
//! aggregate rollup — is future work, as it is for the paper's \[15\].

use crate::view::ViewCatalog;
use miso_common::ids::NodeId;
use miso_plan::fingerprint::{expr_digest, fingerprint_all};
use miso_plan::{Expr, LogicalPlan, Operator};
use std::collections::{HashMap, HashSet};

/// A view in "filter over base" normal form.
#[derive(Debug, Clone)]
pub struct FilterView {
    /// View name.
    pub name: String,
    /// Fingerprint of the subtree *below* the view's root filter.
    pub input_fp: u64,
    /// Digests of the view filter's conjuncts.
    pub conjuncts: HashSet<u64>,
}

/// Extracts the filter-over-base normal form of every available view.
pub fn filter_views(catalog: &ViewCatalog, available: &HashSet<String>) -> Vec<FilterView> {
    let mut out = Vec::new();
    for def in catalog.defs() {
        if !available.contains(&def.name) {
            continue;
        }
        let root = def.plan.root_node();
        let Operator::Filter { predicate } = &root.op else {
            continue;
        };
        let fps = fingerprint_all(&def.plan);
        let input_fp = fps[&root.inputs[0]].0;
        let conjuncts: HashSet<u64> = predicate
            .conjuncts()
            .iter()
            .map(|c| expr_digest(c))
            .collect();
        out.push(FilterView {
            name: def.name.clone(),
            input_fp,
            conjuncts,
        });
    }
    out
}

/// One applicable containment rewrite.
#[derive(Debug, Clone)]
pub struct ContainmentMatch {
    /// The query's filter node to replace.
    pub node: NodeId,
    /// The subsuming view.
    pub view: String,
    /// Compensation predicate (conjuncts the view does not enforce);
    /// `None` when the view matches exactly (callers should prefer the
    /// exact-match path, but this keeps the result total).
    pub residual: Option<Expr>,
    /// How many query conjuncts the view already enforces (tie-breaker:
    /// more subsumed conjuncts = less residual work).
    pub subsumed: usize,
}

/// Finds the best containment rewrite for each rewritable filter node of
/// `plan` (deepest wins when nested; callers apply one at a time).
pub fn find_containment_matches(plan: &LogicalPlan, views: &[FilterView]) -> Vec<ContainmentMatch> {
    let fps = fingerprint_all(plan);
    let mut out = Vec::new();
    for node in plan.nodes() {
        let Operator::Filter { predicate } = &node.op else {
            continue;
        };
        let input_fp = fps[&node.inputs[0]].0;
        let query_conjuncts: HashMap<u64, &Expr> = predicate
            .conjuncts()
            .into_iter()
            .map(|c| (expr_digest(c), c))
            .collect();
        let mut best: Option<ContainmentMatch> = None;
        for view in views {
            if view.input_fp != input_fp {
                continue;
            }
            if !view
                .conjuncts
                .iter()
                .all(|d| query_conjuncts.contains_key(d))
            {
                continue; // the view filters *more* than the query: unusable
            }
            let residual: Vec<Expr> = query_conjuncts
                .iter()
                .filter(|(d, _)| !view.conjuncts.contains(*d))
                .map(|(_, e)| (*e).clone())
                .collect();
            let subsumed = view.conjuncts.len();
            let better = best.as_ref().is_none_or(|b| subsumed > b.subsumed);
            if better {
                out.retain(|m: &ContainmentMatch| m.node != node.id);
                best = Some(ContainmentMatch {
                    node: node.id,
                    view: view.name.clone(),
                    residual: Expr::conjoin(residual),
                    subsumed,
                });
            }
        }
        if let Some(m) = best {
            out.push(m);
        }
    }
    out
}

/// Applies one containment match, producing the rewritten plan.
pub fn apply_containment(
    plan: &LogicalPlan,
    m: &ContainmentMatch,
) -> miso_common::Result<LogicalPlan> {
    // Replace the filter subtree with ScanView, then re-add the residual
    // filter above the scan if any.
    let replaced = plan.replace_with_view(m.node, &m.view)?;
    let Some(residual) = &m.residual else {
        return Ok(replaced);
    };
    // The ScanView node that replaced the subtree: find it by name.
    let scan_id = replaced
        .nodes()
        .iter()
        .find(|n| matches!(&n.op, Operator::ScanView { view, .. } if *view == m.view))
        .expect("replacement inserted the scan")
        .id;
    // Rebuild with a filter spliced above the scan.
    let mut b = miso_plan::PlanBuilder::new();
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
    for node in replaced.nodes() {
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| mapping[i]).collect();
        let new_id = b.add(node.op.clone(), inputs)?;
        let new_id = if node.id == scan_id {
            b.add(
                Operator::Filter {
                    predicate: residual.clone(),
                },
                vec![new_id],
            )?
        } else {
            new_id
        };
        mapping.insert(node.id, new_id);
    }
    b.finish(mapping[&replaced.root()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ViewDef;
    use miso_common::ids::QueryId;
    use miso_common::ByteSize;
    use miso_data::DataType;
    use miso_plan::PlanBuilder;

    /// scan → project(a,b) → filter(conjuncts) [→ limit]
    fn branch(conjunct_values: &[i64], with_limit: bool) -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("a".into(), Expr::col(0).get("a").cast(DataType::Int)),
                        ("b".into(), Expr::col(0).get("b").cast(DataType::Int)),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let pred = conjunct_values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let col = i % 2;
                Expr::Binary {
                    op: miso_plan::BinOp::Gt,
                    left: Box::new(Expr::col(col)),
                    right: Box::new(Expr::lit(v)),
                }
            })
            .reduce(|acc, e| acc.and(e))
            .unwrap();
        let f = b
            .add(Operator::Filter { predicate: pred }, vec![proj])
            .unwrap();
        let root = if with_limit {
            b.add(Operator::Limit { n: 10 }, vec![f]).unwrap()
        } else {
            f
        };
        b.finish(root).unwrap()
    }

    fn view_of(plan: &LogicalPlan, node: NodeId) -> ViewDef {
        ViewDef::from_plan(plan.subplan(node), ByteSize::from_kib(10), 100, QueryId(0))
    }

    #[test]
    fn superset_filter_matches_with_residual() {
        let v_plan = branch(&[5], false);
        let view = view_of(&v_plan, NodeId(2));
        let vname = view.name.clone();
        let mut catalog = ViewCatalog::new();
        catalog.register(view);

        let query = branch(&[5, 7], true);
        let available: HashSet<String> = [vname.clone()].into_iter().collect();
        let fviews = filter_views(&catalog, &available);
        assert_eq!(fviews.len(), 1);
        let matches = find_containment_matches(&query, &fviews);
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.view, vname);
        assert!(m.residual.is_some());
        assert_eq!(m.subsumed, 1);

        let rewritten = apply_containment(&query, m).unwrap();
        assert_eq!(rewritten.scanned_views(), vec![vname]);
        assert!(rewritten.base_logs().is_empty());
        // scanview → residual filter → limit
        assert_eq!(rewritten.len(), 3);
        assert_eq!(rewritten.schema(), query.schema());
    }

    #[test]
    fn view_with_extra_conjuncts_is_rejected() {
        // View filters MORE than the query → cannot answer it.
        let v_plan = branch(&[5, 7], false);
        let view = view_of(&v_plan, NodeId(2));
        let mut catalog = ViewCatalog::new();
        let name = view.name.clone();
        catalog.register(view);
        let query = branch(&[5], false);
        let fviews = filter_views(&catalog, &[name].into_iter().collect());
        assert!(find_containment_matches(&query, &fviews).is_empty());
    }

    #[test]
    fn mismatched_base_is_rejected() {
        let v_plan = branch(&[5], false);
        let view = view_of(&v_plan, NodeId(2));
        let name = view.name.clone();
        let mut catalog = ViewCatalog::new();
        catalog.register(view);
        // Different extraction (field c instead of a/b).
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![("c".into(), Expr::col(0).get("c").cast(DataType::Int))],
                },
                vec![scan],
            )
            .unwrap();
        let f = b
            .add(
                Operator::Filter {
                    predicate: Expr::Binary {
                        op: miso_plan::BinOp::Gt,
                        left: Box::new(Expr::col(0)),
                        right: Box::new(Expr::lit(5i64)),
                    },
                },
                vec![proj],
            )
            .unwrap();
        let query = b.finish(f).unwrap();
        let fviews = filter_views(&catalog, &[name].into_iter().collect());
        assert!(find_containment_matches(&query, &fviews).is_empty());
    }

    #[test]
    fn most_subsuming_view_wins() {
        let v1 = view_of(&branch(&[5], false), NodeId(2));
        let v2 = view_of(&branch(&[5, 7], false), NodeId(2));
        let n2 = v2.name.clone();
        let mut catalog = ViewCatalog::new();
        let available: HashSet<String> = [v1.name.clone(), v2.name.clone()].into_iter().collect();
        catalog.register(v1);
        catalog.register(v2);
        let query = branch(&[5, 7, 9], false);
        let fviews = filter_views(&catalog, &available);
        let matches = find_containment_matches(&query, &fviews);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].view, n2, "two subsumed conjuncts beat one");
    }

    #[test]
    fn exact_match_yields_no_residual() {
        let v_plan = branch(&[5, 7], false);
        let view = view_of(&v_plan, NodeId(2));
        let name = view.name.clone();
        let mut catalog = ViewCatalog::new();
        catalog.register(view);
        let query = branch(&[7, 5], false); // same conjuncts, other order
        let fviews = filter_views(&catalog, &[name].into_iter().collect());
        let matches = find_containment_matches(&query, &fviews);
        // conjunct digests are order-insensitive... but note col alternation
        // in `branch` pins values to columns, so [7,5] differs from [5,7].
        // Build a genuinely identical query instead:
        let query2 = branch(&[5, 7], false);
        let matches2 = find_containment_matches(&query2, &fviews);
        assert_eq!(matches2.len(), 1);
        assert!(matches2[0].residual.is_none());
        let _ = matches;
    }
}
