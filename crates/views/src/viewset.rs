//! Interned view subsets: bitsets over a per-analysis candidate universe.
//!
//! The interaction analysis probes the what-if optimizer with *subsets* of
//! the candidate views. Keying its memo tables by `(usize, Vec<String>)`
//! meant cloning every view name on every lookup — even on a hit — and made
//! the probe closure impossible to share across worker threads. A
//! [`ViewSet`] replaces that: candidates are numbered `0..V` once per
//! analysis, and a subset is a bitset over those indexes — one `u64` word
//! for the common `V ≤ 64` case (everything the benches exercise), spilling
//! to additional words for larger universes. Set algebra (union, member
//! iteration) is word arithmetic, equality/hash cost a few words, and the
//! type is `Send + Sync` for free.
//!
//! Iteration order is always ascending candidate index, which keeps every
//! consumer deterministic by construction.

/// A subset of a candidate universe, as a fixed-width bitset.
///
/// All sets produced for one universe have the same word count; mixing sets
/// from different universes is a logic error (debug-asserted).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ViewSet {
    words: Box<[u64]>,
}

/// Words needed for a universe of `n` candidates (at least one, so the
/// empty universe still has a well-formed empty set).
fn words_for(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

impl ViewSet {
    /// The empty subset of an `n`-candidate universe.
    pub fn empty(n: usize) -> Self {
        ViewSet {
            words: vec![0u64; words_for(n)].into_boxed_slice(),
        }
    }

    /// The singleton `{i}` in an `n`-candidate universe.
    pub fn singleton(n: usize, i: usize) -> Self {
        let mut s = Self::empty(n);
        s.insert(i);
        s
    }

    /// The pair `{i, j}` in an `n`-candidate universe.
    pub fn pair(n: usize, i: usize, j: usize) -> Self {
        let mut s = Self::empty(n);
        s.insert(i);
        s.insert(j);
        s
    }

    /// Adds candidate `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i / 64 < self.words.len(), "index {i} outside universe");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether candidate `i` is a member.
    pub fn contains(&self, i: usize) -> bool {
        i / 64 < self.words.len() && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set union (both operands must come from the same universe).
    pub fn union(&self, other: &ViewSet) -> ViewSet {
        debug_assert_eq!(self.words.len(), other.words.len(), "universe mismatch");
        ViewSet {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Member indexes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Stable FNV-1a/64 digest of the member set *by content*, independent
    /// of universe numbering: folds the provided per-member identities (the
    /// caller supplies each member's own stable fingerprint) in ascending
    /// index order. Used for cross-epoch cache keys, where candidate
    /// numbering changes between analyses but view identity does not.
    pub fn digest_with(&self, member_id: impl Fn(usize) -> u64) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        fold(self.len() as u64);
        for i in self.iter() {
            fold(member_id(i));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_universe_is_one_word() {
        let s = ViewSet::empty(64);
        assert_eq!(s.words.len(), 1);
        let s = ViewSet::empty(65);
        assert_eq!(s.words.len(), 2);
        let s = ViewSet::empty(0);
        assert_eq!(s.words.len(), 1);
    }

    #[test]
    fn membership_and_iteration() {
        let mut s = ViewSet::empty(130);
        for i in [0, 63, 64, 129] {
            s.insert(i);
        }
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.contains(63) && s.contains(64) && !s.contains(65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn union_and_equality() {
        let a = ViewSet::pair(100, 3, 70);
        let b = ViewSet::singleton(100, 5);
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![3, 5, 70]);
        assert_eq!(a.union(&a), a);
        assert_ne!(a, b);
        assert_eq!(ViewSet::pair(100, 70, 3), a, "insertion order irrelevant");
    }

    #[test]
    fn digest_is_order_stable_and_numbering_free() {
        // Same member identities under different universe numberings must
        // digest identically.
        let ids_a = [111u64, 222, 333];
        let a = ViewSet::pair(10, 0, 2);
        let b = ViewSet::pair(200, 150, 199);
        let ids_b = |i: usize| match i {
            150 => 111u64,
            199 => 333,
            _ => unreachable!(),
        };
        let da = ViewSet::singleton(10, 0)
            .union(&ViewSet::singleton(10, 2))
            .digest_with(|i| ids_a[i]);
        assert_eq!(da, a.digest_with(|i| ids_a[i]));
        assert_eq!(da, b.digest_with(ids_b));
        // Different membership digests differently.
        assert_ne!(
            a.digest_with(|i| ids_a[i]),
            ViewSet::singleton(10, 0).digest_with(|i| ids_a[i])
        );
    }
}
