//! Predicted future benefit with per-epoch decay.
//!
//! The tuner computes each view's expected benefit "by utilizing the
//! predicted future benefit function from \[18\]: the benefit function divides
//! W into a series of non-overlapping epochs ... the predicted future
//! benefit of each view is computed by applying a decay on the view's
//! benefit per epoch — for each q ∈ W, the benefit of a view v for query q
//! is weighted less as q appears farther in the past" (paper §4.3).
//!
//! This module provides the decay-weight schedule; the actual per-query
//! benefits come from what-if costing in the tuner.

/// Per-query weights for a history of `n` queries.
///
/// `epoch_len` consecutive queries share an epoch; the most recent epoch has
/// weight 1 and each older epoch is multiplied by `decay` (∈ (0, 1]).
/// Index `n - 1` is the most recent query.
pub fn decay_weights(n: usize, epoch_len: usize, decay: f64) -> Vec<f64> {
    assert!(epoch_len > 0, "epoch length must be positive");
    assert!(
        (0.0..=1.0).contains(&decay) && decay > 0.0,
        "decay must be in (0, 1]"
    );
    (0..n)
        .map(|i| {
            // age in epochs, newest epoch = 0
            let age_queries = n - 1 - i;
            let age_epochs = age_queries / epoch_len;
            decay.powi(age_epochs as i32)
        })
        .collect()
}

/// Weighted sum of per-query benefits — the predicted future benefit of a
/// view (or view set) given its observed benefit on each history query.
pub fn weighted_benefit(per_query: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(per_query.len(), weights.len(), "history length mismatch");
    per_query.iter().zip(weights).map(|(b, w)| b * w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newest_epoch_has_unit_weight() {
        let w = decay_weights(6, 3, 0.5);
        assert_eq!(w.len(), 6);
        // queries 3..5 (newest epoch) weight 1; 0..2 weight 0.5
        assert_eq!(&w[3..], &[1.0, 1.0, 1.0]);
        assert_eq!(&w[..3], &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn deeper_history_decays_geometrically() {
        let w = decay_weights(9, 3, 0.5);
        assert_eq!(w[0], 0.25);
        assert_eq!(w[3], 0.5);
        assert_eq!(w[8], 1.0);
    }

    #[test]
    fn no_decay_means_uniform() {
        let w = decay_weights(5, 2, 1.0);
        assert!(w.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn empty_history() {
        assert!(decay_weights(0, 3, 0.5).is_empty());
        assert_eq!(weighted_benefit(&[], &[]), 0.0);
    }

    #[test]
    fn weighted_benefit_prefers_recent() {
        let weights = decay_weights(4, 2, 0.5);
        // Same raw benefit, different position.
        let old_only = weighted_benefit(&[10.0, 0.0, 0.0, 0.0], &weights);
        let new_only = weighted_benefit(&[0.0, 0.0, 0.0, 10.0], &weights);
        assert!(new_only > old_only);
        assert_eq!(new_only, 10.0);
        assert_eq!(old_only, 5.0);
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_rejected() {
        decay_weights(3, 0, 0.5);
    }
}
