//! End-to-end incremental-maintenance guarantees, exercised through the
//! public `MultistoreSystem` API:
//!
//! * delta-applied views are row- and **checksum-identical** to fully
//!   rebuilt views (the incrementally re-stamped digest equals a
//!   from-scratch `checksum_rows` over the stored rows);
//! * results and checksums are invariant under the `ivm` toggle and under
//!   the worker-pool thread count;
//! * a corrupted view quarantines through the integrity path, appends
//!   defer its rebuild (reason `Quarantined`, no resurrection behind the
//!   auditor's back), the reorg repair path recomputes it over the grown
//!   log, and maintenance then resumes folding deltas;
//! * a growth schedule threaded through `run_stream` grows the corpus
//!   between epochs and surfaces per-batch maintenance reports.

use miso_common::{pool, Budgets, ByteSize, SimClock};
use miso_core::{
    AuditConfig, MaintAction, MaintenancePolicy, MultistoreSystem, SystemConfig, Variant,
};
use miso_data::checksum_rows;
use miso_data::logs::{Corpus, LogKind, LogsConfig};
use miso_data::Delta;
use miso_exec::engine::DataSource;
use miso_lang::compile;
use miso_plan::LogicalPlan;
use miso_views::FullReason;
use miso_workload::{standard_udfs, workload_catalog};
use std::collections::BTreeMap;

fn budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_mib(64),
        ByteSize::from_mib(8),
        ByteSize::from_mib(4),
    )
    .with_discretization(ByteSize::from_kib(16))
}

fn system_with(corpus: &Corpus, config: SystemConfig) -> MultistoreSystem {
    MultistoreSystem::new(corpus, workload_catalog(), standard_udfs(), config)
}

fn queries() -> Vec<(String, LogicalPlan)> {
    let catalog = workload_catalog();
    vec![
        (
            "filtered".to_string(),
            compile(
                "SELECT t.tweet_id AS id, t.city AS city FROM twitter t WHERE t.followers > 10",
                &catalog,
            )
            .unwrap(),
        ),
        (
            "grouped".to_string(),
            compile(
                "SELECT t.city AS c, COUNT(*) AS n, SUM(t.followers) AS s FROM twitter t \
                 WHERE t.followers > 10 GROUP BY t.city",
                &catalog,
            )
            .unwrap(),
        ),
    ]
}

/// Creates views, appends `batches` delta batches under Refresh, and
/// returns the per-view catalog checksums afterwards.
fn grow_and_fingerprint(
    cfg: &LogsConfig,
    config: SystemConfig,
    batches: u64,
) -> (MultistoreSystem, BTreeMap<String, u64>) {
    let corpus = Corpus::generate(cfg);
    let mut sys = system_with(&corpus, config);
    sys.run_workload(Variant::HvOp, &queries()).unwrap();
    let mut clock = SimClock::new();
    for batch in 0..batches {
        let delta = Delta::generated(cfg, LogKind::Twitter, batch, 80);
        sys.grow(&delta, MaintenancePolicy::Refresh, &mut clock)
            .unwrap();
    }
    let sums = sys
        .catalog
        .defs()
        .iter()
        .filter_map(|d| d.checksum.map(|c| (d.name.clone(), c.0)))
        .collect();
    (sys, sums)
}

#[test]
fn delta_applied_checksum_equals_full_rebuild_checksum() {
    let cfg = LogsConfig::tiny();
    let (sys, _) = grow_and_fingerprint(&cfg, SystemConfig::paper_default(budgets()), 3);
    // After warm-state folds, every view's catalog checksum — stamped
    // incrementally through the running digest — must equal a from-scratch
    // checksum of the rows actually stored.
    let mut checked = 0;
    for def in sys.catalog.defs() {
        let rows = sys
            .hv
            .view_rows(&def.name)
            .or_else(|| sys.dw.view_rows_arc(&def.name))
            .expect("maintained view is resident");
        assert_eq!(
            def.checksum,
            Some(checksum_rows(&rows)),
            "{}: incremental stamp diverged from full rebuild",
            def.name
        );
        checked += 1;
    }
    assert!(checked > 0, "no views were maintained");
}

#[test]
fn ivm_toggle_does_not_change_results_or_checksums() {
    let cfg = LogsConfig::tiny();
    let on = SystemConfig::paper_default(budgets());
    assert!(on.ivm, "IVM defaults on");
    let mut off = SystemConfig::paper_default(budgets());
    off.ivm = false;
    let (mut sys_on, sums_on) = grow_and_fingerprint(&cfg, on, 3);
    let (mut sys_off, sums_off) = grow_and_fingerprint(&cfg, off, 3);
    assert_eq!(sums_on, sums_off, "checksums diverge across the ivm toggle");
    // And the answers over the maintained views agree.
    let r_on = sys_on.run_workload(Variant::HvOp, &queries()).unwrap();
    let r_off = sys_off.run_workload(Variant::HvOp, &queries()).unwrap();
    for (a, b) in r_on.records.iter().zip(&r_off.records) {
        assert_eq!(a.result_rows, b.result_rows, "{}", a.label);
    }
}

#[test]
fn thread_count_does_not_change_maintained_views() {
    let cfg = LogsConfig::tiny();
    pool::set_threads(1);
    let (_, serial) = grow_and_fingerprint(&cfg, SystemConfig::paper_default(budgets()), 3);
    pool::set_threads(8);
    let (_, parallel) = grow_and_fingerprint(&cfg, SystemConfig::paper_default(budgets()), 3);
    pool::set_threads(0); // restore default sizing for other tests
    assert_eq!(
        serial, parallel,
        "maintained view checksums must be thread-count invariant"
    );
}

#[test]
fn corruption_quarantines_then_reorg_repairs_and_folding_resumes() {
    let cfg = LogsConfig::tiny();
    let corpus = Corpus::generate(&cfg);
    let mut sys = system_with(&corpus, SystemConfig::paper_default(budgets()));
    let qs = queries();
    sys.run_workload(Variant::MsMiso, &qs).unwrap();
    let mut clock = SimClock::new();
    // Warm the fold state.
    for batch in 0..2u64 {
        let delta = Delta::generated(&cfg, LogKind::Twitter, batch, 60);
        sys.grow(&delta, MaintenancePolicy::Refresh, &mut clock)
            .unwrap();
    }

    // Corrupt one maintained HV view; the audit scrub must quarantine it.
    let victim = sys
        .hv
        .view_names()
        .into_iter()
        .find(|v| sys.catalog.contains(v))
        .expect("an HV-resident catalog view exists");
    assert!(sys.hv.corrupt_view(&victim));
    let report = sys
        .audit_pass(&AuditConfig::strict(ByteSize::from_mib(64)))
        .unwrap();
    assert_eq!(report.quarantined, vec![victim.clone()]);
    assert!(sys.catalog.is_quarantined(&victim));

    // Appends while quarantined: the rebuild is deferred (reported, not
    // resurrected — the store must stay clean for the auditor).
    let delta = Delta::generated(&cfg, LogKind::Twitter, 2, 60);
    let mreport = sys
        .grow(&delta, MaintenancePolicy::Refresh, &mut clock)
        .unwrap();
    let decision = mreport
        .decisions
        .iter()
        .find(|d| d.view == victim)
        .expect("quarantined view is still an affected view");
    assert_eq!(decision.reason, Some(FullReason::Quarantined));
    assert!(!sys.hv.has_view(&victim), "must not resurrect behind audit");
    let audit_again = sys
        .audit_pass(&AuditConfig::strict(ByteSize::from_mib(64)))
        .unwrap();
    assert!(audit_again.violations.is_empty());

    // The existing repair path: reorganizations offer quarantined views to
    // the tuner and recompute the keepers over the (grown) base log.
    sys.run_workload(Variant::MsMiso, &qs).unwrap();
    assert!(
        !sys.catalog.is_quarantined(&victim),
        "reorg must repair or drop the quarantined view"
    );
    if let Some(def) = sys.catalog.get(&victim) {
        let rows = sys
            .hv
            .view_rows(&victim)
            .or_else(|| sys.dw.view_rows_arc(&victim))
            .expect("repaired view is resident");
        assert_eq!(def.checksum, Some(checksum_rows(&rows)));
    }

    // Maintenance resumes: the next appends fold deltas again.
    let mut folded = 0;
    for batch in 3..5u64 {
        let delta = Delta::generated(&cfg, LogKind::Twitter, batch, 60);
        let r = sys
            .grow(&delta, MaintenancePolicy::Refresh, &mut clock)
            .unwrap();
        folded += r
            .decisions
            .iter()
            .filter(|d| d.action == MaintAction::Delta)
            .count();
    }
    assert!(folded > 0, "delta folding must resume after repair");
}

#[test]
fn growth_schedule_feeds_the_stream() {
    let cfg = LogsConfig::tiny();
    let corpus = Corpus::generate(&cfg);
    let mut config = SystemConfig::paper_default(budgets());
    config.growth = Some(miso_core::GrowthConfig {
        kind: LogKind::Twitter,
        records_per_epoch: 100,
        policy: MaintenancePolicy::Refresh,
        logs: cfg.clone(),
    });
    let mut sys = system_with(&corpus, config);
    // 8 queries at reorg_every=3 → growth steps before queries 3 and 6.
    let qs: Vec<_> = (0..4).flat_map(|_| queries()).collect();
    let result = sys.run_workload(Variant::MsMiso, &qs).unwrap();
    assert_eq!(result.maintenance.len(), 2, "one report per growth step");
    let grown: u64 = result
        .maintenance
        .iter()
        .map(|r| r.appended.as_bytes())
        .sum();
    assert!(grown > 0);
    assert_eq!(
        sys.hv.log_lines("twitter").unwrap().len(),
        cfg.tweets + 200,
        "corpus grew by records_per_epoch per boundary"
    );

    // Identical run without growth: corpus untouched, no reports.
    let mut baseline = system_with(&corpus, SystemConfig::paper_default(budgets()));
    let base_result = baseline.run_workload(Variant::MsMiso, &qs).unwrap();
    assert!(base_result.maintenance.is_empty());
    assert_eq!(baseline.hv.log_lines("twitter").unwrap().len(), cfg.tweets);
}
