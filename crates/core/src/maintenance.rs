//! Opportunistic-view maintenance under append-only log growth.
//!
//! The paper defers updates to future work but sketches the shape of the
//! problem (§6): views are created opportunistically (recreating one is
//! free next time its subexpression runs), the domain is exploratory (stale
//! answers over logs are often acceptable until the analyst re-queries),
//! and HDFS updates are **append-only**. This module implements the two
//! natural policies those observations suggest:
//!
//! * [`MaintenancePolicy::Invalidate`] — drop every view over the appended
//!   log. Zero maintenance cost; the views regrow as by-products of the
//!   next queries (the "opportunistic" answer).
//! * [`MaintenancePolicy::Refresh`] — keep the design warm. Views whose
//!   defining plan is *distributive* over the log (per-record operators
//!   only: projections, filters, UDFs — no join/aggregate/sort/limit) are
//!   refreshed **incrementally**: the defining plan runs over just the
//!   appended delta and the new rows are unioned in, exact by
//!   distributivity. Non-distributive views are recomputed in full.
//!   DW-resident views additionally pay transfer + load for the shipped
//!   rows.
//!
//! Either way the system's query results always reflect the appended data
//! (stale views are never silently served).

use crate::system::MultistoreSystem;
use miso_common::{ByteSize, MisoError, Result, SimClock, SimDuration};
use miso_data::logs::LogKind;
use miso_data::Row;
use miso_dw::{DwActivity, TableSpace};
use miso_exec::engine::{execute, DataSource};
use miso_plan::{LogicalPlan, Operator};
use std::sync::Arc;

/// How to treat views over a log that just grew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Drop affected views; let them regrow opportunistically.
    Invalidate,
    /// Keep affected views current (incremental where distributive).
    Refresh,
}

/// What one append did to the physical design.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Bytes appended to the base log.
    pub appended: ByteSize,
    /// Views dropped (Invalidate, or Refresh fallback when a view's inputs
    /// are unavailable for recomputation).
    pub invalidated: Vec<String>,
    /// Views refreshed incrementally (delta-only execution).
    pub delta_refreshed: Vec<String>,
    /// Views recomputed in full.
    pub recomputed: Vec<String>,
    /// Simulated maintenance time charged.
    pub cost: SimDuration,
}

/// A data source that exposes only the appended lines of one log (plus the
/// HV store's views, so defining plans over earlier views still resolve).
struct DeltaSource<'a> {
    hv: &'a miso_hv::HvStore,
    log: &'a str,
    delta: &'a [String],
}

impl DataSource for DeltaSource<'_> {
    fn log_lines(&self, log: &str) -> Result<&[String]> {
        if log == self.log {
            Ok(self.delta)
        } else {
            // Other logs did not change: their contribution to a
            // distributive single-log plan's delta is empty.
            Ok(&[])
        }
    }

    fn view_rows(&self, view: &str) -> Result<&[Row]> {
        self.hv.view_rows_slice(view)
    }
}

/// True iff `plan` is per-record over its scans: every operator distributes
/// over unions of the input log (so `P(old ∪ Δ) = P(old) ∪ P(Δ)`).
pub fn is_distributive(plan: &LogicalPlan) -> bool {
    plan.nodes().iter().all(|n| {
        matches!(
            n.op,
            Operator::ScanLog { .. }
                | Operator::ScanView { .. }
                | Operator::Filter { .. }
                | Operator::Project { .. }
                | Operator::Udf { .. }
        )
    }) && plan.scanned_views().is_empty()
    // Views-of-views are conservatively non-distributive here: their base
    // views refresh in the same pass and ordering is not tracked.
}

impl MultistoreSystem {
    /// Appends `lines` to the given base log and maintains affected views
    /// per `policy`. Maintenance time is charged to the TTI `tune` bucket
    /// (it is physical-design upkeep) and to the background-contention
    /// timeline as view-transfer activity where DW is touched.
    pub fn append_log(
        &mut self,
        kind: LogKind,
        lines: Vec<String>,
        policy: MaintenancePolicy,
        clock: &mut SimClock,
    ) -> Result<MaintenanceReport> {
        let log_name = kind.table_name();
        let mut report = MaintenanceReport {
            appended: self.hv.append_log(log_name, lines.clone())?,
            ..Default::default()
        };

        // Which views are defined (transitively) over this log? Refresh in
        // dependency order: a view scanning another affected view goes after
        // its dependency (Kahn-style passes over the small affected set).
        let mut affected: Vec<String> = self
            .catalog
            .defs()
            .iter()
            .filter(|def| def.plan.base_logs().iter().any(|l| l == log_name))
            .map(|def| def.name.clone())
            .collect();
        {
            let affected_set: std::collections::HashSet<String> =
                affected.iter().cloned().collect();
            let mut ordered = Vec::with_capacity(affected.len());
            let mut remaining = affected.clone();
            while !remaining.is_empty() {
                let ready: Vec<String> = remaining
                    .iter()
                    .filter(|name| {
                        let def = self.catalog.get(name).expect("affected view");
                        def.plan
                            .scanned_views()
                            .iter()
                            .all(|dep| !affected_set.contains(dep) || ordered.contains(dep))
                    })
                    .cloned()
                    .collect();
                if ready.is_empty() {
                    // Cycle cannot happen (views are DAG-shaped), but guard.
                    ordered.extend(remaining);
                    break;
                }
                remaining.retain(|n| !ready.contains(n));
                ordered.extend(ready);
            }
            affected = ordered;
        }

        for name in affected {
            let def = self.catalog.get(&name).expect("listed above").clone();
            match policy {
                MaintenancePolicy::Invalidate => {
                    self.hv.remove_view(&name);
                    self.dw.evict_view(&name);
                    self.catalog.remove(&name);
                    report.invalidated.push(name);
                }
                MaintenancePolicy::Refresh => {
                    let outcome = self.refresh_view(&def, log_name, &lines, clock);
                    match outcome {
                        Ok(RefreshOutcome::Delta(cost)) => {
                            report.cost += cost;
                            report.delta_refreshed.push(name);
                        }
                        Ok(RefreshOutcome::Full(cost)) => {
                            report.cost += cost;
                            report.recomputed.push(name);
                        }
                        Err(_) => {
                            // Inputs unavailable (e.g. defining plan scans a
                            // view that only lives in DW): fall back to
                            // invalidation rather than serving stale rows.
                            self.hv.remove_view(&name);
                            self.dw.evict_view(&name);
                            self.catalog.remove(&name);
                            report.invalidated.push(name);
                        }
                    }
                }
            }
        }
        Ok(report)
    }
}

enum RefreshOutcome {
    Delta(SimDuration),
    Full(SimDuration),
}

impl MultistoreSystem {
    fn refresh_view(
        &mut self,
        def: &miso_views::ViewDef,
        log_name: &str,
        delta: &[String],
        clock: &mut SimClock,
    ) -> Result<RefreshOutcome> {
        let in_dw = self.dw.has_view(&def.name);
        let udfs = self.udf_registry().clone();
        if is_distributive(&def.plan) {
            // Run the defining plan over the delta only and union the rows.
            let src = DeltaSource {
                hv: &self.hv,
                log: log_name,
                delta,
            };
            let exec = execute(&def.plan, &src, &udfs)?;
            let new_rows = exec.root_rows()?.to_vec();
            let delta_bytes = ByteSize::from_bytes(new_rows.iter().map(Row::approx_bytes).sum());
            let scan_bytes = ByteSize::from_bytes(delta.iter().map(|l| l.len() as u64 + 1).sum());
            let mut cost =
                self.hv
                    .cost_model
                    .stage_cost(scan_bytes, delta_bytes, new_rows.len() as u64);
            // Union into the resident copy.
            if in_dw {
                let (schema, rows, _) = self.dw.evict_view(&def.name).ok_or_else(|| {
                    MisoError::integrity(&def.name, "DW copy vanished during refresh")
                })?;
                let mut all = rows.as_ref().clone();
                all.extend(new_rows);
                let move_cost = self.transfer_model().transfer_cost(delta_bytes)
                    + self.dw.load_cost(delta_bytes);
                cost += self.stretch_for_maintenance(move_cost, clock);
                self.dw
                    .load_view(&def.name, schema, Arc::new(all), TableSpace::Permanent);
            } else if let Some(rows) = self.hv.view_rows(&def.name) {
                let mut all = rows.as_ref().clone();
                all.extend(new_rows);
                self.hv
                    .install_view(&def.name, def.schema.clone(), Arc::new(all));
            } else {
                return Err(MisoError::integrity(
                    &def.name,
                    "view resident nowhere at refresh time",
                ));
            }
            self.bump_view_stats(&def.name)?;
            clock.advance(cost);
            Ok(RefreshOutcome::Delta(cost))
        } else {
            // Full recomputation in HV (the defining plan's scans must be
            // resolvable there).
            let run = self.hv.execute(&def.plan, None, &udfs)?;
            let root = def.plan.root();
            let out = run
                .materialized
                .iter()
                .find(|m| m.node == root)
                .ok_or_else(|| MisoError::Execution("refresh produced no output".into()))?;
            let mut cost = run.cost;
            if in_dw {
                self.dw.evict_view(&def.name);
                let move_cost = self.hv.dump_cost(out.size)
                    + self.transfer_model().transfer_cost(out.size)
                    + self.dw.load_cost(out.size);
                cost += self.stretch_for_maintenance(move_cost, clock);
                self.dw.load_view(
                    &def.name,
                    out.schema.clone(),
                    out.rows.clone(),
                    TableSpace::Permanent,
                );
            } else {
                self.hv
                    .install_view(&def.name, out.schema.clone(), out.rows.clone());
            }
            self.bump_view_stats(&def.name)?;
            clock.advance(cost);
            Ok(RefreshOutcome::Full(cost))
        }
    }

    /// Updates catalog size/rowcount metadata — and the authoritative
    /// content checksum — after a refresh: the refreshed rows are the new
    /// materialization-time truth (without the re-stamp, the scrubber and
    /// read-time verification would falsely quarantine every refreshed
    /// view).
    fn bump_view_stats(&mut self, name: &str) -> Result<()> {
        let rows = self
            .hv
            .view_rows(name)
            .or_else(|| self.dw.view_rows_arc(name))
            .ok_or_else(|| MisoError::integrity(name, "refreshed view resident nowhere"))?;
        let size = self
            .hv
            .view_size(name)
            .or_else(|| self.dw.view_size(name))
            .unwrap_or(ByteSize::ZERO);
        self.catalog.update_stats(name, size, rows.len() as u64);
        self.catalog
            .set_checksum(name, miso_data::checksum_rows(&rows));
        Ok(())
    }

    fn stretch_for_maintenance(&mut self, raw: SimDuration, clock: &SimClock) -> SimDuration {
        self.stretch_public(raw, DwActivity::ViewTransfer, clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use crate::variants::Variant;
    use miso_common::Budgets;
    use miso_data::logs::{generate_delta, Corpus, LogsConfig};
    use miso_lang::compile;
    use miso_workload::{standard_udfs, workload_catalog};

    fn system() -> (MultistoreSystem, LogsConfig) {
        let cfg = LogsConfig::tiny();
        let corpus = Corpus::generate(&cfg);
        let budgets = Budgets::new(
            ByteSize::from_mib(64),
            ByteSize::from_mib(8),
            ByteSize::from_mib(4),
        )
        .with_discretization(ByteSize::from_kib(16));
        (
            MultistoreSystem::new(
                &corpus,
                workload_catalog(),
                standard_udfs(),
                SystemConfig::paper_default(budgets),
            ),
            cfg,
        )
    }

    fn count_query() -> (String, LogicalPlan) {
        let catalog = workload_catalog();
        (
            "ids".to_string(),
            compile(
                "SELECT t.tweet_id AS id FROM twitter t WHERE t.tweet_id >= 0",
                &catalog,
            )
            .unwrap(),
        )
    }

    #[test]
    fn appended_rows_are_visible_to_queries() {
        let (mut sys, cfg) = system();
        let q = count_query();
        let before = sys
            .run_workload(Variant::HvOnly, &[q.clone()])
            .unwrap()
            .records[0]
            .result_rows;

        let delta = generate_delta(&cfg, LogKind::Twitter, 0, 100);
        let mut clock = SimClock::new();
        sys.append_log(
            LogKind::Twitter,
            delta,
            MaintenancePolicy::Invalidate,
            &mut clock,
        )
        .unwrap();
        let after = sys.run_workload(Variant::HvOnly, &[q]).unwrap().records[0].result_rows;
        assert_eq!(after, before + 100, "{after} vs {before}");
    }

    #[test]
    fn invalidate_drops_only_affected_views() {
        let (mut sys, cfg) = system();
        // Create views over twitter and foursquare via MS-MISO runs.
        let catalog = workload_catalog();
        let queries = vec![
            (
                "tw".to_string(),
                compile(
                    "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                     WHERE t.followers > 10 GROUP BY t.city",
                    &catalog,
                )
                .unwrap(),
            ),
            (
                "fs".to_string(),
                compile(
                    "SELECT f.city AS c, COUNT(*) AS n FROM foursquare f \
                     WHERE f.likes > 0 GROUP BY f.city",
                    &catalog,
                )
                .unwrap(),
            ),
        ];
        sys.run_workload(Variant::MsMiso, &queries).unwrap();
        let twitter_views: Vec<String> = sys
            .catalog
            .defs()
            .iter()
            .filter(|d| d.plan.base_logs().contains(&"twitter".to_string()))
            .map(|d| d.name.clone())
            .collect();
        let foursquare_views: Vec<String> = sys
            .catalog
            .defs()
            .iter()
            .filter(|d| d.plan.base_logs().contains(&"foursquare".to_string()))
            .map(|d| d.name.clone())
            .collect();
        assert!(!twitter_views.is_empty() && !foursquare_views.is_empty());

        let delta = generate_delta(&cfg, LogKind::Twitter, 0, 50);
        let mut clock = SimClock::new();
        let report = sys
            .append_log(
                LogKind::Twitter,
                delta,
                MaintenancePolicy::Invalidate,
                &mut clock,
            )
            .unwrap();
        assert_eq!(report.invalidated.len(), twitter_views.len());
        for v in &twitter_views {
            assert!(!sys.catalog.contains(v), "{v} should be gone");
        }
        for v in &foursquare_views {
            assert!(sys.catalog.contains(v), "{v} should survive");
        }
    }

    #[test]
    fn refresh_keeps_views_current_and_correct() {
        let (mut sys, cfg) = system();
        let catalog = workload_catalog();
        // A query whose filter view is distributive.
        let q = (
            "filtered".to_string(),
            compile(
                "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                 WHERE t.followers > 10 GROUP BY t.city",
                &catalog,
            )
            .unwrap(),
        );
        sys.run_workload(Variant::MsMiso, std::slice::from_ref(&q))
            .unwrap();
        assert!(!sys.catalog.is_empty());

        let delta = generate_delta(&cfg, LogKind::Twitter, 1, 200);
        let mut clock = SimClock::new();
        let report = sys
            .append_log(
                LogKind::Twitter,
                delta,
                MaintenancePolicy::Refresh,
                &mut clock,
            )
            .unwrap();
        assert!(
            !report.delta_refreshed.is_empty() || !report.recomputed.is_empty(),
            "{report:?}"
        );
        assert!(report.cost > SimDuration::ZERO);

        // Post-refresh, a rerun reusing views must agree with a from-scratch
        // system over the same (grown) corpus.
        let reuse = sys
            .run_workload(Variant::MsMiso, std::slice::from_ref(&q))
            .unwrap();
        let mut fresh_corpus = Corpus::generate(&cfg);
        let delta_again = generate_delta(&cfg, LogKind::Twitter, 1, 200);
        fresh_corpus.twitter.lines.extend(delta_again);
        let budgets = Budgets::new(
            ByteSize::from_mib(64),
            ByteSize::from_mib(8),
            ByteSize::from_mib(4),
        )
        .with_discretization(ByteSize::from_kib(16));
        let mut fresh = MultistoreSystem::new(
            &fresh_corpus,
            workload_catalog(),
            standard_udfs(),
            SystemConfig::paper_default(budgets),
        );
        let scratch = fresh.run_workload(Variant::HvOnly, &[q]).unwrap();
        assert_eq!(
            reuse.records[0].result_rows, scratch.records[0].result_rows,
            "refreshed views must yield the same answer as recomputation"
        );
    }

    #[test]
    fn distributivity_classification() {
        let catalog = workload_catalog();
        let spj = compile(
            "SELECT t.city AS c FROM twitter t WHERE t.followers > 5",
            &catalog,
        )
        .unwrap();
        assert!(is_distributive(&spj));
        let agg = compile(
            "SELECT t.city AS c, COUNT(*) AS n FROM twitter t GROUP BY t.city",
            &catalog,
        )
        .unwrap();
        assert!(!is_distributive(&agg));
        let join = compile(
            "SELECT t.user_id AS u FROM twitter t \
             JOIN foursquare f ON t.user_id = f.user_id WHERE t.followers > 1",
            &catalog,
        )
        .unwrap();
        assert!(!is_distributive(&join));
    }

    #[test]
    fn append_to_unknown_log_errors() {
        let (mut sys, _) = system();
        let mut clock = SimClock::new();
        // Landmarks exists; craft a bogus call via direct store access.
        let err = sys
            .hv
            .append_log("instagram", vec!["{}".into()])
            .unwrap_err();
        assert!(err.to_string().contains("instagram"));
        // And a legitimate empty append is a no-op.
        let report = sys
            .append_log(
                LogKind::Landmarks,
                vec![],
                MaintenancePolicy::Refresh,
                &mut clock,
            )
            .unwrap();
        assert!(report.appended.is_zero());
    }
}
