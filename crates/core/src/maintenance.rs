//! Opportunistic-view maintenance under append-only log growth.
//!
//! The paper defers updates to future work but sketches the shape of the
//! problem (§6): views are created opportunistically (recreating one is
//! free next time its subexpression runs), the domain is exploratory (stale
//! answers over logs are often acceptable until the analyst re-queries),
//! and HDFS updates are **append-only**. This module implements the two
//! natural policies those observations suggest:
//!
//! * [`MaintenancePolicy::Invalidate`] — drop every view over the appended
//!   log. Zero maintenance cost; the views regrow as by-products of the
//!   next queries (the "opportunistic" answer).
//! * [`MaintenancePolicy::Refresh`] — keep the design warm. With IVM on
//!   (`SystemConfig::ivm`, default; `MISO_IVM` overrides), each affected
//!   view goes through the delta-maintenance analyzer
//!   ([`miso_views::analyze_maintenance`]): maintainable views — filters,
//!   projections, UDFs, joins with the delta on the probe side, and a
//!   topmost aggregate — fold the appended delta into live state
//!   ([`miso_exec::AggState`], stored join build sides) in O(|delta|),
//!   re-stamping the integrity checksum incrementally through
//!   [`RowSetDigest`] (bit-identical to a full re-checksum). Everything
//!   else — and every fallback ([`FullReason`]) — recomputes in full,
//!   rebuilding the maintenance state as a side effect. With IVM off, the
//!   original distributive-union path runs unchanged.
//!
//! Either way the system's query results always reflect the appended data
//! (stale views are never silently served), and a delta-maintained view is
//! row- and checksum-identical to a freshly recomputed one.

use crate::system::MultistoreSystem;
use miso_common::{ByteSize, MisoError, Result, SimClock, SimDuration};
use miso_data::checksum::RowSetDigest;
use miso_data::logs::LogKind;
use miso_data::{Delta, Row};
use miso_dw::{DwActivity, TableSpace};
use miso_exec::engine::{execute, DataSource};
use miso_exec::{apply_projection, AggState, FoldOutcome};
use miso_plan::{LogicalPlan, Operator};
use miso_views::{analyze_maintenance, FullReason, MaintPlan};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How to treat views over a log that just grew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Drop affected views; let them regrow opportunistically.
    Invalidate,
    /// Keep affected views current (incremental where maintainable).
    Refresh,
}

/// What happened to one affected view during an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintAction {
    /// The delta was folded into the stored view (and its checksum
    /// re-stamped) without touching the base data.
    Delta,
    /// The view was recomputed from its defining plan.
    Full,
    /// The view was dropped (policy, or refresh inputs unavailable).
    Invalidated,
}

/// One per-view maintenance decision, with the *why* when the delta path
/// was not taken.
#[derive(Debug, Clone)]
pub struct MaintDecision {
    /// The view.
    pub view: String,
    /// What was done.
    pub action: MaintAction,
    /// Why a full rebuild (or invalidation) was chosen instead of a delta
    /// apply. `None` exactly when `action == Delta`, and for
    /// policy-driven invalidations.
    pub reason: Option<FullReason>,
    /// Raw delta lines this append carried.
    pub delta_rows: u64,
    /// Simulated maintenance time charged for this view.
    pub cost: SimDuration,
}

/// What one append did to the physical design.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Bytes appended to the base log.
    pub appended: ByteSize,
    /// Views dropped (Invalidate, or Refresh fallback when a view's inputs
    /// are unavailable for recomputation).
    pub invalidated: Vec<String>,
    /// Views refreshed incrementally (delta-only execution).
    pub delta_refreshed: Vec<String>,
    /// Views recomputed in full.
    pub recomputed: Vec<String>,
    /// Per-view decisions, in maintenance order, each carrying the reason
    /// when the delta path was not taken.
    pub decisions: Vec<MaintDecision>,
    /// Simulated maintenance time charged.
    pub cost: SimDuration,
}

/// Live incremental-maintenance state for one view: the running content
/// digest (finishes to the catalog checksum), the stored join build sides
/// the delta plan probes, and the aggregate fold state when the view ends
/// in an aggregate.
pub(crate) struct IvmViewState {
    /// Incremental multiset digest of the stored rows. Checked against the
    /// catalog checksum before every delta apply: any out-of-band rebuild
    /// (reorg repair, harvest refresh) makes the state read as stale and
    /// forces a rebuild instead of a wrong fold.
    digest: RowSetDigest,
    /// Materialized right (build) inputs of delta-on-probe-side joins,
    /// keyed by their synthetic `§ivm:` view names.
    builds: HashMap<String, Arc<Vec<Row>>>,
    /// Aggregate fold state, `None` for append-only views and for
    /// aggregates that resolved to float accumulation.
    agg: Option<AggState>,
}

/// A data source that exposes only the appended lines of one log, the
/// stored join build sides under their synthetic names, and the HV store's
/// views (so defining plans over earlier views still resolve).
struct DeltaSource<'a> {
    hv: &'a miso_hv::HvStore,
    log: &'a str,
    delta: &'a [String],
    builds: &'a HashMap<String, Arc<Vec<Row>>>,
}

impl DataSource for DeltaSource<'_> {
    fn log_lines(&self, log: &str) -> Result<&[String]> {
        if log == self.log {
            Ok(self.delta)
        } else {
            // Other logs did not change: their contribution to the delta
            // plan is empty.
            Ok(&[])
        }
    }

    fn view_rows(&self, view: &str) -> Result<&[Row]> {
        if let Some(rows) = self.builds.get(view) {
            Ok(rows)
        } else {
            self.hv.view_rows_slice(view)
        }
    }

    fn view_rows_shared(&self, view: &str) -> Option<Arc<Vec<Row>>> {
        self.builds
            .get(view)
            .cloned()
            .or_else(|| self.hv.view_rows(view))
    }
}

/// True iff `plan` is per-record over its scans: every operator distributes
/// over unions of the input log (so `P(old ∪ Δ) = P(old) ∪ P(Δ)`).
pub fn is_distributive(plan: &LogicalPlan) -> bool {
    plan.nodes().iter().all(|n| {
        matches!(
            n.op,
            Operator::ScanLog { .. }
                | Operator::ScanView { .. }
                | Operator::Filter { .. }
                | Operator::Project { .. }
                | Operator::Udf { .. }
        )
    }) && plan.scanned_views().is_empty()
    // Views-of-views are conservatively non-distributive here: their base
    // views refresh in the same pass and ordering is not tracked.
}

impl MultistoreSystem {
    /// Ingests one append-only [`Delta`] batch: appends its lines to the
    /// target base log and maintains affected views per `policy`. This is
    /// the epoch-loop growth step — the corpus grows, the design keeps up.
    pub fn grow(
        &mut self,
        delta: &Delta,
        policy: MaintenancePolicy,
        clock: &mut SimClock,
    ) -> Result<MaintenanceReport> {
        let kind = LogKind::from_table_name(&delta.log)
            .ok_or_else(|| MisoError::Store(format!("no base log `{}`", delta.log)))?;
        self.append_log(kind, delta.lines.clone(), policy, clock)
    }

    /// Appends `lines` to the given base log and maintains affected views
    /// per `policy`. Maintenance time is charged to the TTI `tune` bucket
    /// (it is physical-design upkeep) and to the background-contention
    /// timeline as view-transfer activity where DW is touched.
    pub fn append_log(
        &mut self,
        kind: LogKind,
        lines: Vec<String>,
        policy: MaintenancePolicy,
        clock: &mut SimClock,
    ) -> Result<MaintenanceReport> {
        let log_name = kind.table_name();
        let mut report = MaintenanceReport {
            appended: self.hv.append_log(log_name, lines.clone())?,
            ..Default::default()
        };
        let delta_rows = lines.len() as u64;
        miso_obs::count("maint.delta_rows", delta_rows);
        // Drop state for views that no longer exist (evicted, dropped by a
        // reorg); surviving stale state is caught by the digest check.
        {
            let catalog = &self.catalog;
            self.ivm_state.retain(|name, _| catalog.contains(name));
        }

        // Which views are defined (transitively) over this log? Refresh in
        // dependency order: a view scanning another affected view goes after
        // its dependency (Kahn-style passes over the small affected set).
        let mut affected: Vec<String> = self
            .catalog
            .defs()
            .iter()
            .filter(|def| def.plan.base_logs().iter().any(|l| l == log_name))
            .map(|def| def.name.clone())
            .collect();
        {
            let affected_set: std::collections::HashSet<String> =
                affected.iter().cloned().collect();
            let mut ordered = Vec::with_capacity(affected.len());
            let mut remaining = affected.clone();
            while !remaining.is_empty() {
                let ready: Vec<String> = remaining
                    .iter()
                    .filter(|name| {
                        let def = self.catalog.get(name).expect("affected view");
                        def.plan
                            .scanned_views()
                            .iter()
                            .all(|dep| !affected_set.contains(dep) || ordered.contains(dep))
                    })
                    .cloned()
                    .collect();
                if ready.is_empty() {
                    // Cycle cannot happen (views are DAG-shaped), but guard.
                    ordered.extend(remaining);
                    break;
                }
                remaining.retain(|n| !ready.contains(n));
                ordered.extend(ready);
            }
            affected = ordered;
        }

        for name in affected {
            let def = self.catalog.get(&name).expect("listed above").clone();
            match policy {
                MaintenancePolicy::Invalidate => {
                    self.hv.remove_view(&name);
                    self.dw.evict_view(&name);
                    self.catalog.remove(&name);
                    self.ivm_state.remove(&name);
                    report.invalidated.push(name.clone());
                    report.decisions.push(MaintDecision {
                        view: name,
                        action: MaintAction::Invalidated,
                        reason: None,
                        delta_rows,
                        cost: SimDuration::ZERO,
                    });
                }
                MaintenancePolicy::Refresh => {
                    let wall = Instant::now();
                    let outcome = if self.config.ivm {
                        self.refresh_view_ivm(&def, log_name, &lines, clock)
                    } else {
                        // IVM off: the original distributive-union /
                        // full-recompute path, byte-identical to before.
                        self.refresh_view(&def, log_name, &lines, clock)
                            .map(|o| match o {
                                RefreshOutcome::Delta(cost) => IvmOutcome::Applied {
                                    cost,
                                    rows: delta_rows,
                                },
                                RefreshOutcome::Full(cost) => IvmOutcome::Fallback {
                                    cost,
                                    reason: FullReason::IvmDisabled,
                                },
                            })
                    };
                    miso_obs::observe("ivm.refresh_ns", wall.elapsed().as_nanos() as u64);
                    match outcome {
                        Ok(IvmOutcome::Applied { cost, rows }) => {
                            miso_obs::count("maint.delta_applies", 1);
                            report.cost += cost;
                            report.delta_refreshed.push(name.clone());
                            report.decisions.push(MaintDecision {
                                view: name,
                                action: MaintAction::Delta,
                                reason: None,
                                delta_rows: rows,
                                cost,
                            });
                        }
                        Ok(IvmOutcome::Fallback { cost, reason }) => {
                            miso_obs::count("maint.full_refreshes", 1);
                            if reason.is_fallback() {
                                miso_obs::count("maint.fallbacks", 1);
                            }
                            report.cost += cost;
                            report.recomputed.push(name.clone());
                            report.decisions.push(MaintDecision {
                                view: name,
                                action: MaintAction::Full,
                                reason: Some(reason),
                                delta_rows,
                                cost,
                            });
                        }
                        Err(_) => {
                            // Inputs unavailable (e.g. defining plan scans a
                            // view that only lives in DW): fall back to
                            // invalidation rather than serving stale rows.
                            self.hv.remove_view(&name);
                            self.dw.evict_view(&name);
                            self.catalog.remove(&name);
                            self.ivm_state.remove(&name);
                            miso_obs::count("maint.fallbacks", 1);
                            report.invalidated.push(name.clone());
                            report.decisions.push(MaintDecision {
                                view: name,
                                action: MaintAction::Invalidated,
                                reason: None,
                                delta_rows,
                                cost: SimDuration::ZERO,
                            });
                        }
                    }
                }
            }
        }
        Ok(report)
    }
}

enum RefreshOutcome {
    Delta(SimDuration),
    Full(SimDuration),
}

/// Outcome of the IVM-aware refresh of one view.
enum IvmOutcome {
    /// The delta folded into the stored view.
    Applied { cost: SimDuration, rows: u64 },
    /// A full recompute ran instead, for the given reason.
    Fallback {
        cost: SimDuration,
        reason: FullReason,
    },
}

/// Outcome of one delta-apply attempt against live state.
enum ApplyResult {
    Applied(SimDuration),
    /// The aggregate resolved to float accumulation: fold would not be
    /// bit-identical to a rebuild, fall back to full.
    Float,
}

impl MultistoreSystem {
    /// The IVM-aware refresh: delta-fold when the view is maintainable and
    /// its state is warm and verified, full recompute (rebuilding state as
    /// a side effect) otherwise. Every full path carries its [`FullReason`].
    fn refresh_view_ivm(
        &mut self,
        def: &miso_views::ViewDef,
        log_name: &str,
        delta: &[String],
        clock: &mut SimClock,
    ) -> Result<IvmOutcome> {
        let name = &def.name;
        let full_old = |sys: &mut Self, reason: FullReason, clock: &mut SimClock| {
            // Fall back to the pre-IVM path (distributive union or full
            // recompute); it does not maintain IVM state, so drop any.
            sys.ivm_state.remove(name);
            sys.refresh_view(def, log_name, delta, clock)
                .map(|o| match o {
                    RefreshOutcome::Delta(cost) => IvmOutcome::Applied {
                        cost,
                        rows: delta.len() as u64,
                    },
                    RefreshOutcome::Full(cost) => IvmOutcome::Fallback { cost, reason },
                })
        };
        if self.catalog.is_quarantined(name) {
            // A quarantined view has no store copies to refresh (they were
            // dropped at quarantine time), and its eventual repair — the
            // reorg's recompute path — re-executes the defining plan over
            // the already-grown base log. Deferring the rebuild there is
            // safe (nothing stale is servable) and costs nothing now.
            self.ivm_state.remove(name);
            return Ok(IvmOutcome::Fallback {
                cost: SimDuration::ZERO,
                reason: FullReason::Quarantined,
            });
        }
        let mplan = match analyze_maintenance(&def.plan, log_name) {
            Ok(p) => p,
            Err(reason) => return full_old(self, reason, clock),
        };
        // Delta-size policy: past the threshold a rebuild is at least as
        // cheap as folding (and resets any state drift), so prefer it.
        let delta_rows = delta.len() as u64;
        let base_rows = (self.hv.log_lines(log_name)?.len() as u64).saturating_sub(delta_rows);
        if delta_rows as f64 > self.config.ivm_max_delta_frac * base_rows as f64 {
            let cost = self.rebuild_with_state(def, &mplan, clock)?;
            return Ok(IvmOutcome::Fallback {
                cost,
                reason: FullReason::DeltaTooLarge {
                    delta_rows,
                    base_rows,
                },
            });
        }
        // State check: cold (never built) or stale (the stored view was
        // rebuilt out of band — the digest no longer matches the catalog
        // checksum) forces a rebuild that recaptures fresh state.
        let mut warm = match self.ivm_state.get(name) {
            Some(st) => Some(st.digest.finish()) == self.catalog.get(name).and_then(|d| d.checksum),
            None => false,
        };
        // A pure per-record plan's entire fold state is the running digest,
        // which can be re-seeded from the resident rows without executing
        // the plan — only if the reconstruction matches the catalog stamp
        // (a mismatch means the copy is suspect and the rebuild resets it).
        if !warm && matches!(mplan, MaintPlan::Append(_)) && mplan.builds().is_empty() {
            if let Some(rows) = self
                .hv
                .view_rows(name)
                .or_else(|| self.dw.view_rows_arc(name))
            {
                let digest = RowSetDigest::from_rows(&rows);
                if Some(digest.finish()) == self.catalog.get(name).and_then(|d| d.checksum) {
                    self.ivm_state.insert(
                        name.clone(),
                        IvmViewState {
                            digest,
                            builds: HashMap::new(),
                            agg: None,
                        },
                    );
                    warm = true;
                }
            }
        }
        if !warm {
            let reason = if self.ivm_state.contains_key(name) {
                FullReason::StateStale
            } else {
                FullReason::StateCold
            };
            let cost = self.rebuild_with_state(def, &mplan, clock)?;
            return Ok(IvmOutcome::Fallback { cost, reason });
        }
        let mut state = self.ivm_state.remove(name).expect("state verified warm");
        match self.apply_delta(def, &mplan, &mut state, log_name, delta, clock)? {
            ApplyResult::Applied(cost) => {
                self.ivm_state.insert(name.clone(), state);
                Ok(IvmOutcome::Applied {
                    cost,
                    rows: delta_rows,
                })
            }
            ApplyResult::Float => {
                let cost = self.rebuild_with_state(def, &mplan, clock)?;
                Ok(IvmOutcome::Fallback {
                    cost,
                    reason: FullReason::FloatAggregate,
                })
            }
        }
    }

    /// Folds one delta into warm state: runs the delta plan over just the
    /// appended lines (stored build sides resolve the join probes), then
    /// either appends the produced rows or patches the aggregate's changed
    /// groups — re-stamping the content checksum incrementally in
    /// O(changed rows).
    fn apply_delta(
        &mut self,
        def: &miso_views::ViewDef,
        mplan: &MaintPlan,
        state: &mut IvmViewState,
        log_name: &str,
        delta: &[String],
        clock: &mut SimClock,
    ) -> Result<ApplyResult> {
        let name = &def.name;
        let in_dw = self.dw.has_view(name);
        let udfs = self.udf_registry().clone();
        let scan_bytes = ByteSize::from_bytes(delta.iter().map(|l| l.len() as u64 + 1).sum());
        match mplan {
            MaintPlan::Append(_) => {
                let exec = {
                    let src = DeltaSource {
                        hv: &self.hv,
                        log: log_name,
                        delta,
                        builds: &state.builds,
                    };
                    execute(mplan.delta_plan(), &src, &udfs)?
                };
                let new_rows = exec.root_rows()?.to_vec();
                let added = ByteSize::from_bytes(new_rows.iter().map(Row::approx_bytes).sum());
                for r in &new_rows {
                    state.digest.add_row(r);
                }
                let checksum = state.digest.finish();
                let row_count = state.digest.count();
                let mut cost =
                    self.hv
                        .cost_model
                        .stage_cost(scan_bytes, added, new_rows.len() as u64);
                let size = if in_dw {
                    let (schema, mut rows, size) = self.dw.evict_view(name).ok_or_else(|| {
                        MisoError::integrity(name.as_str(), "DW copy vanished during refresh")
                    })?;
                    Arc::make_mut(&mut rows).extend(new_rows);
                    let move_cost =
                        self.transfer_model().transfer_cost(added) + self.dw.load_cost(added);
                    cost += self.stretch_for_maintenance(move_cost, clock);
                    self.dw
                        .load_view_with_checksum(name, schema, rows, size + added, checksum);
                    size + added
                } else {
                    let (schema, mut rows, size) = self.hv.take_view(name).ok_or_else(|| {
                        MisoError::integrity(name.as_str(), "view resident nowhere at refresh time")
                    })?;
                    Arc::make_mut(&mut rows).extend(new_rows);
                    self.hv
                        .install_view_with_checksum(name, schema, rows, size + added, checksum);
                    size + added
                };
                self.catalog.set_checksum(name, checksum);
                self.catalog.update_stats(name, size, row_count);
                clock.advance(cost);
                Ok(ApplyResult::Applied(cost))
            }
            MaintPlan::Aggregate(da) => {
                let Some(agg) = state.agg.as_mut() else {
                    // Built as non-foldable (float accumulation).
                    return Ok(ApplyResult::Float);
                };
                let exec = {
                    let src = DeltaSource {
                        hv: &self.hv,
                        log: log_name,
                        delta,
                        builds: &state.builds,
                    };
                    execute(mplan.delta_plan(), &src, &udfs)?
                };
                let fold = agg.apply(exec.root_rows()?, &da.group_by, &da.aggs)?;
                let applied = match fold {
                    FoldOutcome::Applied(a) => a,
                    FoldOutcome::FloatSum => return Ok(ApplyResult::Float),
                };
                let delta_in = exec.root_rows()?.len() as u64;
                let (schema, mut rows_arc) = if in_dw {
                    let (schema, rows, _) = self.dw.evict_view(name).ok_or_else(|| {
                        MisoError::integrity(name.as_str(), "DW copy vanished during refresh")
                    })?;
                    (schema, rows)
                } else {
                    let (schema, rows, _) = self.hv.take_view(name).ok_or_else(|| {
                        MisoError::integrity(name.as_str(), "view resident nowhere at refresh time")
                    })?;
                    (schema, rows)
                };
                let rows = Arc::make_mut(&mut rows_arc);
                let mut changed_bytes = 0u64;
                for (slot, agg_row) in &applied.updated {
                    let new_row = apply_projection(&da.post, agg_row)?;
                    changed_bytes += new_row.approx_bytes();
                    let old = &rows[*slot];
                    if *old != new_row {
                        state.digest.replace_row(old, &new_row);
                        rows[*slot] = new_row;
                    }
                }
                for agg_row in &applied.appended {
                    let new_row = apply_projection(&da.post, agg_row)?;
                    changed_bytes += new_row.approx_bytes();
                    state.digest.add_row(&new_row);
                    rows.push(new_row);
                }
                let checksum = state.digest.finish();
                let row_count = rows.len() as u64;
                // Aggregate views are group-sized: an O(groups) size rescan
                // is cheap and exact (updated groups change their width).
                let size = ByteSize::from_bytes(rows.iter().map(Row::approx_bytes).sum());
                let changed = ByteSize::from_bytes(changed_bytes);
                let mut cost = self.hv.cost_model.stage_cost(scan_bytes, changed, delta_in);
                if in_dw {
                    let move_cost =
                        self.transfer_model().transfer_cost(changed) + self.dw.load_cost(changed);
                    cost += self.stretch_for_maintenance(move_cost, clock);
                    self.dw
                        .load_view_with_checksum(name, schema, rows_arc, size, checksum);
                } else {
                    self.hv
                        .install_view_with_checksum(name, schema, rows_arc, size, checksum);
                }
                self.catalog.set_checksum(name, checksum);
                self.catalog.update_stats(name, size, row_count);
                clock.advance(cost);
                Ok(ApplyResult::Applied(cost))
            }
        }
    }

    /// Recomputes a maintainable view in full — in HV, over the grown
    /// corpus — and captures fresh maintenance state from the same run:
    /// the content digest, the materialized join build sides, and the
    /// aggregate fold state (replayed serially from the aggregate's input).
    fn rebuild_with_state(
        &mut self,
        def: &miso_views::ViewDef,
        mplan: &MaintPlan,
        clock: &mut SimClock,
    ) -> Result<SimDuration> {
        let name = &def.name;
        let in_dw = self.dw.has_view(name);
        let udfs = self.udf_registry().clone();
        let run = self.hv.execute(&def.plan, None, &udfs)?;
        let root = def.plan.root();
        let out = run
            .materialized
            .iter()
            .find(|m| m.node == root)
            .ok_or_else(|| MisoError::Execution("refresh produced no output".into()))?;
        let mut builds = HashMap::new();
        for b in mplan.builds() {
            builds.insert(b.name.clone(), run.execution.output(b.node).clone());
        }
        let agg = match mplan {
            MaintPlan::Aggregate(da) => {
                let input = def.plan.node(da.agg).inputs[0];
                AggState::build(run.execution.output(input), &da.group_by, &da.aggs)?
            }
            MaintPlan::Append(_) => None,
        };
        let digest = RowSetDigest::from_rows(&out.rows);
        let checksum = digest.finish();
        let mut cost = run.cost;
        if in_dw {
            self.dw.evict_view(name);
            let move_cost = self.hv.dump_cost(out.size)
                + self.transfer_model().transfer_cost(out.size)
                + self.dw.load_cost(out.size);
            cost += self.stretch_for_maintenance(move_cost, clock);
            self.dw.load_view_with_checksum(
                name,
                out.schema.clone(),
                out.rows.clone(),
                out.size,
                checksum,
            );
        } else {
            self.hv.install_view_with_checksum(
                name,
                out.schema.clone(),
                out.rows.clone(),
                out.size,
                checksum,
            );
        }
        self.catalog.set_checksum(name, checksum);
        self.catalog
            .update_stats(name, out.size, out.rows.len() as u64);
        clock.advance(cost);
        self.ivm_state.insert(
            name.clone(),
            IvmViewState {
                digest,
                builds,
                agg,
            },
        );
        Ok(cost)
    }

    /// The pre-IVM refresh path: distributive plans union a delta-only
    /// execution, everything else recomputes in full. Kept verbatim as the
    /// `ivm = false` behavior and as the fallback target for reasons that
    /// leave no usable state (quarantine, non-maintainable shapes).
    fn refresh_view(
        &mut self,
        def: &miso_views::ViewDef,
        log_name: &str,
        delta: &[String],
        clock: &mut SimClock,
    ) -> Result<RefreshOutcome> {
        let in_dw = self.dw.has_view(&def.name);
        let udfs = self.udf_registry().clone();
        if is_distributive(&def.plan) {
            // Run the defining plan over the delta only and union the rows.
            let empty = HashMap::new();
            let src = DeltaSource {
                hv: &self.hv,
                log: log_name,
                delta,
                builds: &empty,
            };
            let exec = execute(&def.plan, &src, &udfs)?;
            let new_rows = exec.root_rows()?.to_vec();
            let delta_bytes = ByteSize::from_bytes(new_rows.iter().map(Row::approx_bytes).sum());
            let scan_bytes = ByteSize::from_bytes(delta.iter().map(|l| l.len() as u64 + 1).sum());
            let mut cost =
                self.hv
                    .cost_model
                    .stage_cost(scan_bytes, delta_bytes, new_rows.len() as u64);
            // Union into the resident copy.
            if in_dw {
                let (schema, rows, _) = self.dw.evict_view(&def.name).ok_or_else(|| {
                    MisoError::integrity(&def.name, "DW copy vanished during refresh")
                })?;
                let mut all = rows.as_ref().clone();
                all.extend(new_rows);
                let move_cost = self.transfer_model().transfer_cost(delta_bytes)
                    + self.dw.load_cost(delta_bytes);
                cost += self.stretch_for_maintenance(move_cost, clock);
                self.dw
                    .load_view(&def.name, schema, Arc::new(all), TableSpace::Permanent);
            } else if let Some(rows) = self.hv.view_rows(&def.name) {
                let mut all = rows.as_ref().clone();
                all.extend(new_rows);
                self.hv
                    .install_view(&def.name, def.schema.clone(), Arc::new(all));
            } else {
                return Err(MisoError::integrity(
                    &def.name,
                    "view resident nowhere at refresh time",
                ));
            }
            self.bump_view_stats(&def.name)?;
            clock.advance(cost);
            Ok(RefreshOutcome::Delta(cost))
        } else {
            // Full recomputation in HV (the defining plan's scans must be
            // resolvable there).
            let run = self.hv.execute(&def.plan, None, &udfs)?;
            let root = def.plan.root();
            let out = run
                .materialized
                .iter()
                .find(|m| m.node == root)
                .ok_or_else(|| MisoError::Execution("refresh produced no output".into()))?;
            let mut cost = run.cost;
            if in_dw {
                self.dw.evict_view(&def.name);
                let move_cost = self.hv.dump_cost(out.size)
                    + self.transfer_model().transfer_cost(out.size)
                    + self.dw.load_cost(out.size);
                cost += self.stretch_for_maintenance(move_cost, clock);
                self.dw.load_view(
                    &def.name,
                    out.schema.clone(),
                    out.rows.clone(),
                    TableSpace::Permanent,
                );
            } else {
                self.hv
                    .install_view(&def.name, out.schema.clone(), out.rows.clone());
            }
            self.bump_view_stats(&def.name)?;
            clock.advance(cost);
            Ok(RefreshOutcome::Full(cost))
        }
    }

    /// Updates catalog size/rowcount metadata — and the authoritative
    /// content checksum — after a refresh: the refreshed rows are the new
    /// materialization-time truth (without the re-stamp, the scrubber and
    /// read-time verification would falsely quarantine every refreshed
    /// view).
    fn bump_view_stats(&mut self, name: &str) -> Result<()> {
        let rows = self
            .hv
            .view_rows(name)
            .or_else(|| self.dw.view_rows_arc(name))
            .ok_or_else(|| MisoError::integrity(name, "refreshed view resident nowhere"))?;
        let size = self
            .hv
            .view_size(name)
            .or_else(|| self.dw.view_size(name))
            .unwrap_or(ByteSize::ZERO);
        self.catalog.update_stats(name, size, rows.len() as u64);
        self.catalog
            .set_checksum(name, miso_data::checksum_rows(&rows));
        Ok(())
    }

    fn stretch_for_maintenance(&mut self, raw: SimDuration, clock: &SimClock) -> SimDuration {
        self.stretch_public(raw, DwActivity::ViewTransfer, clock)
    }

    /// Estimated per-window upkeep cost (simulated seconds) of each catalog
    /// view under the configured growth schedule, for the tuner's
    /// maintenance-aware benefit charging: delta-maintainable views cost a
    /// delta-scale map stage, everything else a full recompute over the
    /// grown base log. Empty when no growth is configured, which keeps the
    /// tuner's arithmetic untouched.
    pub(crate) fn maintenance_costs(&self) -> HashMap<String, f64> {
        let mut costs = HashMap::new();
        let Some(growth) = &self.config.growth else {
            return costs;
        };
        let log_name = growth.kind.table_name();
        let Ok(lines) = self.hv.log_lines(log_name) else {
            return costs;
        };
        let rows = lines.len() as u64;
        if rows == 0 {
            return costs;
        }
        let log_bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
        let delta_rows = growth.records_per_epoch as u64;
        let delta_bytes = ByteSize::from_bytes((log_bytes / rows).max(1) * delta_rows);
        for def in self.catalog.defs() {
            if !def.plan.base_logs().iter().any(|l| l == log_name) {
                continue;
            }
            let cost = if self.config.ivm && miso_views::is_maintainable(&def.plan, log_name) {
                // Delta fold: scan |Δ| input bytes, write at most |Δ|-scale
                // output.
                self.hv
                    .cost_model
                    .stage_cost(delta_bytes, delta_bytes, delta_rows)
            } else {
                // Full recompute over the grown base log.
                self.hv
                    .cost_model
                    .stage_cost(ByteSize::from_bytes(log_bytes), def.size, def.rows)
            };
            costs.insert(def.name.clone(), cost.as_secs_f64());
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use crate::variants::Variant;
    use miso_common::Budgets;
    use miso_data::logs::{generate_delta, Corpus, LogsConfig};
    use miso_lang::compile;
    use miso_workload::{standard_udfs, workload_catalog};

    fn system() -> (MultistoreSystem, LogsConfig) {
        let cfg = LogsConfig::tiny();
        let corpus = Corpus::generate(&cfg);
        let budgets = Budgets::new(
            ByteSize::from_mib(64),
            ByteSize::from_mib(8),
            ByteSize::from_mib(4),
        )
        .with_discretization(ByteSize::from_kib(16));
        (
            MultistoreSystem::new(
                &corpus,
                workload_catalog(),
                standard_udfs(),
                SystemConfig::paper_default(budgets),
            ),
            cfg,
        )
    }

    fn count_query() -> (String, LogicalPlan) {
        let catalog = workload_catalog();
        (
            "ids".to_string(),
            compile(
                "SELECT t.tweet_id AS id FROM twitter t WHERE t.tweet_id >= 0",
                &catalog,
            )
            .unwrap(),
        )
    }

    #[test]
    fn appended_rows_are_visible_to_queries() {
        let (mut sys, cfg) = system();
        let q = count_query();
        let before = sys
            .run_workload(Variant::HvOnly, &[q.clone()])
            .unwrap()
            .records[0]
            .result_rows;

        let delta = generate_delta(&cfg, LogKind::Twitter, 0, 100);
        let mut clock = SimClock::new();
        sys.append_log(
            LogKind::Twitter,
            delta,
            MaintenancePolicy::Invalidate,
            &mut clock,
        )
        .unwrap();
        let after = sys.run_workload(Variant::HvOnly, &[q]).unwrap().records[0].result_rows;
        assert_eq!(after, before + 100, "{after} vs {before}");
    }

    #[test]
    fn invalidate_drops_only_affected_views() {
        let (mut sys, cfg) = system();
        // Create views over twitter and foursquare via MS-MISO runs.
        let catalog = workload_catalog();
        let queries = vec![
            (
                "tw".to_string(),
                compile(
                    "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                     WHERE t.followers > 10 GROUP BY t.city",
                    &catalog,
                )
                .unwrap(),
            ),
            (
                "fs".to_string(),
                compile(
                    "SELECT f.city AS c, COUNT(*) AS n FROM foursquare f \
                     WHERE f.likes > 0 GROUP BY f.city",
                    &catalog,
                )
                .unwrap(),
            ),
        ];
        sys.run_workload(Variant::MsMiso, &queries).unwrap();
        let twitter_views: Vec<String> = sys
            .catalog
            .defs()
            .iter()
            .filter(|d| d.plan.base_logs().contains(&"twitter".to_string()))
            .map(|d| d.name.clone())
            .collect();
        let foursquare_views: Vec<String> = sys
            .catalog
            .defs()
            .iter()
            .filter(|d| d.plan.base_logs().contains(&"foursquare".to_string()))
            .map(|d| d.name.clone())
            .collect();
        assert!(!twitter_views.is_empty() && !foursquare_views.is_empty());

        let delta = generate_delta(&cfg, LogKind::Twitter, 0, 50);
        let mut clock = SimClock::new();
        let report = sys
            .append_log(
                LogKind::Twitter,
                delta,
                MaintenancePolicy::Invalidate,
                &mut clock,
            )
            .unwrap();
        assert_eq!(report.invalidated.len(), twitter_views.len());
        assert_eq!(report.decisions.len(), twitter_views.len());
        assert!(report
            .decisions
            .iter()
            .all(|d| d.action == MaintAction::Invalidated));
        for v in &twitter_views {
            assert!(!sys.catalog.contains(v), "{v} should be gone");
        }
        for v in &foursquare_views {
            assert!(sys.catalog.contains(v), "{v} should survive");
        }
    }

    #[test]
    fn refresh_keeps_views_current_and_correct() {
        let (mut sys, cfg) = system();
        let catalog = workload_catalog();
        // A query whose filter view is distributive.
        let q = (
            "filtered".to_string(),
            compile(
                "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                 WHERE t.followers > 10 GROUP BY t.city",
                &catalog,
            )
            .unwrap(),
        );
        sys.run_workload(Variant::MsMiso, std::slice::from_ref(&q))
            .unwrap();
        assert!(!sys.catalog.is_empty());

        let delta = generate_delta(&cfg, LogKind::Twitter, 1, 200);
        let mut clock = SimClock::new();
        let report = sys
            .append_log(
                LogKind::Twitter,
                delta,
                MaintenancePolicy::Refresh,
                &mut clock,
            )
            .unwrap();
        assert!(
            !report.delta_refreshed.is_empty() || !report.recomputed.is_empty(),
            "{report:?}"
        );
        assert!(report.cost > SimDuration::ZERO);
        // Every full rebuild carries a reason.
        assert!(report
            .decisions
            .iter()
            .filter(|d| d.action == MaintAction::Full)
            .all(|d| d.reason.is_some()));

        // Post-refresh, a rerun reusing views must agree with a from-scratch
        // system over the same (grown) corpus.
        let reuse = sys
            .run_workload(Variant::MsMiso, std::slice::from_ref(&q))
            .unwrap();
        let mut fresh_corpus = Corpus::generate(&cfg);
        let delta_again = generate_delta(&cfg, LogKind::Twitter, 1, 200);
        fresh_corpus.twitter.lines.extend(delta_again);
        let budgets = Budgets::new(
            ByteSize::from_mib(64),
            ByteSize::from_mib(8),
            ByteSize::from_mib(4),
        )
        .with_discretization(ByteSize::from_kib(16));
        let mut fresh = MultistoreSystem::new(
            &fresh_corpus,
            workload_catalog(),
            standard_udfs(),
            SystemConfig::paper_default(budgets),
        );
        let scratch = fresh.run_workload(Variant::HvOnly, &[q]).unwrap();
        assert_eq!(
            reuse.records[0].result_rows, scratch.records[0].result_rows,
            "refreshed views must yield the same answer as recomputation"
        );
    }

    #[test]
    fn second_refresh_takes_the_delta_path() {
        let (mut sys, cfg) = system();
        assert!(sys.config().ivm, "IVM defaults on");
        let catalog = workload_catalog();
        let q = (
            "filtered".to_string(),
            compile(
                "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                 WHERE t.followers > 10 GROUP BY t.city",
                &catalog,
            )
            .unwrap(),
        );
        sys.run_workload(Variant::MsMiso, std::slice::from_ref(&q))
            .unwrap();
        let mut clock = SimClock::new();
        // First append: aggregate fold state is cold and rebuilds (with a
        // reason); per-record views may already fold — their digest is
        // re-seeded from the resident rows without executing the plan.
        let first = sys
            .append_log(
                LogKind::Twitter,
                generate_delta(&cfg, LogKind::Twitter, 1, 100),
                MaintenancePolicy::Refresh,
                &mut clock,
            )
            .unwrap();
        assert!(first
            .decisions
            .iter()
            .any(|d| d.reason == Some(FullReason::StateCold)));
        // Second append: warm state, maintainable views fold the delta.
        let second = sys
            .append_log(
                LogKind::Twitter,
                generate_delta(&cfg, LogKind::Twitter, 2, 100),
                MaintenancePolicy::Refresh,
                &mut clock,
            )
            .unwrap();
        assert!(
            !second.delta_refreshed.is_empty(),
            "warm maintainable views must take the delta path: {second:?}"
        );
        // And the delta-applied result matches a from-scratch recompute.
        let reuse = sys
            .run_workload(Variant::MsMiso, std::slice::from_ref(&q))
            .unwrap();
        let mut fresh_corpus = Corpus::generate(&cfg);
        fresh_corpus
            .twitter
            .lines
            .extend(generate_delta(&cfg, LogKind::Twitter, 1, 100));
        fresh_corpus
            .twitter
            .lines
            .extend(generate_delta(&cfg, LogKind::Twitter, 2, 100));
        let budgets = Budgets::new(
            ByteSize::from_mib(64),
            ByteSize::from_mib(8),
            ByteSize::from_mib(4),
        )
        .with_discretization(ByteSize::from_kib(16));
        let mut fresh = MultistoreSystem::new(
            &fresh_corpus,
            workload_catalog(),
            standard_udfs(),
            SystemConfig::paper_default(budgets),
        );
        let scratch = fresh
            .run_workload(Variant::HvOnly, std::slice::from_ref(&q))
            .unwrap();
        assert_eq!(reuse.records[0].result_rows, scratch.records[0].result_rows);
    }

    #[test]
    fn oversized_delta_falls_back_with_reason() {
        let (mut sys, cfg) = system();
        sys.config.ivm_max_delta_frac = 0.0; // force the fallback
        let catalog = workload_catalog();
        let q = (
            "filtered".to_string(),
            compile(
                "SELECT t.city AS c FROM twitter t WHERE t.followers > 10",
                &catalog,
            )
            .unwrap(),
        );
        sys.run_workload(Variant::HvOp, std::slice::from_ref(&q))
            .unwrap();
        let mut clock = SimClock::new();
        // Warm the state despite frac 0.0? No: frac 0.0 rejects before the
        // state check, so every append reports DeltaTooLarge.
        let report = sys
            .append_log(
                LogKind::Twitter,
                generate_delta(&cfg, LogKind::Twitter, 3, 10),
                MaintenancePolicy::Refresh,
                &mut clock,
            )
            .unwrap();
        assert!(report
            .decisions
            .iter()
            .any(|d| matches!(d.reason, Some(FullReason::DeltaTooLarge { .. }))));
    }

    #[test]
    fn grow_routes_by_table_name() {
        let (mut sys, cfg) = system();
        let mut clock = SimClock::new();
        let delta = Delta::generated(&cfg, LogKind::Twitter, 7, 25);
        let before = sys.hv.log_lines("twitter").unwrap().len();
        let report = sys
            .grow(&delta, MaintenancePolicy::Refresh, &mut clock)
            .unwrap();
        assert_eq!(report.appended, delta.size());
        assert_eq!(sys.hv.log_lines("twitter").unwrap().len(), before + 25);
        let bogus = Delta::new("instagram", vec!["{}".into()]);
        assert!(sys
            .grow(&bogus, MaintenancePolicy::Refresh, &mut clock)
            .is_err());
    }

    #[test]
    fn distributivity_classification() {
        let catalog = workload_catalog();
        let spj = compile(
            "SELECT t.city AS c FROM twitter t WHERE t.followers > 5",
            &catalog,
        )
        .unwrap();
        assert!(is_distributive(&spj));
        let agg = compile(
            "SELECT t.city AS c, COUNT(*) AS n FROM twitter t GROUP BY t.city",
            &catalog,
        )
        .unwrap();
        assert!(!is_distributive(&agg));
        let join = compile(
            "SELECT t.user_id AS u FROM twitter t \
             JOIN foursquare f ON t.user_id = f.user_id WHERE t.followers > 1",
            &catalog,
        )
        .unwrap();
        assert!(!is_distributive(&join));
    }

    #[test]
    fn append_to_unknown_log_errors() {
        let (mut sys, _) = system();
        let mut clock = SimClock::new();
        // Landmarks exists; craft a bogus call via direct store access.
        let err = sys
            .hv
            .append_log("instagram", vec!["{}".into()])
            .unwrap_err();
        assert!(err.to_string().contains("instagram"));
        // And a legitimate empty append is a no-op.
        let report = sys
            .append_log(
                LogKind::Landmarks,
                vec![],
                MaintenancePolicy::Refresh,
                &mut clock,
            )
            .unwrap();
        assert!(report.appended.is_zero());
    }
}
