//! Between-epoch integrity auditing: invariants plus checksum scrubbing.
//!
//! The auditor runs after each reorganization phase (when enabled via
//! [`crate::SystemConfig::audit`]) and does two things:
//!
//! 1. **Invariant audit** — cheap catalog↔store consistency checks: every
//!    non-quarantined catalog view is resident in at least one store,
//!    quarantined views are resident in none, every permanent store view
//!    is registered in the catalog, both storage budgets hold, no DW temp
//!    tables leak across epochs, and the last reorganization journal
//!    drained (done, or never committed — i.e. rolled back).
//! 2. **Checksum scrub** — a budget-bounded background sweep that
//!    recomputes stored content checksums against each view's
//!    materialization-time checksum, rotating a cursor through the
//!    catalog so successive epochs eventually cover everything. Mismatches
//!    are quarantined exactly like read-time failures and repaired by the
//!    next tuner phase.
//!
//! Invariant breaches are *bugs* (or operator interference), so
//! [`AuditMode::Strict`] turns them into an error — tests unwrap and
//! panic. Production-shaped runs use [`AuditMode::Count`], which ticks
//! `audit.violations` and keeps serving queries. Checksum mismatches are
//! *expected* faults with a recovery path; they never trip strict mode.

use crate::reorg::stage_name;
use crate::system::MultistoreSystem;
use miso_common::{ByteSize, MisoError, Result, SimDuration};

/// What to do when an invariant is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Return an error (tests unwrap → panic): invariants are bugs.
    Strict,
    /// Count `audit.violations` and keep going: production keeps serving.
    Count,
}

/// Configuration for the between-epoch auditor.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Maximum bytes of view content re-checksummed per audit pass. The
    /// scrub cursor rotates, so a small budget still covers the whole
    /// catalog over enough epochs. Zero disables scrubbing (invariants
    /// only).
    pub scrub_budget: ByteSize,
    /// Invariant violation handling.
    pub mode: AuditMode,
}

impl AuditConfig {
    /// Strict invariants (error out) with the given scrub budget.
    pub fn strict(scrub_budget: ByteSize) -> Self {
        AuditConfig {
            scrub_budget,
            mode: AuditMode::Strict,
        }
    }

    /// Counting invariants (tick `audit.violations`) with the given budget.
    pub fn counting(scrub_budget: ByteSize) -> Self {
        AuditConfig {
            scrub_budget,
            mode: AuditMode::Count,
        }
    }
}

/// What one audit pass found and cost.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Human-readable invariant violations (empty on a healthy system).
    pub violations: Vec<String>,
    /// Views whose checksums were re-verified this pass.
    pub scrubbed_views: u64,
    /// Bytes of view content re-checksummed this pass.
    pub scrubbed_bytes: ByteSize,
    /// Views quarantined by this pass's scrub.
    pub quarantined: Vec<String>,
    /// Simulated time the scrub cost (charged like tuner work).
    pub cost: SimDuration,
}

impl MultistoreSystem {
    /// Runs one audit pass: invariant checks, then a budget-bounded
    /// checksum scrub resuming from where the previous pass stopped.
    ///
    /// In [`AuditMode::Strict`] any invariant violation comes back as
    /// [`MisoError::Integrity`]; in [`AuditMode::Count`] violations are
    /// counted and returned in the report.
    pub fn audit_pass(&mut self, cfg: &AuditConfig) -> Result<AuditReport> {
        miso_obs::count("audit.passes", 1);
        let mut report = AuditReport::default();
        self.check_invariants(&mut report.violations);
        self.scrub(cfg.scrub_budget, &mut report);
        if !report.violations.is_empty() {
            miso_obs::count("audit.violations", report.violations.len() as u64);
            if cfg.mode == AuditMode::Strict {
                return Err(MisoError::integrity(
                    "<audit>",
                    report.violations.join("; "),
                ));
            }
        }
        Ok(report)
    }

    /// Catalog↔store consistency invariants. Cheap: name/size lookups
    /// only, no row content is touched.
    fn check_invariants(&self, violations: &mut Vec<String>) {
        for name in self.catalog.names() {
            let resident = self.hv.has_view(&name) || self.dw.has_view(&name);
            if self.catalog.is_quarantined(&name) {
                if resident {
                    violations.push(format!(
                        "quarantined view `{name}` is still resident in a store"
                    ));
                }
            } else if !resident {
                violations.push(format!("catalog view `{name}` is resident in no store"));
            }
        }
        for name in self.hv.view_names() {
            if !self.catalog.contains(&name) {
                violations.push(format!("HV holds unregistered view `{name}`"));
            }
        }
        for name in self.dw.view_names() {
            if !self.catalog.contains(&name) {
                violations.push(format!("DW holds unregistered view `{name}`"));
            }
        }
        let budgets = self.config.budgets;
        if self.hv.total_view_bytes() > budgets.hv_storage {
            violations.push(format!(
                "HV views exceed B_h: {} > {}",
                self.hv.total_view_bytes(),
                budgets.hv_storage
            ));
        }
        if self.dw.total_view_bytes() > budgets.dw_storage {
            violations.push(format!(
                "DW views exceed B_d: {} > {}",
                self.dw.total_view_bytes(),
                budgets.dw_storage
            ));
        }
        for name in self.dw.temp_names() {
            violations.push(format!(
                "DW temp table `{name}` leaked across an epoch boundary"
            ));
        }
        if let Some(journal) = &self.last_reorg_journal {
            // Drained = the reorg ran to Done, or never committed (it was
            // rolled back and the old design stands).
            if !journal.done() && journal.committed() {
                violations.push("last reorg journal committed but never drained".into());
            }
            for view in journal.staged_views(true) {
                if !journal.done() && self.dw.has_temp(&stage_name(view)) {
                    violations.push(format!(
                        "reorg staging copy `{}` left behind",
                        stage_name(view)
                    ));
                }
            }
        }
    }

    /// Budget-bounded checksum scrub over the catalog, resuming from the
    /// rotating cursor. Corrupt copies are quarantined exactly like
    /// read-time verification failures; the cost of re-reading the
    /// scrubbed bytes is modeled with HV's dump cost (the scrubber's I/O
    /// is sequential re-reads).
    fn scrub(&mut self, budget: ByteSize, report: &mut AuditReport) {
        if budget == ByteSize::ZERO {
            return;
        }
        let names = self.catalog.names();
        if names.is_empty() {
            return;
        }
        let mut inspected = 0usize;
        while inspected < names.len() && report.scrubbed_bytes < budget {
            let name = &names[self.scrub_cursor % names.len()];
            self.scrub_cursor = (self.scrub_cursor + 1) % names.len();
            inspected += 1;
            if self.catalog.is_quarantined(name) {
                continue;
            }
            let Some(expected) = self.catalog.get(name).and_then(|d| d.checksum) else {
                continue;
            };
            let size = self
                .hv
                .view_size(name)
                .or_else(|| self.dw.view_size(name))
                .unwrap_or(ByteSize::ZERO);
            report.scrubbed_views += 1;
            report.scrubbed_bytes += size;
            miso_obs::count("audit.views_scrubbed", 1);
            let bad = self.hv.verify_view(name, expected) == Some(false)
                || self.dw.verify_view(name, expected) == Some(false);
            if bad {
                self.quarantine_view(name);
                report.quarantined.push(name.clone());
            }
        }
        report.cost = self.hv.dump_cost(report.scrubbed_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SystemConfig, Variant};
    use miso_common::Budgets;
    use miso_data::logs::{Corpus, LogsConfig};
    use miso_exec::UdfRegistry;

    fn audited_system(mode: AuditMode) -> MultistoreSystem {
        let corpus = Corpus::generate(&LogsConfig::tiny());
        let kib = ByteSize::from_kib(100_000);
        let budgets = Budgets::new(kib, kib, kib).with_discretization(ByteSize::from_kib(16));
        let mut config = SystemConfig::paper_default(budgets);
        config.audit = Some(AuditConfig {
            scrub_budget: ByteSize::from_kib(1_000_000),
            mode,
        });
        MultistoreSystem::new(
            &corpus,
            miso_lang::Catalog::standard(),
            UdfRegistry::new(),
            config,
        )
    }

    fn queries() -> Vec<(String, miso_plan::LogicalPlan)> {
        let c = miso_lang::Catalog::standard();
        [
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city",
            "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS s FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city",
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city ORDER BY n DESC LIMIT 5",
            "SELECT f.city AS city, COUNT(*) AS n FROM foursquare f \
             WHERE f.likes > 2 GROUP BY f.city",
        ]
        .iter()
        .enumerate()
        .map(|(i, sql)| (format!("q{i}"), miso_lang::compile(sql, &c).unwrap()))
        .collect()
    }

    #[test]
    fn clean_run_passes_strict_audit() {
        let mut sys = audited_system(AuditMode::Strict);
        // Strict audit runs inside the stream after each reorg; a clean
        // run must not trip it.
        sys.run_workload(Variant::MsMiso, &queries()).unwrap();
        let report = sys
            .audit_pass(&AuditConfig::strict(ByteSize::from_kib(1_000_000)))
            .unwrap();
        assert!(report.violations.is_empty());
        assert!(report.scrubbed_views > 0, "scrub must cover the catalog");
        assert!(report.quarantined.is_empty());
        assert!(report.cost > SimDuration::ZERO);
    }

    #[test]
    fn scrub_detects_corruption_and_quarantines() {
        let mut sys = audited_system(AuditMode::Strict);
        sys.run_workload(Variant::HvOp, &queries()).unwrap();
        let victim = sys.hv.view_names().pop().expect("HV-OP retains views");
        assert!(sys.hv.corrupt_view(&victim));
        let report = sys
            .audit_pass(&AuditConfig::strict(ByteSize::from_kib(1_000_000)))
            .unwrap();
        assert_eq!(report.quarantined, vec![victim.clone()]);
        assert!(sys.catalog.is_quarantined(&victim));
        assert!(!sys.hv.has_view(&victim), "corrupt copy must be dropped");
        // A second pass sees a consistent (quarantined) state.
        let again = sys
            .audit_pass(&AuditConfig::strict(ByteSize::from_kib(1_000_000)))
            .unwrap();
        assert!(again.violations.is_empty());
        assert!(again.quarantined.is_empty());
    }

    #[test]
    fn dangling_catalog_entry_trips_strict_and_counts_in_prod() {
        let mut sys = audited_system(AuditMode::Strict);
        sys.run_workload(Variant::HvOp, &queries()).unwrap();
        let victim = sys.hv.view_names().pop().expect("HV-OP retains views");
        // Simulate an operator dropping the store copy behind the
        // catalog's back (not a modeled fault — an invariant breach).
        sys.hv.remove_view(&victim);
        let err = sys
            .audit_pass(&AuditConfig::strict(ByteSize::ZERO))
            .unwrap_err();
        assert_eq!(err.layer(), "integrity");
        assert!(err.message().contains(&victim));
        let report = sys
            .audit_pass(&AuditConfig::counting(ByteSize::ZERO))
            .unwrap();
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn scrub_budget_bounds_work_and_cursor_rotates() {
        let mut sys = audited_system(AuditMode::Strict);
        sys.run_workload(Variant::HvOp, &queries()).unwrap();
        let total = sys.catalog.len() as u64;
        assert!(total > 1, "need several views to rotate over");
        // A tiny budget scrubs at least one view per pass but not all.
        let cfg = AuditConfig::strict(ByteSize::from_bytes(1));
        let first = sys.audit_pass(&cfg).unwrap();
        assert!(first.scrubbed_views >= 1);
        assert!(first.scrubbed_views < total);
        // Enough passes cover every view despite the tiny budget.
        let mut covered = first.scrubbed_views;
        for _ in 0..total {
            covered += sys.audit_pass(&cfg).unwrap().scrubbed_views;
        }
        assert!(covered >= total, "rotation must reach the whole catalog");
    }
}
