//! The multistore system: execution layer + query-stream driver.
//!
//! This is the runtime of Figure 2: queries arrive one at a time; the
//! multistore optimizer plans each against the current physical design; the
//! execution layer runs the HV side, dumps/transfers/loads cut working sets
//! into DW temp space, and resumes in DW; by-products become opportunistic
//! views; and (for tuned variants) the MISO tuner periodically reorganizes
//! the placement of views across the stores.
//!
//! All eight §5 variants run through [`MultistoreSystem::run_workload`];
//! the [`crate::variants::Variant`] flags select the retention, splitting,
//! and tuning policies.

use crate::audit::AuditConfig;
use crate::calibration::{op_class, CalibrationAccumulator, CalibrationReport};
use crate::etl::{rewrite_for_dw, run_etl, DEFAULT_ETL_OVERHEAD};
use crate::metrics::{ExperimentResult, QueryFailure, QueryRecord, ReorgRecord, TtiBreakdown};
use crate::reorg::{stage_name, JournalEntry, ReorgJournal, ReorgPlan, MAX_REORG_RECOVERIES};
use crate::tuner::{MisoTuner, NewDesign, TunerConfig};
use crate::variants::Variant;
use miso_common::guard::QueryGuard;
use miso_common::ids::QueryId;
use miso_common::{
    Budgets, ByteSize, CircuitBreaker, DetRng, MisoError, Result, RetryPolicy, SimClock,
    SimDuration,
};
use miso_data::checksum::checksum_rows;
use miso_data::logs::Corpus;
use miso_data::Row;
use miso_dw::{BackgroundSim, DwActivity, DwStore, TableSpace};
use miso_exec::UdfRegistry;
use miso_hv::HvStore;
use miso_optimizer::cost::{CostBreakdown, TransferModel};
use miso_optimizer::optimize::{optimize, Design, OptimizerEnv, PlannedQuery};
use miso_plan::estimate::{estimate_plan, MapStats};
use miso_plan::fingerprint::fingerprint_all;
use miso_plan::LogicalPlan;
use miso_views::{ViewCatalog, ViewDef};
use miso_xray::QueryXray;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// System-level configuration shared by all variants.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// View storage/transfer budgets.
    pub budgets: Budgets,
    /// Queries per reorganization phase (paper: every 3 of 32).
    pub reorg_every: usize,
    /// Tuner history window (paper: 6).
    pub history_len: usize,
    /// Benefit-decay epoch length (paper: 3).
    pub epoch_len: usize,
    /// Per-epoch decay factor.
    pub decay: f64,
    /// doi significance threshold.
    pub doi_threshold: f64,
    /// Fixed simulated time to compute a new design during a reorg phase.
    pub tune_compute: SimDuration,
    /// ETL Extract-Transform overhead multiplier (DW-ONLY).
    pub etl_overhead: f64,
    /// Optional DW background reporting workload (§5.4).
    pub background: Option<BackgroundSim>,
    /// Retry policy wrapped around store calls and transfers.
    pub retry: RetryPolicy,
    /// Consecutive DW failures before the circuit breaker opens.
    pub breaker_threshold: u32,
    /// Cooldown before an open DW breaker lets a probe through.
    pub breaker_cooldown: SimDuration,
    /// Optional between-epoch integrity audit (checksum scrubbing +
    /// catalog↔store invariants). `None` (the default) skips the auditor
    /// entirely, keeping fault-free runs byte-identical.
    pub audit: Option<AuditConfig>,
    /// Feed each epoch's fitted predicted-vs-actual scale factors back into
    /// the store cost models (see [`crate::calibration`]). Default **off**:
    /// drift is then only *observed* (gauges + reports) and the models —
    /// and therefore every plan and tuner design — are untouched.
    pub calibrate_costs: bool,
    /// Query-lifecycle guard settings (miso-guard): admission control,
    /// per-query deadlines, memory budgets, and overload shedding.
    /// Disabled by default, keeping guard-free runs byte-identical.
    pub guard: GuardConfig,
    /// Columnar batch execution (miso-col) for the engine's hot relational
    /// core. Default **on**; output is bit-identical either way, so this is
    /// purely a performance knob. The `MISO_COL` environment variable, when
    /// set, overrides this at system construction.
    pub columnar: bool,
    /// Incremental view maintenance (miso-ivm) for the Refresh policy.
    /// Default **on**: maintainable views fold appended deltas into live
    /// state in O(|delta|) instead of recomputing; results and checksums
    /// are bit-identical to full recomputation either way, so this too is
    /// a performance knob. The `MISO_IVM` environment variable, when set,
    /// overrides this at system construction (`0`/`off`/`false` disable).
    pub ivm: bool,
    /// Delta-apply size policy: when a delta carries more than this
    /// fraction of the base log's pre-append rows, maintenance falls back
    /// to a full rebuild (which also resets fold state).
    pub ivm_max_delta_frac: f64,
    /// Optional streaming-growth schedule for the online stream: when set,
    /// every reorganization boundary first ingests a generated append-only
    /// delta batch through [`crate::MaintenancePolicy`]-driven maintenance,
    /// so the corpus grows across epochs. `None` (the default) keeps
    /// growth-free runs byte-identical.
    pub growth: Option<GrowthConfig>,
}

/// Streaming-growth schedule for [`MultistoreSystem::run_stream`].
#[derive(Debug, Clone)]
pub struct GrowthConfig {
    /// Which base log grows.
    pub kind: miso_data::logs::LogKind,
    /// Appended records per growth step (one step per reorg boundary).
    pub records_per_epoch: usize,
    /// How affected views are maintained.
    pub policy: crate::MaintenancePolicy,
    /// Generator parameters for the delta batches (normally the same
    /// config that generated the corpus, so schemas line up).
    pub logs: miso_data::logs::LogsConfig,
}

/// Settings for the miso-guard control plane.
///
/// When active, every query admitted into the online stream carries a
/// [`QueryGuard`] with the configured deadline and memory budget; queries
/// the guard kills are reported as [`crate::metrics::QueryFailure`]s
/// instead of aborting the workload, and a dedicated overload breaker
/// sheds new arrivals while recent guard kills indicate pressure.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Master switch for this system. Guards are active when this is set
    /// *or* the process-global `MISO_GUARD` gate
    /// ([`miso_common::guard::enabled`]) is on.
    pub enabled: bool,
    /// Default per-query deadline, relative to admission time. `None` =
    /// no deadline.
    pub deadline: Option<SimDuration>,
    /// Per-query memory budget charged by the execution engine (join
    /// builds, aggregate accumulators, materialization buffers).
    /// `ByteSize::ZERO` = unlimited.
    pub mem_budget: ByteSize,
    /// Maximum queries admitted concurrently. The stream driver runs one
    /// query at a time, so values ≥ 1 never bind there; `0` sheds
    /// everything (a drain/maintenance mode, and the admission-path test
    /// hook).
    pub max_inflight: usize,
    /// Consecutive guard kills before the overload breaker opens and new
    /// arrivals are shed.
    pub shed_threshold: u32,
    /// How long the overload breaker sheds before letting a probe query
    /// through; also the `retry_after` hint attached to shed failures.
    pub shed_cooldown: SimDuration,
}

impl GuardConfig {
    /// Guards fully off (the paper-faithful default).
    pub fn disabled() -> Self {
        GuardConfig {
            enabled: false,
            deadline: None,
            mem_budget: ByteSize::ZERO,
            max_inflight: usize::MAX,
            shed_threshold: 3,
            shed_cooldown: SimDuration::from_secs(60),
        }
    }

    /// Whether the guard layer should be engaged for this system.
    pub fn active(&self) -> bool {
        self.enabled || miso_common::guard::enabled()
    }
}

impl SystemConfig {
    /// Paper-default settings under the given budgets.
    pub fn paper_default(budgets: Budgets) -> Self {
        SystemConfig {
            budgets,
            reorg_every: 3,
            history_len: 6,
            epoch_len: 3,
            decay: 0.5,
            doi_threshold: 1.0,
            tune_compute: SimDuration::from_secs(5),
            etl_overhead: DEFAULT_ETL_OVERHEAD,
            background: None,
            retry: RetryPolicy::standard(),
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(300),
            audit: None,
            calibrate_costs: false,
            guard: GuardConfig::disabled(),
            columnar: true,
            ivm: true,
            ivm_max_delta_frac: 0.25,
            growth: None,
        }
    }
}

/// One workload query: display label plus its raw (un-rewritten) plan.
pub type WorkloadQuery = (String, LogicalPlan);

/// The multistore system.
pub struct MultistoreSystem {
    /// The Hive-like store (owns the base logs).
    pub hv: HvStore,
    /// The warehouse store.
    pub dw: DwStore,
    /// Tuner-visible view metadata.
    pub catalog: ViewCatalog,
    udfs: UdfRegistry,
    lang_catalog: miso_lang::Catalog,
    pub(crate) config: SystemConfig,
    background: Option<BackgroundSim>,
    transfer: TransferModel,
    /// LRU recency order (oldest first) for LRU-managed variants.
    lru: Vec<String>,
    /// Circuit breaker guarding the DW store (graceful degradation).
    dw_breaker: CircuitBreaker,
    /// Jitter source for retry backoff. Only consulted when a fault
    /// actually fires, so fault-free runs never draw from it.
    retry_rng: DetRng,
    /// The journal of the most recent reorganization (the auditor checks
    /// it drained).
    pub(crate) last_reorg_journal: Option<ReorgJournal>,
    /// Rotating scrub position over the sorted catalog (the auditor
    /// resumes where the previous epoch's scrub budget ran out).
    pub(crate) scrub_cursor: usize,
    /// Predicted-vs-actual drift accumulated since the last epoch boundary.
    calibration: CalibrationAccumulator,
    /// EXPLAIN ANALYZE artifacts collected while exec profiling is on.
    xrays: Vec<QueryXray>,
    /// The guard of the query currently executing (inert between queries
    /// and whenever the guard layer is off). Store calls clone it — an
    /// `Arc` bump — and pass it down into the vex engine.
    active_guard: QueryGuard,
    /// Overload breaker: consecutive guard kills open it, shedding new
    /// arrivals at admission for `GuardConfig::shed_cooldown`.
    guard_breaker: CircuitBreaker,
    /// Queries currently admitted (0 or 1 under the serial stream driver).
    inflight: usize,
    /// High-water mark of guard-charged bytes across all queries so far.
    guard_peak_bytes: u64,
    /// Live incremental-maintenance state per view (digest, join build
    /// sides, aggregate fold state). Populated lazily by Refresh-policy
    /// maintenance; views without entries simply rebuild on first refresh.
    pub(crate) ivm_state: HashMap<String, crate::maintenance::IvmViewState>,
}

impl MultistoreSystem {
    /// Builds a system over a generated corpus.
    pub fn new(
        corpus: &Corpus,
        lang_catalog: miso_lang::Catalog,
        udfs: UdfRegistry,
        config: SystemConfig,
    ) -> Self {
        // Apply the columnar knob process-wide, then let `MISO_COL` win so
        // operators can flip the path without touching configs.
        miso_exec::col::set_enabled(config.columnar);
        miso_exec::col::init_from_env();
        // `MISO_IVM` likewise overrides the config knob when set.
        let mut config = config;
        if let Ok(v) = std::env::var("MISO_IVM") {
            config.ivm = !matches!(v.trim(), "0" | "off" | "false" | "OFF" | "FALSE");
        }
        let mut hv = HvStore::new();
        hv.add_log(corpus.twitter.clone());
        hv.add_log(corpus.foursquare.clone());
        hv.add_log(corpus.landmarks.clone());
        let background = config.background.clone();
        let dw_breaker = CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown);
        let guard_breaker =
            CircuitBreaker::new(config.guard.shed_threshold, config.guard.shed_cooldown);
        MultistoreSystem {
            hv,
            dw: DwStore::new(),
            catalog: ViewCatalog::new(),
            udfs,
            lang_catalog,
            config,
            background,
            transfer: TransferModel::paper_default(),
            lru: Vec::new(),
            dw_breaker,
            retry_rng: DetRng::new(0x5245_5452),
            last_reorg_journal: None,
            scrub_cursor: 0,
            calibration: CalibrationAccumulator::new(),
            xrays: Vec::new(),
            active_guard: QueryGuard::inert(),
            guard_breaker,
            inflight: 0,
            guard_peak_bytes: 0,
            ivm_state: HashMap::new(),
        }
    }

    /// The overload (guard) breaker's current state (for tests and
    /// reports).
    pub fn guard_breaker_state(&self) -> miso_common::BreakerState {
        self.guard_breaker.state()
    }

    /// High-water mark of guard-charged bytes across all queries so far.
    /// Never exceeds the configured per-query budget: over-budget charges
    /// are refused before they are recorded.
    pub fn guard_peak_bytes(&self) -> u64 {
        self.guard_peak_bytes
    }

    /// The DW circuit breaker's current state (for tests and reports).
    pub fn dw_breaker_state(&self) -> miso_common::BreakerState {
        self.dw_breaker.state()
    }

    /// The background simulator's recorded timeline, if §5.4 mode is on.
    pub fn background(&self) -> Option<&BackgroundSim> {
        self.background.as_ref()
    }

    /// The UDF registry this system executes with.
    pub fn udf_registry(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// The inter-store transfer model.
    pub fn transfer_model(&self) -> &TransferModel {
        &self.transfer
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs one reorganization phase right now against the given history
    /// window, exactly as the streaming driver would at an epoch boundary
    /// (M-KNAPSACK tune, journaled two-phase migration, quarantine repair).
    ///
    /// This is the serving layer's entry point: miso-serve stages a reorg on
    /// its master copy while queries keep reading a published snapshot, then
    /// publishes the result atomically.
    pub fn reorg_now(
        &mut self,
        window: &[LogicalPlan],
        clock: &mut SimClock,
    ) -> Result<ReorgRecord> {
        let tuner = MisoTuner::new(TunerConfig {
            budgets: self.config.budgets,
            history_len: self.config.history_len,
            epoch_len: self.config.epoch_len,
            decay: self.config.decay,
            doi_threshold: self.config.doi_threshold,
        });
        self.apply_tuner(&tuner, window, clock)
    }

    /// The live predicted-vs-actual drift accumulator (since the last
    /// epoch boundary).
    pub fn calibration(&self) -> &CalibrationAccumulator {
        &self.calibration
    }

    /// EXPLAIN ANALYZE artifacts collected so far. Empty unless
    /// `miso_exec::profile` was enabled while queries ran.
    pub fn xrays(&self) -> &[QueryXray] {
        &self.xrays
    }

    /// Takes ownership of the collected EXPLAIN ANALYZE artifacts.
    pub fn take_xrays(&mut self) -> Vec<QueryXray> {
        std::mem::take(&mut self.xrays)
    }

    /// Public wrapper over background-contention stretching (used by the
    /// maintenance module, which lives in a sibling file).
    pub(crate) fn stretch_public(
        &mut self,
        raw: SimDuration,
        activity: DwActivity,
        clock: &SimClock,
    ) -> SimDuration {
        self.stretch(raw, activity, clock)
    }

    /// Runs a full workload under `variant`, returning all measurements.
    ///
    /// The system should be freshly constructed per run; repeated calls keep
    /// accumulated views (useful for continuation experiments, but not what
    /// the paper's comparisons do).
    pub fn run_workload(
        &mut self,
        variant: Variant,
        queries: &[WorkloadQuery],
    ) -> Result<ExperimentResult> {
        let mut obs = miso_obs::span("workload.run");
        if obs.is_active() {
            obs.push_field(
                "variant",
                miso_obs::FieldValue::Str(variant.name().to_string()),
            );
            obs.push_field("queries", miso_obs::FieldValue::U64(queries.len() as u64));
        }
        let mut clock = SimClock::new();
        let mut result = ExperimentResult {
            variant: variant.name().to_string(),
            ..Default::default()
        };

        match variant {
            Variant::DwOnly => self.run_dw_only(queries, &mut clock, &mut result)?,
            Variant::MsOff => self.run_ms_off(queries, &mut clock, &mut result)?,
            _ => self.run_stream(variant, queries, &mut clock, &mut result)?,
        }
        obs.set_sim_us(clock.now().elapsed_since_epoch().as_micros());
        Ok(result)
    }

    // ---- DW-ONLY -------------------------------------------------------

    fn run_dw_only(
        &mut self,
        queries: &[WorkloadQuery],
        clock: &mut SimClock,
        result: &mut ExperimentResult,
    ) -> Result<()> {
        let plans: Vec<LogicalPlan> = queries.iter().map(|(_, p)| p.clone()).collect();
        let manifest = {
            let mut obs = miso_obs::span("system.etl");
            let manifest = run_etl(
                &plans,
                &self.lang_catalog,
                &self.hv,
                &mut self.dw,
                &self.udfs,
                self.config.etl_overhead,
            )?;
            if obs.is_active() {
                obs.push_field(
                    "cost_us",
                    miso_obs::FieldValue::U64(manifest.cost.as_micros()),
                );
            }
            manifest
        };
        result.tti.etl += manifest.cost;
        clock.advance(manifest.cost);
        for (i, (label, raw)) in queries.iter().enumerate() {
            let dw_plan = rewrite_for_dw(raw, &self.lang_catalog, &self.dw)?;
            // DW-ONLY has no other store to fall back to: retry is the only
            // defense, and exhausted retries surface as errors.
            let run = self.dw_execute_retry(
                &dw_plan,
                None,
                &HashMap::new(),
                clock,
                &mut result.tti.dw_exe,
            )?;
            let stretched = self.stretch(run.cost, DwActivity::QueryExec, clock);
            result.tti.dw_exe += stretched;
            clock.advance(stretched);
            result.records.push(QueryRecord {
                query: QueryId(i as u64),
                label: label.clone(),
                hv: SimDuration::ZERO,
                dw: stretched,
                transfer: SimDuration::ZERO,
                result_rows: run.execution.root_rows()?.len() as u64,
                used_views: dw_plan.scanned_views(),
                hv_ops: 0,
                dw_ops: dw_plan.len(),
                bytes_transferred: ByteSize::ZERO,
                finished_at: clock.now(),
            });
        }
        Ok(())
    }

    // ---- MS-OFF --------------------------------------------------------

    fn run_ms_off(
        &mut self,
        queries: &[WorkloadQuery],
        clock: &mut SimClock,
        result: &mut ExperimentResult,
    ) -> Result<()> {
        // Pass 1 (uncharged planning pass): dry-run every query HV-only to
        // discover the candidate views the workload would create — this is
        // the "workload known up-front" premise of an offline design tool.
        for (i, (_, raw)) in queries.iter().enumerate() {
            let design = self.current_design();
            let available: HashSet<String> = design.hv_views.clone();
            let rewrite = miso_views::rewrite_with_catalog(raw, &available, &self.catalog);
            let run = self.hv.execute(&rewrite.plan, None, &self.udfs)?;
            self.harvest_views(&rewrite.plan, &run, QueryId(i as u64), usize::MAX);
        }
        // One-shot tune over the whole workload with uniform weights: the
        // chosen sets become the *static retention policy*.
        let tuner_cfg = TunerConfig {
            budgets: Budgets::new(
                self.config.budgets.hv_storage,
                self.config.budgets.dw_storage,
                // The static design is installed incrementally as views
                // appear, so the per-phase transfer budget does not bind.
                self.config.budgets.hv_storage + self.config.budgets.dw_storage,
            )
            .with_discretization(self.config.budgets.discretization),
            history_len: queries.len().max(1),
            epoch_len: queries.len().max(1),
            decay: 1.0,
            doi_threshold: self.config.doi_threshold,
        };
        let tuner = MisoTuner::new(tuner_cfg);
        let plans: Vec<LogicalPlan> = queries.iter().map(|(_, p)| p.clone()).collect();
        let current_hv: BTreeSet<String> = self.hv.view_names().into_iter().collect();
        let current_dw: BTreeSet<String> = self.dw.view_names().into_iter().collect();
        let stats = self.build_stats();
        let offline_design = tuner.tune(
            &current_hv,
            &current_dw,
            &self.catalog,
            &plans,
            &stats,
            &self.hv.cost_model,
            &self.dw.cost_model,
            &self.transfer,
        );

        // Views are opportunistic by-products: none exist before the
        // workload runs. Reset the stores; pass 2 retains exactly the views
        // the static design selected, as they are (re)created, moving
        // DW-designated ones at creation time (charged as TUNE).
        for name in self.hv.view_names() {
            self.hv.remove_view(&name);
        }
        for name in self.dw.view_names() {
            self.dw.evict_view(&name);
        }
        let keep_dw = offline_design.dw.clone();
        let keep_any: BTreeSet<String> = offline_design
            .hv
            .iter()
            .chain(offline_design.dw.iter())
            .cloned()
            .collect();
        for (i, (label, raw)) in queries.iter().enumerate() {
            let record = self.execute_one(QueryId(i as u64), label, raw, clock, &mut result.tti)?;
            // Enforce the static design: drop non-selected views, migrate
            // DW-designated ones.
            for name in self.hv.view_names() {
                if !keep_any.contains(&name) {
                    self.hv.remove_view(&name);
                    if !self.dw.has_view(&name) {
                        self.catalog.remove(&name);
                    }
                } else if keep_dw.contains(&name) && !self.dw.has_view(&name) {
                    let (rows, schema, size) = match (
                        self.hv.view_rows(&name),
                        self.hv.view_schema(&name).cloned(),
                        self.hv.view_size(&name),
                    ) {
                        (Some(r), Some(s), Some(z)) => (r, s, z),
                        _ => {
                            return Err(MisoError::Store(format!(
                                "HV lost view `{name}` during MS-OFF retention"
                            )))
                        }
                    };
                    let raw_cost = self.hv.dump_cost(size)
                        + self.transfer.transfer_cost(size)
                        + self.dw.load_cost(size);
                    let stretched = self.stretch(raw_cost, DwActivity::ViewTransfer, clock);
                    result.tti.tune += stretched;
                    clock.advance(stretched);
                    self.dw
                        .load_view(&name, schema, rows, TableSpace::Permanent);
                    self.hv.remove_view(&name);
                }
            }
            result.records.push(record);
        }
        Ok(())
    }

    // ---- The online stream (all other variants) -------------------------

    fn run_stream(
        &mut self,
        variant: Variant,
        queries: &[WorkloadQuery],
        clock: &mut SimClock,
        result: &mut ExperimentResult,
    ) -> Result<()> {
        let tuner = MisoTuner::new(TunerConfig {
            budgets: self.config.budgets,
            history_len: self.config.history_len,
            epoch_len: self.config.epoch_len,
            decay: self.config.decay,
            doi_threshold: self.config.doi_threshold,
        });
        let mut history: Vec<LogicalPlan> = Vec::new();

        for (i, (label, raw)) in queries.iter().enumerate() {
            // Streaming growth: at every reorganization boundary the corpus
            // may grow first, so the tuner below sees post-append statistics
            // and maintenance costs. Runs for *all* variants (the base data
            // grows regardless of who is tuning).
            if i > 0 && i % self.config.reorg_every == 0 {
                if let Some(growth) = self.config.growth.clone() {
                    let batch = (i / self.config.reorg_every) as u64;
                    let delta = miso_data::Delta::generated(
                        &growth.logs,
                        growth.kind,
                        batch,
                        growth.records_per_epoch,
                    );
                    let report = self.grow(&delta, growth.policy, clock)?;
                    result.tti.tune += report.cost;
                    result.maintenance.push(report);
                }
            }
            // Reorganization phase every `reorg_every` queries (not before
            // the first query: there is nothing to tune yet).
            if variant.uses_miso_tuner() && i > 0 && i % self.config.reorg_every == 0 {
                let window: Vec<LogicalPlan> = if variant == Variant::MsOra {
                    // Oracle: the *actual* next window.
                    queries
                        .iter()
                        .skip(i)
                        .take(self.config.history_len)
                        .map(|(_, p)| p.clone())
                        .collect()
                } else {
                    history
                        .iter()
                        .rev()
                        .take(self.config.history_len)
                        .rev()
                        .cloned()
                        .collect()
                };
                // Close the epoch's calibration window first: the tuner
                // below should see calibrated models when feedback is on.
                let calib = self.calibration.epoch_report(i / self.config.reorg_every);
                if self.config.calibrate_costs {
                    self.apply_calibration(&calib);
                }
                result.calibrations.push(calib);
                let reorg = self.apply_tuner(&tuner, &window, clock)?;
                result.tti.tune += reorg.duration;
                result.reorgs.push(reorg);
                // Between-epoch integrity audit: invariants plus a
                // budget-bounded checksum scrub, charged like tuner work.
                if let Some(audit_cfg) = self.config.audit.clone() {
                    let report = self.audit_pass(&audit_cfg)?;
                    result.tti.tune += report.cost;
                    clock.advance(report.cost);
                }
            }

            let qid = QueryId(i as u64);

            // Admission control (miso-guard). With guards off this whole
            // block reduces to constructing the shared inert guard.
            let guard = match self.admit(qid, label, clock, result) {
                Some(g) => g,
                None => {
                    // Shed at admission: the failure is recorded, the
                    // stream (and the tuner's history — the query *did*
                    // arrive) moves on.
                    history.push(raw.clone());
                    continue;
                }
            };
            self.active_guard = guard.clone();
            let outcome = match variant {
                Variant::HvOnly => {
                    self.execute_hv_only(qid, label, raw, clock, &mut result.tti, false)
                }
                Variant::HvOp => {
                    self.execute_hv_only(qid, label, raw, clock, &mut result.tti, true)
                }
                Variant::MsLru => {
                    self.execute_one_with_retention(qid, label, raw, clock, &mut result.tti, true)
                }
                _ => self.execute_one(qid, label, raw, clock, &mut result.tti),
            };
            self.active_guard = QueryGuard::inert();
            let record = match self.settle(qid, label, &guard, outcome, clock, result) {
                Ok(Some(record)) => record,
                Ok(None) => {
                    // Guard kill (deadline / cancel / memory): classified,
                    // reported, absorbed. The process and every other
                    // query stay healthy.
                    history.push(raw.clone());
                    continue;
                }
                Err(e) => return Err(e),
            };

            // Retention policies.
            match variant {
                Variant::MsMiso | Variant::MsOra => {
                    // Opportunistic views accumulate until the next reorg.
                }
                Variant::HvOp | Variant::MsLru => {
                    self.lru_evict_hv();
                    if variant == Variant::MsLru {
                        self.lru_evict_dw();
                    }
                }
                _ => {}
            }
            if variant == Variant::MsBasic || variant == Variant::HvOnly {
                // Nothing retained.
                for name in self.hv.view_names() {
                    self.hv.remove_view(&name);
                    self.catalog.remove(&name);
                }
            }

            history.push(raw.clone());
            result.records.push(record);
        }
        // Drain the tail-of-stream window (also the only window for
        // variants that never reorganize).
        let tail = self
            .calibration
            .epoch_report(queries.len().div_ceil(self.config.reorg_every.max(1)));
        if tail.hv.samples > 0 || tail.transfer.samples > 0 || tail.dw.samples > 0 {
            result.calibrations.push(tail);
        }
        Ok(())
    }

    /// Scales the store cost models by `report`'s fitted per-store drift
    /// ratios (clamped in [`CalibrationReport::scale`]). Mutating the model
    /// constants changes the tuner's what-if `inputs_stamp`, so memoized
    /// probe results from the stale models are naturally invalidated.
    fn apply_calibration(&mut self, report: &CalibrationReport) {
        let s_hv = report.scale(&report.hv);
        if s_hv != 1.0 {
            let m = &mut self.hv.cost_model;
            m.job_startup = m.job_startup * s_hv;
            m.read_secs_per_byte *= s_hv;
            m.write_secs_per_byte *= s_hv;
            m.cpu_secs_per_row *= s_hv;
        }
        let s_tr = report.scale(&report.transfer);
        if s_tr != 1.0 {
            self.hv.cost_model.dump_secs_per_byte *= s_tr;
            self.transfer.network_secs_per_byte *= s_tr;
            self.dw.cost_model.load_secs_per_byte *= s_tr;
        }
        let s_dw = report.scale(&report.dw);
        if s_dw != 1.0 {
            let m = &mut self.dw.cost_model;
            m.query_startup = m.query_startup * s_dw;
            m.read_secs_per_byte *= s_dw;
            m.cpu_secs_per_row *= s_dw;
        }
        miso_obs::count("xray.calibrations_applied", 1);
        miso_obs::instant(
            "xray.calibration",
            vec![
                ("epoch", miso_obs::FieldValue::U64(report.epoch as u64)),
                ("hv_pct", miso_obs::FieldValue::U64((s_hv * 100.0) as u64)),
                ("tr_pct", miso_obs::FieldValue::U64((s_tr * 100.0) as u64)),
                ("dw_pct", miso_obs::FieldValue::U64((s_dw * 100.0) as u64)),
            ],
        );
    }

    // ---- Admission & guard lifecycle --------------------------------------

    /// Admission control for one stream query. Returns the query's guard —
    /// the shared inert one when the guard layer is off — or `None` when
    /// the query was shed (its failure has already been recorded).
    fn admit(
        &mut self,
        qid: QueryId,
        label: &str,
        clock: &SimClock,
        result: &mut ExperimentResult,
    ) -> Option<QueryGuard> {
        if !self.config.guard.active() {
            return Some(QueryGuard::inert());
        }
        let now = clock.now();
        let over_capacity = self.inflight >= self.config.guard.max_inflight;
        let overloaded = !self.guard_breaker.allow(now);
        if over_capacity || overloaded {
            miso_obs::count("guard.shed", 1);
            let what = if over_capacity {
                "admission capacity"
            } else {
                "overload shedding"
            };
            result.failures.push(QueryFailure {
                query: qid,
                label: label.to_string(),
                kind: "resource_exhausted",
                message: format!("query shed at admission ({what})"),
                shed: true,
                retry_after: Some(self.config.guard.shed_cooldown),
                at: now,
                tenant: None,
                session: None,
            });
            return None;
        }
        self.inflight += 1;
        miso_obs::count("guard.admitted", 1);
        let deadline = self.config.guard.deadline.map(|d| now + d);
        Some(QueryGuard::new(
            deadline,
            self.config.guard.mem_budget.as_bytes(),
        ))
    }

    /// Post-execution guard bookkeeping: releases the admission slot,
    /// folds the query's peak charged bytes into the run high-water mark,
    /// classifies guard kills into [`QueryFailure`]s (returning
    /// `Ok(None)`), and feeds the overload breaker. Non-guard errors pass
    /// through untouched; with an inert guard this is the identity.
    fn settle(
        &mut self,
        qid: QueryId,
        label: &str,
        guard: &QueryGuard,
        outcome: Result<QueryRecord>,
        clock: &SimClock,
        result: &mut ExperimentResult,
    ) -> Result<Option<QueryRecord>> {
        if !guard.is_active() {
            return outcome.map(Some);
        }
        self.inflight = self.inflight.saturating_sub(1);
        self.guard_peak_bytes = self.guard_peak_bytes.max(guard.peak());
        miso_obs::gauge("guard.peak_bytes", self.guard_peak_bytes as f64);
        match outcome {
            Ok(record) => {
                self.guard_breaker.record_success();
                Ok(Some(record))
            }
            Err(e) if matches!(e.kind(), "cancelled" | "resource_exhausted") => {
                // A guard kill must never half-publish: working sets staged
                // in DW temp space die here, and view harvesting /
                // working-set retention are deferred past the last fallible
                // step of a split attempt, so catalog and stores hold no
                // trace of the dead query.
                self.dw.clear_temp();
                match &e {
                    MisoError::Cancelled {
                        reason: "deadline", ..
                    } => miso_obs::count("guard.deadline_exceeded", 1),
                    MisoError::Cancelled { .. } => miso_obs::count("guard.cancelled", 1),
                    _ => miso_obs::count("guard.mem_exceeded", 1),
                }
                if self.guard_breaker.record_failure(clock.now()) {
                    miso_obs::count("guard.overload_opened", 1);
                }
                result.failures.push(QueryFailure {
                    query: qid,
                    label: label.to_string(),
                    kind: e.kind(),
                    message: e.to_string(),
                    shed: false,
                    retry_after: None,
                    at: clock.now(),
                    tenant: None,
                    session: None,
                });
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    // ---- Execution paths -------------------------------------------------

    /// Executes a query entirely in HV (HV-ONLY / HV-OP).
    fn execute_hv_only(
        &mut self,
        qid: QueryId,
        label: &str,
        raw: &LogicalPlan,
        clock: &mut SimClock,
        tti: &mut TtiBreakdown,
        with_views: bool,
    ) -> Result<QueryRecord> {
        let mut obs = miso_obs::span("query");
        if obs.is_active() {
            obs.push_field("label", miso_obs::FieldValue::Str(label.to_string()));
            obs.push_field("qid", miso_obs::FieldValue::U64(qid.raw()));
        }
        let rewrite = loop {
            let available: HashSet<String> = if with_views {
                self.hv.view_names().into_iter().collect()
            } else {
                HashSet::new()
            };
            let rewrite = miso_views::rewrite_with_catalog(raw, &available, &self.catalog);
            if self.verify_used_views(&rewrite.used).is_empty() {
                break rewrite;
            }
            // A used view failed verification and was quarantined: re-plan
            // without it. Each pass removes at least one view from the
            // store, so this terminates.
            miso_obs::count("query.view_fallback", 1);
        };
        let run = self.hv_execute_retry(&rewrite.plan, None, clock, &mut tti.hv_exe)?;
        self.record_bg(DwActivity::Idle, run.cost, clock);
        tti.hv_exe += run.cost;
        clock.advance(run.cost);
        // Deadline gate *before* any view is published: a stalled run that
        // blew its deadline leaves no trace in the catalog or stores.
        self.active_guard.check_deadline(clock.now())?;
        if with_views {
            self.harvest_views(&rewrite.plan, &run, qid, usize::MAX);
            for v in &rewrite.used {
                self.lru_touch(v);
            }
        }
        if obs.is_active() {
            obs.set_sim_us(clock.now().elapsed_since_epoch().as_micros());
            obs.push_field("hv_us", miso_obs::FieldValue::U64(run.cost.as_micros()));
        }
        Ok(QueryRecord {
            query: qid,
            label: label.to_string(),
            hv: run.cost,
            dw: SimDuration::ZERO,
            transfer: SimDuration::ZERO,
            result_rows: run.execution.root_rows()?.len() as u64,
            used_views: rewrite.used,
            hv_ops: rewrite.plan.len(),
            dw_ops: 0,
            bytes_transferred: ByteSize::ZERO,
            finished_at: clock.now(),
        })
    }

    /// Executes a query as a multistore split plan against the current
    /// design, harvesting opportunistic views.
    fn execute_one(
        &mut self,
        qid: QueryId,
        label: &str,
        raw: &LogicalPlan,
        clock: &mut SimClock,
        tti: &mut TtiBreakdown,
    ) -> Result<QueryRecord> {
        self.execute_one_with_retention(qid, label, raw, clock, tti, false)
    }

    /// Executes a multistore query; with `retain_ws`, transferred working
    /// sets are kept as permanent DW views (MS-LRU's passive tuning).
    ///
    /// Graceful degradation: while the DW circuit breaker is open, split
    /// planning is skipped and the query runs HV-only; when a split attempt
    /// exhausts its DW/transfer retries, the failure is recorded against the
    /// breaker, partial DW state is discarded, and the query re-runs
    /// HV-only. Queries never error out because DW is unhealthy.
    fn execute_one_with_retention(
        &mut self,
        qid: QueryId,
        label: &str,
        raw: &LogicalPlan,
        clock: &mut SimClock,
        tti: &mut TtiBreakdown,
        retain_ws: bool,
    ) -> Result<QueryRecord> {
        if !self.dw_breaker.allow(clock.now()) {
            // DW is unhealthy and still cooling down: don't even plan a
            // split. The first allowed call after the cooldown is the probe.
            miso_obs::count("query.hv_fallback", 1);
            return self.execute_hv_only(qid, label, raw, clock, tti, true);
        }
        match self.execute_split_attempt(qid, label, raw, clock, tti, retain_ws) {
            Ok(record) => Ok(record),
            Err(e) if e.is_transient() && matches!(e.source(), Some("dw") | Some("transfer")) => {
                // DW-side retries exhausted: mark the store unhealthy,
                // discard any partially staged working sets, and fall back
                // to an HV-only run. Time already spent on the failed
                // attempt stays charged — it really elapsed.
                if self.dw_breaker.record_failure(clock.now()) {
                    miso_obs::count("store.circuit_open", 1);
                }
                self.dw.clear_temp();
                miso_obs::count("query.hv_fallback", 1);
                self.execute_hv_only(qid, label, raw, clock, tti, true)
            }
            Err(e) => Err(e),
        }
    }

    /// One split-plan attempt (the pre-chaos execution path). DW-side
    /// transient errors escape to [`Self::execute_one_with_retention`],
    /// which degrades to HV-only.
    fn execute_split_attempt(
        &mut self,
        qid: QueryId,
        label: &str,
        raw: &LogicalPlan,
        clock: &mut SimClock,
        tti: &mut TtiBreakdown,
        retain_ws: bool,
    ) -> Result<QueryRecord> {
        let mut obs = miso_obs::span("query");
        if obs.is_active() {
            obs.push_field("label", miso_obs::FieldValue::Str(label.to_string()));
            obs.push_field("qid", miso_obs::FieldValue::U64(qid.raw()));
        }
        let (planned, stats): (PlannedQuery, MapStats) = loop {
            let design = self.current_design();
            let stats = self.build_stats();
            let planned = {
                let env = OptimizerEnv {
                    stats: &stats,
                    hv: &self.hv.cost_model,
                    dw: &self.dw.cost_model,
                    transfer: &self.transfer,
                    catalog: Some(&self.catalog),
                };
                optimize(raw, &design, &env)?
            };
            if self.verify_used_views(&planned.used_views).is_empty() {
                break (planned, stats);
            }
            // A planned view failed verification and was quarantined:
            // re-plan against the shrunken design.
            miso_obs::count("query.view_fallback", 1);
        };
        let plan = &planned.plan;
        let hv_set: HashSet<_> = planned.split.hv_nodes().iter().copied().collect();
        let dw_set: HashSet<_> = plan
            .nodes()
            .iter()
            .map(|n| n.id)
            .filter(|id| !hv_set.contains(id))
            .collect();

        let mut hv_time = SimDuration::ZERO;
        let mut transfer_time = SimDuration::ZERO;
        let mut dw_time = SimDuration::ZERO;
        let mut bytes_transferred = ByteSize::ZERO;
        let mut provided: HashMap<miso_common::ids::NodeId, Arc<Vec<Row>>> = HashMap::new();
        let mut result_rows = 0u64;
        let profiling = miso_exec::profile::enabled();
        let mut node_profiles: HashMap<miso_common::ids::NodeId, miso_exec::OpProfile> =
            HashMap::new();
        let mut actual_rows: HashMap<miso_common::ids::NodeId, u64> = HashMap::new();

        // HV side. Publishing of by-products (working-set retention, view
        // harvesting) is deferred until the split attempt is past its last
        // fallible step — a query the guard kills mid-flight must not
        // half-publish catalog or view state.
        let mut hv_run: Option<miso_hv::HvRun> = None;
        let mut retained_cuts: Vec<miso_common::ids::NodeId> = Vec::new();
        if !hv_set.is_empty() {
            let run = self.hv_execute_retry(plan, Some(&hv_set), clock, &mut tti.hv_exe)?;
            hv_time = run.cost;
            self.record_bg(DwActivity::Idle, hv_time, clock);
            tti.hv_exe += hv_time;
            clock.advance(hv_time);
            self.active_guard.check_deadline(clock.now())?;

            // Ship each cut working set.
            for cut in planned.split.cut_nodes(plan) {
                let rows = run.execution.output(cut).clone();
                let bytes = run.execution.output_bytes(cut);
                bytes_transferred += bytes;
                miso_obs::count("system.bytes_transferred", bytes.as_bytes());
                miso_obs::instant(
                    "query.transfer",
                    vec![
                        ("cut", miso_obs::FieldValue::U64(cut.raw())),
                        ("bytes", miso_obs::FieldValue::U64(bytes.as_bytes())),
                    ],
                );
                let base_cost = self.hv.dump_cost(bytes)
                    + self.transfer.transfer_cost(bytes)
                    + self.dw.load_cost(bytes);
                let node = plan.node(cut);
                let ws_name = format!("ws_{qid}_{cut}");
                // The shipment checksum comes free with materialization;
                // the DW copy is verified after every (re-)load so a
                // corrupted wire transfer is re-shipped — and re-charged —
                // rather than silently computed on.
                let expected = checksum_rows(&rows);
                let mut ship_tries = 0u32;
                loop {
                    let (raw_cost, waited, corrupted) = self.ship_attempt(base_cost, clock)?;
                    transfer_time += waited;
                    tti.transfer += waited;
                    let stretched = self.stretch(raw_cost, DwActivity::WorkingSetTransfer, clock);
                    transfer_time += stretched;
                    tti.transfer += stretched;
                    clock.advance(stretched);
                    self.active_guard.check_deadline(clock.now())?;
                    // Working sets live in temp table space for the query
                    // only.
                    self.dw.load_view(
                        &ws_name,
                        node.schema.clone(),
                        rows.clone(),
                        TableSpace::Temporary,
                    );
                    if corrupted {
                        self.dw.corrupt_temp(&ws_name);
                    }
                    if self.dw.verify_temp(&ws_name, expected) != Some(false) {
                        break;
                    }
                    miso_obs::count("integrity.checksum_failures", 1);
                    if ship_tries >= self.config.retry.max_retries {
                        return Err(MisoError::transient(
                            "transfer",
                            "working set corrupted after retries",
                        ));
                    }
                    ship_tries += 1;
                    miso_obs::count("transfer.reshipped", 1);
                }
                if retain_ws {
                    retained_cuts.push(cut);
                }
                provided.insert(cut, rows);
            }
            if planned.split.is_hv_only(plan) {
                result_rows = run.execution.root_rows()?.len() as u64;
            }
            for id in run.execution.executed_nodes() {
                if let Some(rows) = run.execution.rows_out(id) {
                    actual_rows.insert(id, rows);
                }
            }
            if profiling {
                node_profiles.extend(run.execution.profiles().iter().map(|(&k, &v)| (k, v)));
            }
            hv_run = Some(run);
        }

        // DW side.
        if !dw_set.is_empty() {
            let run =
                self.dw_execute_retry(plan, Some(&dw_set), &provided, clock, &mut tti.dw_exe)?;
            let stretched = self.stretch(run.cost, DwActivity::QueryExec, clock);
            dw_time = stretched;
            tti.dw_exe += stretched;
            clock.advance(stretched);
            self.active_guard.check_deadline(clock.now())?;
            result_rows = run.execution.root_rows()?.len() as u64;
            // DW answered: the store is healthy again.
            self.dw_breaker.record_success();
            for id in run.execution.executed_nodes() {
                if !provided.contains_key(&id) {
                    if let Some(rows) = run.execution.rows_out(id) {
                        actual_rows.insert(id, rows);
                    }
                }
            }
            if profiling {
                node_profiles.extend(run.execution.profiles().iter().map(|(&k, &v)| (k, v)));
            }
        }
        self.dw.clear_temp();

        // Publish by-products. Every fallible step is behind us: retained
        // working sets become permanent DW views and HV-side stage outputs
        // become opportunistic views, exactly as they would have mid-flight
        // in the guard-free ordering (same LRU touch order, no charges).
        if let Some(run) = &hv_run {
            for cut in &retained_cuts {
                // A cut that was never shipped (defensive: retained_cuts is
                // built from `provided` keys) is skipped, not a panic.
                if let Some(rows) = provided.get(cut) {
                    self.retain_working_set(plan, *cut, rows.clone(), qid);
                }
            }
            self.harvest_views(plan, run, qid, usize::MAX);
        }

        // Predicted-vs-actual drift. "Actual" store times are the simulated
        // costs charged over real executed sizes, so this comparison
        // isolates estimation error and stays deterministic.
        let actual_cost = CostBreakdown {
            hv: hv_time,
            transfer: transfer_time,
            dw: dw_time,
        };
        self.calibration.record_query(&planned.est, &actual_cost);
        let estimates = estimate_plan(plan, &stats);
        for node in plan.nodes() {
            if let (Some(&act), Some(est)) = (actual_rows.get(&node.id), estimates.get(&node.id)) {
                self.calibration
                    .record_rows(op_class(&node.op), est.rows, act);
            }
        }
        if profiling {
            self.xrays.push(miso_xray::analyze(
                label,
                &planned,
                &estimates,
                &node_profiles,
                &actual_rows,
                &miso_xray::CostModels {
                    hv: &self.hv.cost_model,
                    dw: &self.dw.cost_model,
                    transfer: &self.transfer,
                },
            ));
        }

        for v in &planned.used_views {
            self.lru_touch(v);
        }
        if obs.is_active() {
            obs.set_sim_us(clock.now().elapsed_since_epoch().as_micros());
            obs.push_field("hv_us", miso_obs::FieldValue::U64(hv_time.as_micros()));
            obs.push_field("dw_us", miso_obs::FieldValue::U64(dw_time.as_micros()));
            obs.push_field(
                "transfer_us",
                miso_obs::FieldValue::U64(transfer_time.as_micros()),
            );
            obs.push_field(
                "bytes_transferred",
                miso_obs::FieldValue::U64(bytes_transferred.as_bytes()),
            );
            obs.push_field("rows", miso_obs::FieldValue::U64(result_rows));
            obs.push_field(
                "used_views",
                miso_obs::FieldValue::U64(planned.used_views.len() as u64),
            );
        }
        Ok(QueryRecord {
            query: qid,
            label: label.to_string(),
            hv: hv_time,
            dw: dw_time,
            transfer: transfer_time,
            result_rows,
            used_views: planned.used_views,
            hv_ops: hv_set.len(),
            dw_ops: dw_set.len(),
            bytes_transferred,
            finished_at: clock.now(),
        })
    }

    // ---- Tuning ----------------------------------------------------------

    /// Runs one reorganization phase: compute the new design and migrate
    /// views accordingly, charging TUNE time.
    fn apply_tuner(
        &mut self,
        tuner: &MisoTuner,
        window: &[LogicalPlan],
        clock: &mut SimClock,
    ) -> Result<ReorgRecord> {
        let mut obs = miso_obs::span("tuner.reorg");
        miso_obs::count("tuner.reorgs", 1);
        let start = clock.now();
        let mut current_hv: BTreeSet<String> = self.hv.view_names().into_iter().collect();
        let current_dw: BTreeSet<String> = self.dw.view_names().into_iter().collect();
        // Self-healing: quarantined views are offered to the tuner as if
        // they were still HV-resident, so M-KNAPSACK decides whether each
        // one earns its recompute cost in the new design.
        let quarantined = self.catalog.quarantined_names();
        let mut tune_hv = current_hv.clone();
        tune_hv.extend(quarantined.iter().cloned());
        let stats = self.build_stats();
        // Under a growth schedule, keeping a view costs upkeep too: charge
        // each candidate its estimated per-window maintenance cost so
        // delta-maintainable views out-compete equal-benefit views that
        // need full recomputation. Without growth the map is empty and the
        // tuner's arithmetic is untouched.
        let maint_cost = self.maintenance_costs();
        let mut new_design = tuner.tune_with_maintenance(
            &tune_hv,
            &current_dw,
            &self.catalog,
            window,
            &stats,
            &self.hv.cost_model,
            &self.dw.cost_model,
            &self.transfer,
            &maint_cost,
        );
        let mut duration = self.config.tune_compute;
        let mut repaired = Vec::new();
        let mut dropped_pre = Vec::new();
        for name in &quarantined {
            if new_design.hv.contains(name) || new_design.dw.contains(name) {
                // Worth keeping: recompute from base data in HV, charged
                // to this phase like any other tuner work.
                match self.recompute_quarantined(name, clock, &mut duration) {
                    Ok(()) => {
                        current_hv.insert(name.clone());
                        repaired.push(name.clone());
                    }
                    Err(_) => {
                        // Recompute failed (e.g. HV unhealthy or the
                        // defining plan reads a view that is gone): give
                        // the view up rather than fail the reorg.
                        new_design.hv.remove(name);
                        new_design.dw.remove(name);
                        self.catalog.remove(name);
                        dropped_pre.push(name.clone());
                    }
                }
            } else {
                // Not worth its recompute cost: drop it from the catalog.
                self.catalog.remove(name);
                dropped_pre.push(name.clone());
            }
        }
        // Apply the design through the crash-safe two-phase journal (see
        // the [`crate::reorg`] module docs). Fault-free runs take the same
        // steps, in the same order, with the same charges as a direct
        // apply would.
        let plan = ReorgPlan::diff(&current_hv, &current_dw, &new_design.hv, &new_design.dw);
        let mut bytes_moved = ByteSize::ZERO;
        let mut journal = ReorgJournal::new();
        let mut recoveries = 0u64;
        let mut rolled_back = false;
        let (moved_to_dw, moved_to_hv, mut dropped) = loop {
            let poll_chaos = recoveries <= MAX_REORG_RECOVERIES;
            match self.reorg_pass(
                &plan,
                &new_design,
                &mut journal,
                clock,
                &mut duration,
                &mut bytes_moved,
                poll_chaos,
            ) {
                Ok(lists) => break lists,
                Err(e) if e.is_crash() => {
                    // The reorg "process" died: volatile DW temp space is
                    // gone; the journal, HV, and DW permanent space
                    // survive.
                    self.dw.clear_temp();
                    recoveries += 1;
                    miso_obs::count("tuner.reorg_recovered", 1);
                    if !journal.committed() {
                        // Pre-commit: roll back. Staging copies are
                        // discarded and the old design stands.
                        self.reorg_rollback(&journal);
                        rolled_back = true;
                        break (Vec::new(), Vec::new(), Vec::new());
                    }
                    // Post-commit: replay. The next pass resumes from the
                    // journal; past the recovery cap it runs with fault
                    // injection suppressed (liveness backstop).
                }
                Err(e) => return Err(e),
            }
        };
        // The design-computation time itself.
        self.record_bg(DwActivity::Idle, self.config.tune_compute, clock);
        clock.advance(self.config.tune_compute);
        dropped.extend(dropped_pre);
        miso_obs::count(
            "tuner.views_moved",
            (moved_to_dw.len() + moved_to_hv.len()) as u64,
        );
        miso_obs::count("tuner.views_dropped", dropped.len() as u64);
        if obs.is_active() {
            obs.set_sim_us(clock.now().elapsed_since_epoch().as_micros());
            obs.push_field(
                "moved_to_dw",
                miso_obs::FieldValue::U64(moved_to_dw.len() as u64),
            );
            obs.push_field(
                "moved_to_hv",
                miso_obs::FieldValue::U64(moved_to_hv.len() as u64),
            );
            obs.push_field("dropped", miso_obs::FieldValue::U64(dropped.len() as u64));
            obs.push_field(
                "bytes_moved",
                miso_obs::FieldValue::U64(bytes_moved.as_bytes()),
            );
            obs.push_field(
                "duration_us",
                miso_obs::FieldValue::U64(duration.as_micros()),
            );
            obs.push_field("repaired", miso_obs::FieldValue::U64(repaired.len() as u64));
        }
        self.last_reorg_journal = Some(journal);
        Ok(ReorgRecord {
            at: start,
            duration,
            moved_to_dw,
            moved_to_hv,
            dropped,
            repaired,
            bytes_moved,
            recoveries,
            rolled_back,
        })
    }

    /// One resumable pass over the journaled reorganization. Steps already
    /// recorded in the journal are skipped; volatile staging copies lost to
    /// a crash are re-staged (and re-charged — recovery work is real work).
    /// A `Crash` action escapes as [`MisoError::Crash`] for the recovery
    /// loop in [`Self::apply_tuner`].
    #[allow(clippy::too_many_arguments)]
    fn reorg_pass(
        &mut self,
        plan: &ReorgPlan,
        design: &NewDesign,
        journal: &mut ReorgJournal,
        clock: &mut SimClock,
        duration: &mut SimDuration,
        bytes_moved: &mut ByteSize,
        poll_chaos: bool,
    ) -> Result<(Vec<String>, Vec<String>, Vec<String>)> {
        // Intent: log the full plan before anything moves.
        if !journal.started() {
            self.reorg_step_poll(poll_chaos, clock, duration)?;
            journal.append(JournalEntry::Intent {
                to_dw: plan.to_dw.clone(),
                to_hv: plan.to_hv.clone(),
            });
        }

        // Stage HV → DW: copy into DW temp space; the HV source stays.
        for name in &plan.to_dw {
            if journal.applied(name)
                || (journal.staged(name) && self.dw.has_temp(&stage_name(name)))
            {
                continue;
            }
            let (slow, corrupted) = self.reorg_step_poll(poll_chaos, clock, duration)?;
            let Some(rows) = self.hv.view_rows(name) else {
                return Err(MisoError::Tuning(format!(
                    "tuner placed `{name}` in DW but no store holds it"
                )));
            };
            // Rows resident imply schema/size metadata; if the store lost
            // one of them mid-reorg that is an integrity violation, not a
            // panic.
            let (Some(schema), Some(size)) =
                (self.hv.view_schema(name).cloned(), self.hv.view_size(name))
            else {
                return Err(MisoError::integrity(
                    name.as_str(),
                    "HV holds rows for the view but lost its schema/size metadata",
                ));
            };
            let mut raw_cost = self.hv.dump_cost(size)
                + self.transfer.transfer_cost(size)
                + self.dw.load_cost(size);
            if slow != 1.0 {
                raw_cost = raw_cost * slow;
            }
            let stretched = self.stretch(raw_cost, DwActivity::ViewTransfer, clock);
            *duration += stretched;
            clock.advance(stretched);
            *bytes_moved += size;
            self.dw
                .load_view(&stage_name(name), schema, rows, TableSpace::Temporary);
            if corrupted {
                self.dw.corrupt_temp(&stage_name(name));
            }
            if !journal.staged(name) {
                journal.append(JournalEntry::Staged {
                    view: name.clone(),
                    to_dw: true,
                });
            }
        }

        // Stage DW → HV: install under the final name in (durable) HV; the
        // DW source stays until the flip.
        for name in &plan.to_hv {
            if journal.applied(name) || (journal.staged(name) && self.hv.has_view(name)) {
                continue;
            }
            let (slow, corrupted) = self.reorg_step_poll(poll_chaos, clock, duration)?;
            let (Some(schema), Some(rows), Some(size)) = (
                self.dw.view_schema(name).cloned(),
                self.dw.view_rows_arc(name),
                self.dw.view_size(name),
            ) else {
                // The DW source vanished (dropped by an earlier design):
                // nothing to migrate.
                continue;
            };
            let mut raw_cost = self.transfer.transfer_cost(size) + self.hv.dump_cost(size);
            if slow != 1.0 {
                raw_cost = raw_cost * slow;
            }
            let stretched = self.stretch(raw_cost, DwActivity::ViewTransfer, clock);
            *duration += stretched;
            clock.advance(stretched);
            *bytes_moved += size;
            self.hv.install_view(name, schema, rows);
            if corrupted {
                self.hv.corrupt_view(name);
            }
            journal.append(JournalEntry::Staged {
                view: name.clone(),
                to_dw: false,
            });
        }

        // Commit: the new design becomes authoritative.
        if !journal.committed() {
            self.reorg_step_poll(poll_chaos, clock, duration)?;
            journal.append(JournalEntry::Commit);
        }

        // Apply: flip each staged copy into the design (atomic per view).
        let mut moved_to_dw = Vec::new();
        let mut moved_to_hv = Vec::new();
        for name in &plan.to_dw {
            if !journal.applied(name) {
                self.reorg_step_poll(poll_chaos, clock, duration)?;
                if self.dw.promote_temp(&stage_name(name), name).is_none() {
                    return Err(MisoError::integrity(
                        name.as_str(),
                        "reorg staging copy vanished before apply",
                    ));
                }
                // Verify the promoted copy against its materialization-time
                // checksum before dropping the HV source; a torn copy is
                // evicted and the view simply does not move this phase.
                if self.verify_moved_copy(name, true) {
                    self.hv.remove_view(name);
                }
                journal.append(JournalEntry::Applied {
                    view: name.clone(),
                    to_dw: true,
                });
            }
            if self.dw.has_view(name) {
                moved_to_dw.push(name.clone());
            }
        }
        for name in &plan.to_hv {
            if !journal.applied(name) {
                self.reorg_step_poll(poll_chaos, clock, duration)?;
                // The copy already sits in HV under the final name; verify
                // it survived the wire before dropping the DW source (a
                // no-op when there was nothing to stage).
                if self.verify_moved_copy(name, false) {
                    self.dw.evict_view(name);
                }
                journal.append(JournalEntry::Applied {
                    view: name.clone(),
                    to_dw: false,
                });
            }
            if self.hv.has_view(name) {
                moved_to_hv.push(name.clone());
            }
        }

        // Enforce the new design. DW is tightly managed: exactly the packed
        // set. HV "may have more spare capacity" (paper §3.1): non-design
        // views survive as long as the HV storage budget holds, oldest
        // evicted first beyond it.
        let mut dropped = Vec::new();
        if !journal.done() {
            self.reorg_step_poll(poll_chaos, clock, duration)?;
            let hv_budget = self.config.budgets.hv_storage;
            let mut extras: Vec<String> = self
                .hv
                .view_names()
                .into_iter()
                .filter(|n| !design.hv.contains(n) && !design.dw.contains(n))
                .collect();
            // LRU order: least-recently-used extras go first.
            extras.sort_by_key(|n| self.lru.iter().position(|x| x == n).unwrap_or(0));
            let mut i = 0;
            while self.hv.total_view_bytes() > hv_budget && i < extras.len() {
                let name = &extras[i];
                self.hv.remove_view(name);
                if !self.dw.has_view(name) {
                    self.catalog.remove(name);
                    dropped.push(name.clone());
                }
                i += 1;
            }
            for name in self.dw.view_names() {
                if !design.dw.contains(&name) {
                    self.dw.evict_view(&name);
                    if !self.hv.has_view(&name) {
                        self.catalog.remove(&name);
                        dropped.push(name);
                    }
                }
            }
            journal.append(JournalEntry::Done);
        }
        Ok((moved_to_dw, moved_to_hv, dropped))
    }

    /// Polls the `reorg.step` fail point between journal steps. `Fail` is
    /// retried with backoff (charged to the phase duration); `Delay`
    /// returns a cost factor for the next movement; `Corrupt` sets the
    /// flag so the caller corrupts the copy it is about to stage; `Crash`
    /// escapes to the recovery loop.
    fn reorg_step_poll(
        &mut self,
        poll: bool,
        clock: &mut SimClock,
        duration: &mut SimDuration,
    ) -> Result<(f64, bool)> {
        if !poll {
            return Ok((1.0, false));
        }
        let mut attempt = 0u32;
        loop {
            match miso_chaos::hit("reorg.step") {
                miso_chaos::Action::Proceed => return Ok((1.0, false)),
                miso_chaos::Action::Delay(f) => return Ok((f, false)),
                // Reorg work has no per-query deadline; a stall is just a
                // very slow movement, a hog a no-op (nothing is charged).
                miso_chaos::Action::Stall => return Ok((miso_chaos::STALL_FACTOR, false)),
                miso_chaos::Action::Hog(_) => return Ok((1.0, false)),
                miso_chaos::Action::Corrupt => return Ok((1.0, true)),
                miso_chaos::Action::Crash => return Err(MisoError::crash("tuner", "reorg.step")),
                miso_chaos::Action::Fail if attempt < self.config.retry.max_retries => {
                    attempt += 1;
                    let backoff = self.config.retry.backoff(attempt, &mut self.retry_rng);
                    *duration += backoff;
                    clock.advance(backoff);
                    miso_obs::count("store.retries", 1);
                }
                miso_chaos::Action::Fail => {
                    return Err(MisoError::transient("tuner", "injected reorg step failure"))
                }
            }
        }
    }

    /// Undoes a pre-commit reorganization: staged DW→HV copies are removed
    /// from HV (their DW sources are intact); staged HV→DW copies lived in
    /// volatile DW temp space and died with the crash. No view is lost —
    /// every source is still in place.
    fn reorg_rollback(&mut self, journal: &ReorgJournal) {
        for view in journal.staged_views(false) {
            if self.dw.has_view(view) {
                self.hv.remove_view(view);
            }
        }
    }

    // ---- Integrity ---------------------------------------------------------

    /// Polls the per-store `*.view_read` corruption points for every view a
    /// plan is about to serve and — when verify-on-read is enabled — checks
    /// each stored copy against its materialization-time checksum. Corrupt
    /// copies are dropped from their store and the view is quarantined in
    /// the catalog, never to be served again until repaired. Returns the
    /// quarantined names; an empty list means the plan is safe to run.
    ///
    /// With chaos disabled and verify-on-read off this is a store probe
    /// plus one relaxed atomic load per view — no checksum is recomputed
    /// on the query path.
    fn verify_used_views(&mut self, used: &[String]) -> Vec<String> {
        let mut quarantined = Vec::new();
        for name in used {
            let in_dw = self.dw.has_view(name);
            let point = if in_dw {
                "dw.view_read"
            } else {
                "hv.view_read"
            };
            if let miso_chaos::Action::Corrupt = miso_chaos::hit(point) {
                if in_dw {
                    self.dw.corrupt_view(name);
                } else {
                    self.hv.corrupt_view(name);
                }
            }
            if !miso_common::integrity::verify_on_read() {
                continue;
            }
            let Some(expected) = self.catalog.get(name).and_then(|d| d.checksum) else {
                continue;
            };
            let bad = self.hv.verify_view(name, expected) == Some(false)
                || self.dw.verify_view(name, expected) == Some(false);
            if bad {
                self.quarantine_view(name);
                quarantined.push(name.clone());
            }
        }
        quarantined
    }

    /// Drops every stored copy of a corrupt view and quarantines it in the
    /// catalog (shared by read-time verification and the scrubber).
    pub(crate) fn quarantine_view(&mut self, name: &str) {
        miso_obs::count("integrity.checksum_failures", 1);
        self.hv.remove_view(name);
        self.dw.evict_view(name);
        if self.catalog.quarantine(name) {
            miso_obs::count("integrity.quarantined", 1);
        }
    }

    /// Verifies a view copy that just crossed a store boundary against its
    /// materialization-time checksum. On mismatch the torn copy is dropped
    /// (the counter ticks) and `false` comes back so the caller keeps the
    /// surviving source in place. Views without a recorded checksum pass.
    fn verify_moved_copy(&mut self, name: &str, in_dw: bool) -> bool {
        let Some(expected) = self.catalog.get(name).and_then(|d| d.checksum) else {
            return true;
        };
        let ok = if in_dw {
            self.dw.verify_view(name, expected)
        } else {
            self.hv.verify_view(name, expected)
        };
        if ok == Some(false) {
            miso_obs::count("integrity.checksum_failures", 1);
            if in_dw {
                self.dw.evict_view(name);
            } else {
                self.hv.remove_view(name);
            }
            return false;
        }
        true
    }

    /// Recomputes a quarantined view from its defining plan in HV,
    /// reinstalls the fresh copy with a fresh checksum, and lifts the
    /// quarantine. The HV compute cost is charged to the reorganization
    /// phase (`duration`) and the simulated clock.
    fn recompute_quarantined(
        &mut self,
        name: &str,
        clock: &mut SimClock,
        duration: &mut SimDuration,
    ) -> Result<()> {
        let def =
            self.catalog.get(name).cloned().ok_or_else(|| {
                MisoError::integrity(name, "quarantined view missing from catalog")
            })?;
        let run = self.hv.execute(&def.plan, None, &self.udfs)?;
        let rows: Arc<Vec<Row>> = Arc::new(run.execution.root_rows()?.to_vec());
        self.record_bg(DwActivity::Idle, run.cost, clock);
        *duration += run.cost;
        clock.advance(run.cost);
        let size = ByteSize::from_bytes(rows.iter().map(Row::approx_bytes).sum());
        let checksum = checksum_rows(&rows);
        let row_count = rows.len() as u64;
        self.hv.install_view(name, def.schema.clone(), rows);
        self.catalog.set_checksum(name, checksum);
        self.catalog.update_stats(name, size, row_count);
        self.catalog.clear_quarantine(name);
        miso_obs::count("integrity.repaired", 1);
        self.lru_touch(name);
        Ok(())
    }

    // ---- Shared plumbing ---------------------------------------------------

    /// The design implied by what the stores actually hold.
    pub fn current_design(&self) -> Design {
        Design {
            hv_views: self.hv.view_names().into_iter().collect(),
            dw_views: self.dw.view_names().into_iter().collect(),
        }
    }

    /// Builds the stats source: true log sizes plus every catalog view's
    /// size (views not resident anywhere have been dropped from the
    /// catalog).
    pub fn build_stats(&self) -> MapStats {
        let mut stats = MapStats::new();
        self.hv.fill_stats(&mut stats);
        self.dw.fill_stats(&mut stats);
        for def in self.catalog.defs() {
            stats.set_view(
                def.name.clone(),
                def.rows as f64,
                def.size.as_bytes() as f64,
            );
        }
        stats
    }

    /// Registers the materialized stage outputs of an HV run as
    /// opportunistic views (up to `limit` of them, largest-subtree first).
    fn harvest_views(
        &mut self,
        plan: &LogicalPlan,
        run: &miso_hv::HvRun,
        qid: QueryId,
        limit: usize,
    ) {
        let fps = fingerprint_all(plan);
        for m in run.materialized.iter().take(limit) {
            // A view over a bare scan is just the base log — skip.
            if plan.node(m.node).op.is_scan() {
                continue;
            }
            // Materialized output for a node the fingerprint map doesn't know
            // (can't happen for a well-formed plan, but a poisoned plan must
            // kill one harvest, never the process).
            let Some(fp) = fps.get(&m.node) else {
                continue;
            };
            let name = fp.view_name();
            if self.catalog.contains(&name) {
                // Same semantics already known; refresh HV residency if the
                // contents were dropped from both stores — which happens
                // exactly when the view was quarantined (or lost) and this
                // query just recomputed it as a by-product: the free
                // self-healing path.
                if !self.hv.has_view(&name) && !self.dw.has_view(&name) {
                    self.hv
                        .install_view(&name, m.schema.clone(), m.rows.clone());
                    self.catalog.set_checksum(&name, checksum_rows(&m.rows));
                    self.catalog
                        .update_stats(&name, m.size, m.rows.len() as u64);
                    if self.catalog.clear_quarantine(&name) {
                        miso_obs::count("integrity.repaired", 1);
                    }
                    self.lru_touch(&name);
                }
                continue;
            }
            let def = ViewDef::from_plan(plan.subplan(m.node), m.size, m.rows.len() as u64, qid)
                .with_checksum(checksum_rows(&m.rows));
            debug_assert_eq!(def.name, name, "fingerprint consistency");
            self.catalog.register(def);
            self.hv
                .install_view(&name, m.schema.clone(), m.rows.clone());
            self.lru_touch(&name);
        }
    }

    fn lru_touch(&mut self, name: &str) {
        self.lru.retain(|n| n != name);
        self.lru.push(name.to_string());
    }

    /// Evicts least-recently-used HV views until within `B_h`.
    fn lru_evict_hv(&mut self) {
        let budget = self.config.budgets.hv_storage;
        let mut i = 0;
        while self.hv.total_view_bytes() > budget && i < self.lru.len() {
            let name = self.lru[i].clone();
            if self.hv.has_view(&name) {
                self.hv.remove_view(&name);
                if !self.dw.has_view(&name) {
                    self.catalog.remove(&name);
                }
            }
            i += 1;
        }
        self.gc_lru();
    }

    /// Evicts least-recently-used DW views until within `B_d` (MS-LRU).
    fn lru_evict_dw(&mut self) {
        let budget = self.config.budgets.dw_storage;
        let mut i = 0;
        while self.dw.total_view_bytes() > budget && i < self.lru.len() {
            let name = self.lru[i].clone();
            if self.dw.has_view(&name) {
                self.dw.evict_view(&name);
                if !self.hv.has_view(&name) {
                    self.catalog.remove(&name);
                }
            }
            i += 1;
        }
        self.gc_lru();
    }

    fn gc_lru(&mut self) {
        let hv = &self.hv;
        let dw = &self.dw;
        self.lru.retain(|n| hv.has_view(n) || dw.has_view(n));
    }

    /// MS-LRU's passive DW tuning: retain a transferred working set as a
    /// permanent DW view.
    pub fn retain_working_set(
        &mut self,
        plan: &LogicalPlan,
        node: miso_common::ids::NodeId,
        rows: Arc<Vec<Row>>,
        qid: QueryId,
    ) {
        let fps = fingerprint_all(plan);
        // An unknown node means the caller handed us a cut that isn't part of
        // this plan; dropping the retention is safe (it is an optimization).
        let Some(fp) = fps.get(&node) else {
            return;
        };
        let name = fp.view_name();
        if self.dw.has_view(&name) {
            return;
        }
        let schema = plan.node(node).schema.clone();
        let size = ByteSize::from_bytes(rows.iter().map(Row::approx_bytes).sum());
        if !self.catalog.contains(&name) {
            let def = ViewDef::from_plan(plan.subplan(node), size, rows.len() as u64, qid)
                .with_checksum(checksum_rows(&rows));
            self.catalog.register(def);
        }
        self.dw
            .load_view(&name, schema, rows, TableSpace::Permanent);
        self.lru_touch(&name);
    }

    // ---- Failure handling -------------------------------------------------

    /// Runs an HV call under the retry policy; backoff waits are charged to
    /// the clock and `bucket`.
    fn hv_execute_retry(
        &mut self,
        plan: &LogicalPlan,
        subset: Option<&HashSet<miso_common::ids::NodeId>>,
        clock: &mut SimClock,
        bucket: &mut SimDuration,
    ) -> Result<miso_hv::HvRun> {
        let hv = &self.hv;
        let udfs = &self.udfs;
        let guard = &self.active_guard;
        retry_loop(
            &self.config.retry,
            &mut self.retry_rng,
            guard,
            clock,
            bucket,
            || hv.execute_guarded(plan, subset, udfs, guard),
        )
    }

    /// Runs a DW call under the retry policy; backoff waits are charged to
    /// the clock and `bucket`. Working sets are re-provided on each attempt
    /// (cheap: `Arc` clones).
    fn dw_execute_retry(
        &mut self,
        plan: &LogicalPlan,
        subset: Option<&HashSet<miso_common::ids::NodeId>>,
        provided: &HashMap<miso_common::ids::NodeId, Arc<Vec<Row>>>,
        clock: &mut SimClock,
        bucket: &mut SimDuration,
    ) -> Result<miso_dw::DwRun> {
        let dw = &self.dw;
        let udfs = &self.udfs;
        let guard = &self.active_guard;
        retry_loop(
            &self.config.retry,
            &mut self.retry_rng,
            guard,
            clock,
            bucket,
            || dw.execute_guarded(plan, subset, provided.clone(), udfs, guard),
        )
    }

    /// Polls the `transfer.ship` fail point, retrying injected transient
    /// failures with backoff. Returns `(transfer cost to charge, backoff
    /// time already waited, corrupted-in-flight flag)`; the caller charges
    /// the first two and verifies/re-ships when the flag is set.
    fn ship_attempt(
        &mut self,
        base: SimDuration,
        clock: &mut SimClock,
    ) -> Result<(SimDuration, SimDuration, bool)> {
        let mut attempt = 0u32;
        let mut waited = SimDuration::ZERO;
        loop {
            match miso_chaos::hit("transfer.ship") {
                miso_chaos::Action::Proceed => return Ok((base, waited, false)),
                miso_chaos::Action::Delay(f) => return Ok((base * f, waited, false)),
                // A stall is an extreme delay: the shipped bytes arrive,
                // but far past any sane deadline (the caller's guard
                // converts the blown clock into a cancellation).
                miso_chaos::Action::Stall => {
                    return Ok((base * miso_chaos::STALL_FACTOR, waited, false))
                }
                // Memory hogs target query execution; a transfer has no
                // charged buffers to inflate.
                miso_chaos::Action::Hog(_) => return Ok((base, waited, false)),
                miso_chaos::Action::Corrupt => return Ok((base, waited, true)),
                miso_chaos::Action::Crash => {
                    return Err(MisoError::crash("transfer", "transfer.ship"))
                }
                miso_chaos::Action::Fail if attempt < self.config.retry.max_retries => {
                    attempt += 1;
                    let backoff = self.config.retry.backoff(attempt, &mut self.retry_rng);
                    waited += backoff;
                    clock.advance(backoff);
                    miso_obs::count("store.retries", 1);
                }
                miso_chaos::Action::Fail => {
                    return Err(MisoError::transient(
                        "transfer",
                        "injected transfer failure",
                    ))
                }
            }
        }
    }

    // ---- Background interference ------------------------------------------

    /// Stretches a DW-side duration under background contention and records
    /// the interval.
    fn stretch(&mut self, raw: SimDuration, activity: DwActivity, clock: &SimClock) -> SimDuration {
        match &mut self.background {
            Some(bg) => {
                let stretched = raw * bg.stretch_factor(activity);
                bg.record(clock.now(), stretched, activity);
                stretched
            }
            None => raw,
        }
    }

    fn record_bg(&mut self, activity: DwActivity, duration: SimDuration, clock: &SimClock) {
        if let Some(bg) = &mut self.background {
            bg.record(clock.now(), duration, activity);
        }
    }
}

/// Runs `op` until it succeeds, a permanent error surfaces, or the retry
/// budget is spent. Each backoff is simulated wait: it advances the clock
/// and is charged to `bucket` so TTI accounting stays truthful.
fn retry_loop<T>(
    policy: &RetryPolicy,
    rng: &mut DetRng,
    guard: &QueryGuard,
    clock: &mut SimClock,
    bucket: &mut SimDuration,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        // A query past its deadline (or already cancelled) stops retrying:
        // backoff waits count against the deadline like any other time.
        guard.check_deadline(clock.now())?;
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                let backoff = policy.backoff(attempt, rng);
                *bucket += backoff;
                clock.advance(backoff);
                miso_obs::count("store.retries", 1);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::logs::LogsConfig;
    use miso_lang::compile;

    fn tiny_system(budget_kib: u64) -> MultistoreSystem {
        let corpus = Corpus::generate(&LogsConfig::tiny());
        let budgets = Budgets::new(
            ByteSize::from_kib(budget_kib),
            ByteSize::from_kib(budget_kib),
            ByteSize::from_kib(budget_kib),
        )
        .with_discretization(ByteSize::from_kib(16));
        MultistoreSystem::new(
            &corpus,
            miso_lang::Catalog::standard(),
            UdfRegistry::new(),
            SystemConfig::paper_default(budgets),
        )
    }

    fn queries() -> Vec<WorkloadQuery> {
        let c = miso_lang::Catalog::standard();
        [
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city",
            "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS s FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city",
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city ORDER BY n DESC LIMIT 5",
            "SELECT f.city AS city, COUNT(*) AS n FROM foursquare f \
             WHERE f.likes > 2 GROUP BY f.city",
        ]
        .iter()
        .enumerate()
        .map(|(i, sql)| (format!("q{i}"), compile(sql, &c).unwrap()))
        .collect()
    }

    #[test]
    fn hv_only_runs_and_retains_nothing() {
        let mut sys = tiny_system(10_000);
        let result = sys.run_workload(Variant::HvOnly, &queries()).unwrap();
        assert_eq!(result.records.len(), 4);
        assert!(result.tti.hv_exe > SimDuration::ZERO);
        assert_eq!(result.tti.dw_exe, SimDuration::ZERO);
        assert!(sys.hv.view_names().is_empty());
        assert!(sys.catalog.is_empty());
    }

    #[test]
    fn hv_op_reuses_views_and_speeds_up_repeats() {
        let mut sys = tiny_system(100_000);
        let result = sys.run_workload(Variant::HvOp, &queries()).unwrap();
        assert!(
            !sys.hv.view_names().is_empty(),
            "opportunistic views retained"
        );
        // q2 (same prefix as q0/q1) should reuse a view and be much cheaper
        // than q0.
        let q0 = &result.records[0];
        let q2 = &result.records[2];
        assert!(!q2.used_views.is_empty(), "rewrite found a matching view");
        assert!(q2.hv < q0.hv, "view reuse must cut HV time");
    }

    #[test]
    fn ms_miso_reorganizes_and_accelerates() {
        let mut sys = tiny_system(100_000);
        let result = sys.run_workload(Variant::MsMiso, &queries()).unwrap();
        assert!(!result.reorgs.is_empty(), "reorg every 3 queries");
        assert!(result.tti.tune > SimDuration::ZERO);
        // After the reorg (before q3), beneficial views should be in DW.
        assert!(
            !sys.dw.view_names().is_empty(),
            "tuner moved views into DW: {:?}",
            result.reorgs
        );
    }

    #[test]
    fn dw_only_pays_etl_once_then_fast_queries() {
        let mut sys = tiny_system(1_000_000);
        let result = sys.run_workload(Variant::DwOnly, &queries()).unwrap();
        assert!(result.tti.etl > SimDuration::ZERO);
        assert!(
            result.tti.etl > result.tti.dw_exe * 10.0,
            "ETL dominates: {} vs {}",
            result.tti.etl,
            result.tti.dw_exe
        );
        assert_eq!(result.records.len(), 4);
        assert!(result.records.iter().all(|r| r.hv.is_zero()));
    }

    #[test]
    fn results_identical_across_variants() {
        // Every variant must compute the same answers.
        let qs = queries();
        let mut counts: Vec<Vec<u64>> = Vec::new();
        for variant in [
            Variant::HvOnly,
            Variant::DwOnly,
            Variant::MsBasic,
            Variant::HvOp,
            Variant::MsMiso,
        ] {
            let mut sys = tiny_system(100_000);
            let result = sys.run_workload(variant, &qs).unwrap();
            counts.push(result.records.iter().map(|r| r.result_rows).collect());
        }
        for other in &counts[1..] {
            assert_eq!(&counts[0], other);
        }
    }

    #[test]
    fn ms_basic_never_keeps_views() {
        let mut sys = tiny_system(100_000);
        sys.run_workload(Variant::MsBasic, &queries()).unwrap();
        assert!(sys.hv.view_names().is_empty());
        assert!(sys.dw.view_names().is_empty());
    }

    #[test]
    fn background_contention_slows_dw_side() {
        let corpus = Corpus::generate(&LogsConfig::tiny());
        let budgets = Budgets::new(
            ByteSize::from_kib(100_000),
            ByteSize::from_kib(100_000),
            ByteSize::from_kib(100_000),
        )
        .with_discretization(ByteSize::from_kib(16));
        let mut cfg = SystemConfig::paper_default(budgets);
        cfg.background = Some(BackgroundSim::paper_config(miso_dw::Resource::Io, 40));
        let mut sys = MultistoreSystem::new(
            &corpus,
            miso_lang::Catalog::standard(),
            UdfRegistry::new(),
            cfg,
        );
        let with_bg = sys.run_workload(Variant::MsMiso, &queries()).unwrap();
        assert!(!sys.background().unwrap().samples().is_empty());

        let mut sys2 = tiny_system(100_000);
        let without = sys2.run_workload(Variant::MsMiso, &queries()).unwrap();
        assert!(
            with_bg.tti_total() >= without.tti_total(),
            "contention can only slow the multistore workload"
        );
    }
}
