//! MISO core — the paper's contribution.
//!
//! Two halves:
//!
//! **The MISO tuner** (paper §4): [`knapsack`] implements the
//! multidimensional 0-1 knapsack DP of §4.4; [`tuner`] implements
//! Algorithm 1 (`MISO_TUNE`): interacting sets → sparsification → pack DW →
//! pack HV, under the view storage budgets `B_h`, `B_d` and the per-phase
//! transfer budget `B_t`.
//!
//! **The multistore system** (paper §3): [`system`] drives a query stream
//! through the two stores — optimizing each query against the current
//! design, executing split plans, migrating working sets, harvesting
//! opportunistic views, and periodically invoking a tuner. [`variants`]
//! configures the system as each of the paper's eight evaluated variants
//! (HV-ONLY, DW-ONLY, MS-BASIC, HV-OP, MS-LRU, MS-OFF, MS-MISO, MS-ORA);
//! [`metrics`] records the TTI breakdown (HV-EXE / DW-EXE / TRANSFER /
//! TUNE / ETL) and per-query store utilization behind every figure.
//!
//! [`audit`] adds the between-epoch integrity auditor: catalog↔store
//! invariants plus a budget-bounded checksum scrub feeding the
//! quarantine/repair loop in [`system`].

pub mod audit;
pub mod calibration;
pub mod etl;
pub mod knapsack;
pub mod maintenance;
pub mod metrics;
pub mod reorg;
pub mod system;
pub mod tuner;
pub mod variants;

pub use audit::{AuditConfig, AuditMode, AuditReport};
pub use calibration::{CalibrationAccumulator, CalibrationReport};
pub use knapsack::{m_knapsack, PackItem, PackResult};
pub use maintenance::{MaintAction, MaintDecision, MaintenancePolicy, MaintenanceReport};
pub use metrics::{ExperimentResult, QueryFailure, QueryRecord, TtiBreakdown};
pub use reorg::{JournalEntry, ReorgJournal, ReorgPlan};
pub use system::{GrowthConfig, GuardConfig, MultistoreSystem, SystemConfig};
pub use tuner::{MisoTuner, NewDesign, TunerConfig};
pub use variants::Variant;
