//! Crash-safe two-phase reorganization.
//!
//! The tuner's view movements are applied through a write-ahead journal:
//!
//! 1. **Intent** — the full movement plan is logged before anything moves.
//! 2. **Stage** — each view is *copied* to its destination store. HV→DW
//!    copies land in DW temp space (volatile); DW→HV copies are installed
//!    in HV under the final name (durable). Sources stay in place, so a
//!    crash during staging loses no view.
//! 3. **Commit** — one record makes the new design authoritative.
//! 4. **Apply** — staged copies are flipped into the design (DW temp
//!    promoted to permanent, sources dropped), one atomic step per view.
//! 5. **Done** — budget enforcement ran; the journal can be truncated.
//!
//! Recovery after a simulated crash (the `reorg.step` fail point): before
//! the commit record the reorganization **rolls back** — staging copies are
//! discarded and the old design is intact. At or after the commit record it
//! **replays** — staging is re-done where volatile copies were lost, and
//! the flip completes. Either way no view is lost and the stores converge
//! to a design consistent with the budgets.
//!
//! Crash points sit *between* steps (each step is atomic at simulation
//! granularity), which matches a process that can die between any two
//! journaled operations but whose individual store calls are atomic.

use std::collections::BTreeSet;

/// Upper bound on crash-replay rounds before the driver finishes the
/// reorganization with fault injection suppressed. This is a liveness
/// backstop for pathological plans (e.g. crash probability 1.0 after
/// commit), far above anything a realistic fault plan produces.
pub const MAX_REORG_RECOVERIES: u64 = 64;

/// The staging-copy name for a view being moved into DW temp space.
pub fn stage_name(view: &str) -> String {
    format!("reorg_stage_{view}")
}

/// One durable journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// The movement plan, logged before any data moves.
    Intent {
        /// Views to move HV → DW.
        to_dw: Vec<String>,
        /// Views to move DW → HV.
        to_hv: Vec<String>,
    },
    /// `view` has a staged copy at its destination.
    Staged {
        /// The view with a staged copy.
        view: String,
        /// Direction: `true` = HV → DW.
        to_dw: bool,
    },
    /// The point of no return: the new design is now authoritative.
    Commit,
    /// `view`'s flip completed (source dropped, copy in the design).
    Applied {
        /// The flipped view.
        view: String,
        /// Direction: `true` = HV → DW.
        to_dw: bool,
    },
    /// The reorganization finished (enforcement ran).
    Done,
}

/// An in-memory stand-in for the durable write-ahead log a real deployment
/// would keep on shared storage. It survives simulated crashes (which only
/// wipe DW temp space) and answers the recovery-time questions: committed?
/// staged? applied?
#[derive(Debug, Clone, Default)]
pub struct ReorgJournal {
    entries: Vec<JournalEntry>,
}

impl ReorgJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record (durable immediately, like an fsync'd WAL write).
    pub fn append(&mut self, entry: JournalEntry) {
        self.entries.push(entry);
    }

    /// All records, oldest first.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Whether any record exists (the intent was logged).
    pub fn started(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Whether the commit record was written.
    pub fn committed(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e, JournalEntry::Commit))
    }

    /// Whether the reorganization completed.
    pub fn done(&self) -> bool {
        self.entries.iter().any(|e| matches!(e, JournalEntry::Done))
    }

    /// Whether `view` has a staged-copy record.
    pub fn staged(&self, view: &str) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e, JournalEntry::Staged { view: v, .. } if v == view))
    }

    /// Whether `view`'s flip was applied.
    pub fn applied(&self, view: &str) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e, JournalEntry::Applied { view: v, .. } if v == view))
    }

    /// Views with a `Staged` record in the given direction.
    pub fn staged_views(&self, to_dw: bool) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                JournalEntry::Staged { view, to_dw: d } if *d == to_dw => Some(view.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// The movement plan derived from the design diff. Orders follow the
/// tuner's sorted (`BTreeSet`) iteration so charged costs are reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorgPlan {
    /// Views to copy HV → DW (new in the DW design).
    pub to_dw: Vec<String>,
    /// Views to copy DW → HV (new in the HV design, currently DW-resident).
    pub to_hv: Vec<String>,
}

impl ReorgPlan {
    /// Diffs the current placement against the tuner's new design.
    pub fn diff(
        current_hv: &BTreeSet<String>,
        current_dw: &BTreeSet<String>,
        new_hv: &BTreeSet<String>,
        new_dw: &BTreeSet<String>,
    ) -> Self {
        ReorgPlan {
            to_dw: new_dw
                .iter()
                .filter(|n| !current_dw.contains(*n))
                .cloned()
                .collect(),
            to_hv: new_hv
                .iter()
                .filter(|n| !current_hv.contains(*n) && current_dw.contains(*n))
                .cloned()
                .collect(),
        }
    }

    /// Whether nothing moves.
    pub fn is_empty(&self) -> bool {
        self.to_dw.is_empty() && self.to_hv.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn diff_orders_moves_and_skips_resident_views() {
        let plan = ReorgPlan::diff(
            &set(&["a", "b", "c"]),
            &set(&["d"]),
            &set(&["a", "d"]),
            &set(&["b", "c"]),
        );
        assert_eq!(plan.to_dw, vec!["b".to_string(), "c".to_string()]);
        assert_eq!(plan.to_hv, vec!["d".to_string()]);
        assert!(!plan.is_empty());

        let noop = ReorgPlan::diff(&set(&["a"]), &set(&["b"]), &set(&["a"]), &set(&["b"]));
        assert!(noop.is_empty());
    }

    #[test]
    fn to_hv_requires_a_dw_source() {
        // A view the new design wants in HV but no store holds cannot be
        // migrated; the diff ignores it (the tuner only packs known views).
        let plan = ReorgPlan::diff(&set(&[]), &set(&[]), &set(&["ghost"]), &set(&[]));
        assert!(plan.to_hv.is_empty());
    }

    #[test]
    fn journal_answers_recovery_questions() {
        let mut j = ReorgJournal::new();
        assert!(!j.started());
        j.append(JournalEntry::Intent {
            to_dw: vec!["v1".into()],
            to_hv: vec![],
        });
        assert!(j.started());
        assert!(!j.committed());
        j.append(JournalEntry::Staged {
            view: "v1".into(),
            to_dw: true,
        });
        assert!(j.staged("v1"));
        assert!(!j.staged("v2"));
        assert_eq!(j.staged_views(true), vec!["v1"]);
        assert!(j.staged_views(false).is_empty());
        j.append(JournalEntry::Commit);
        assert!(j.committed());
        assert!(!j.applied("v1"));
        j.append(JournalEntry::Applied {
            view: "v1".into(),
            to_dw: true,
        });
        assert!(j.applied("v1"));
        assert!(!j.done());
        j.append(JournalEntry::Done);
        assert!(j.done());
    }

    #[test]
    fn stage_names_are_prefixed() {
        assert_eq!(stage_name("v_abc"), "reorg_stage_v_abc");
    }
}
