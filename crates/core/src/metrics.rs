//! TTI metrics.
//!
//! The paper's primary metric is **time-to-insight**: "the cumulative time
//! of loading data, transferring data during query execution, tuning the
//! systems, and executing the queries" (§5.1), broken into HV-EXE, DW-EXE,
//! TRANSFER, TUNE, and ETL. Every figure in the evaluation is a projection
//! of the records collected here.

use miso_common::ids::QueryId;
use miso_common::{ByteSize, SimDuration, SimInstant};

/// The five TTI components of §5.1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TtiBreakdown {
    /// Cumulative query execution time in HV.
    pub hv_exe: SimDuration,
    /// Cumulative query execution time in DW.
    pub dw_exe: SimDuration,
    /// Cumulative working-set dump/transfer/load time during execution.
    pub transfer: SimDuration,
    /// Cumulative tuning time: design computation plus reorganization view
    /// movement (and any index creation in DW).
    pub tune: SimDuration,
    /// One-time up-front load (DW-ONLY only).
    pub etl: SimDuration,
}

impl TtiBreakdown {
    /// Total time-to-insight.
    pub fn total(&self) -> SimDuration {
        self.hv_exe + self.dw_exe + self.transfer + self.tune + self.etl
    }
}

/// Per-query measurements.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Stream position / identity.
    pub query: QueryId,
    /// Human label (e.g. `A1v2`).
    pub label: String,
    /// Time spent executing in HV.
    pub hv: SimDuration,
    /// Time spent executing in DW.
    pub dw: SimDuration,
    /// Working-set dump/transfer/load time.
    pub transfer: SimDuration,
    /// Result cardinality.
    pub result_rows: u64,
    /// Views the rewrite consumed.
    pub used_views: Vec<String>,
    /// Plan operators executed in HV.
    pub hv_ops: usize,
    /// Plan operators executed in DW.
    pub dw_ops: usize,
    /// Bytes shipped HV→DW during execution.
    pub bytes_transferred: ByteSize,
    /// Cumulative TTI at query completion (Fig 5a's y-axis).
    pub finished_at: SimInstant,
}

impl QueryRecord {
    /// Query execution time (excluding tuning/ETL, which are not
    /// per-query).
    pub fn exec_total(&self) -> SimDuration {
        self.hv + self.dw + self.transfer
    }

    /// Fraction of execution time spent in DW (Fig 6's ranking key).
    pub fn dw_utilization(&self) -> f64 {
        let total = self.exec_total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.dw.as_secs_f64() / total
        }
    }
}

/// A query the guard layer terminated (shed at admission, cancelled, past
/// its deadline, or over its memory budget) instead of completing. Failed
/// queries never contribute a [`QueryRecord`]; they are reported here so a
/// storm run can audit that every loss was classified, not silent.
#[derive(Debug, Clone)]
pub struct QueryFailure {
    /// Stream position / identity.
    pub query: QueryId,
    /// Human label (e.g. `A1v2`).
    pub label: String,
    /// Stable error tag (`MisoError::kind()`): `cancelled` or
    /// `resource_exhausted`.
    pub kind: &'static str,
    /// Human-readable error text.
    pub message: String,
    /// Whether the query was shed at admission (never executed) rather than
    /// killed mid-flight.
    pub shed: bool,
    /// For shed queries: how long a client should wait before retrying
    /// (the overload breaker's remaining cooldown).
    pub retry_after: Option<SimDuration>,
    /// When the failure was recorded.
    pub at: SimInstant,
    /// Owning tenant, when the query arrived through the serving layer
    /// (`None` on the serial single-client path).
    pub tenant: Option<String>,
    /// Client session id within the tenant, when served concurrently.
    pub session: Option<u64>,
}

/// One reorganization phase.
#[derive(Debug, Clone)]
pub struct ReorgRecord {
    /// When the phase started.
    pub at: SimInstant,
    /// Total phase duration (computation + movements).
    pub duration: SimDuration,
    /// Views moved into DW.
    pub moved_to_dw: Vec<String>,
    /// Views moved back into HV.
    pub moved_to_hv: Vec<String>,
    /// Views dropped from the design entirely.
    pub dropped: Vec<String>,
    /// Quarantined views recomputed (self-healed) by this phase.
    pub repaired: Vec<String>,
    /// Bytes moved between the stores.
    pub bytes_moved: ByteSize,
    /// Crash-recovery rounds this phase needed (0 in fault-free runs).
    pub recoveries: u64,
    /// Whether the phase rolled back (pre-commit crash): the old design
    /// stands and no views moved.
    pub rolled_back: bool,
}

/// Everything one experiment run produces.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResult {
    /// The variant that ran (display name).
    pub variant: String,
    /// Per-query records, in stream order.
    pub records: Vec<QueryRecord>,
    /// Reorganization phases.
    pub reorgs: Vec<ReorgRecord>,
    /// Accumulated TTI breakdown.
    pub tti: TtiBreakdown,
    /// Per-epoch predicted-vs-actual calibration reports (one per
    /// reorganization boundary plus one for the tail of the stream; empty
    /// for variants that never execute split plans).
    pub calibrations: Vec<crate::calibration::CalibrationReport>,
    /// Queries the guard layer terminated (always empty when guards are
    /// disabled).
    pub failures: Vec<QueryFailure>,
    /// Streaming-growth maintenance reports, one per ingested delta batch
    /// (empty unless `SystemConfig::growth` is set).
    pub maintenance: Vec<crate::maintenance::MaintenanceReport>,
}

impl ExperimentResult {
    /// Total TTI.
    pub fn tti_total(&self) -> SimDuration {
        self.tti.total()
    }

    /// Cumulative TTI after each completed query (Fig 5a series).
    pub fn cumulative_tti(&self) -> Vec<SimDuration> {
        self.records
            .iter()
            .map(|r| r.finished_at.elapsed_since_epoch())
            .collect()
    }

    /// Fraction of queries whose *execution time* falls under each bucket
    /// boundary (Fig 5b series). `bounds` are in seconds, ascending.
    pub fn exec_time_cdf(&self, bounds: &[f64]) -> Vec<f64> {
        let n = self.records.len().max(1) as f64;
        bounds
            .iter()
            .map(|&b| {
                self.records
                    .iter()
                    .filter(|r| r.exec_total().as_secs_f64() < b)
                    .count() as f64
                    / n
            })
            .collect()
    }

    /// Queries ranked by DW utilization, highest first (Fig 6's x-axis).
    pub fn by_dw_utilization(&self) -> Vec<&QueryRecord> {
        let mut refs: Vec<&QueryRecord> = self.records.iter().collect();
        refs.sort_by(|a, b| {
            b.dw_utilization()
                .partial_cmp(&a.dw_utilization())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        refs
    }

    /// Number of queries that spend the majority of execution time in DW
    /// (the headline counts of Fig 6: 2 / 9 / 14).
    pub fn dw_majority_queries(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.dw_utilization() > 0.5)
            .count()
    }

    /// HV:DW execution-second ratio over the top-`k` DW-utilization queries
    /// (the "for every second in DW, N seconds in HV" numbers of §5.2.2).
    pub fn hv_per_dw_second(&self, k: usize) -> f64 {
        let top = self.by_dw_utilization();
        let (mut hv, mut dw) = (0.0, 0.0);
        for r in top.iter().take(k) {
            hv += r.hv.as_secs_f64();
            dw += r.dw.as_secs_f64();
        }
        if dw == 0.0 {
            f64::INFINITY
        } else {
            hv / dw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &str, hv: u64, dw: u64, transfer: u64, at: u64) -> QueryRecord {
        QueryRecord {
            query: QueryId(0),
            label: label.into(),
            hv: SimDuration::from_secs(hv),
            dw: SimDuration::from_secs(dw),
            transfer: SimDuration::from_secs(transfer),
            result_rows: 1,
            used_views: vec![],
            hv_ops: 3,
            dw_ops: 1,
            bytes_transferred: ByteSize::ZERO,
            finished_at: SimInstant::at(SimDuration::from_secs(at)),
        }
    }

    #[test]
    fn breakdown_totals() {
        let tti = TtiBreakdown {
            hv_exe: SimDuration::from_secs(10),
            dw_exe: SimDuration::from_secs(2),
            transfer: SimDuration::from_secs(3),
            tune: SimDuration::from_secs(4),
            etl: SimDuration::from_secs(1),
        };
        assert_eq!(tti.total().as_secs(), 20);
    }

    #[test]
    fn dw_utilization_and_ranking() {
        let result = ExperimentResult {
            variant: "test".into(),
            records: vec![
                rec("a", 90, 10, 0, 100),
                rec("b", 10, 90, 0, 200),
                rec("c", 0, 0, 0, 200),
            ],
            ..Default::default()
        };
        let ranked = result.by_dw_utilization();
        assert_eq!(ranked[0].label, "b");
        assert_eq!(result.dw_majority_queries(), 1);
        assert_eq!(result.records[2].dw_utilization(), 0.0, "zero-time query");
    }

    #[test]
    fn exec_time_cdf_buckets() {
        let result = ExperimentResult {
            variant: "test".into(),
            records: vec![
                rec("a", 5, 0, 0, 5),
                rec("b", 50, 0, 0, 55),
                rec("c", 500, 0, 0, 555),
            ],
            ..Default::default()
        };
        let cdf = result.exec_time_cdf(&[10.0, 100.0, 1000.0]);
        assert_eq!(cdf, vec![1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn zero_exec_time_has_zero_utilization() {
        let r = rec("idle", 0, 0, 0, 1);
        assert_eq!(r.exec_total(), SimDuration::ZERO);
        assert_eq!(r.dw_utilization(), 0.0, "must not divide by zero");
    }

    #[test]
    fn exec_time_cdf_with_no_records() {
        let empty = ExperimentResult::default();
        let cdf = empty.exec_time_cdf(&[1.0, 10.0]);
        assert_eq!(cdf, vec![0.0, 0.0], "empty stream yields all-zero CDF");
        assert!(empty.cumulative_tti().is_empty());
        assert_eq!(empty.dw_majority_queries(), 0);
    }

    #[test]
    fn hv_per_dw_ratio() {
        let result = ExperimentResult {
            variant: "test".into(),
            records: vec![rec("a", 55, 1, 0, 56), rec("b", 55, 1, 0, 112)],
            ..Default::default()
        };
        assert_eq!(result.hv_per_dw_second(2), 55.0);
        let none = ExperimentResult {
            variant: "x".into(),
            records: vec![rec("a", 5, 0, 0, 5)],
            ..Default::default()
        };
        assert!(none.hv_per_dw_second(1).is_infinite());
    }

    #[test]
    fn cumulative_tti_is_finished_at() {
        let result = ExperimentResult {
            variant: "test".into(),
            records: vec![rec("a", 1, 0, 0, 10), rec("b", 1, 0, 0, 25)],
            ..Default::default()
        };
        let c = result.cumulative_tti();
        assert_eq!(c[0].as_secs(), 10);
        assert_eq!(c[1].as_secs(), 25);
    }
}
