//! The eight evaluated system variants of the paper's §5.

use std::fmt;

/// Which system configuration to run a workload under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Queries run entirely in Hive; no views (§5.1 HV-ONLY).
    HvOnly,
    /// One-time ETL of the relevant data into DW, then all queries in DW
    /// (§5.1 DW-ONLY).
    DwOnly,
    /// Multistore splits, no tuning, nothing retained (§5.1 MS-BASIC).
    MsBasic,
    /// HV retains opportunistic views under an LRU policy and rewrites over
    /// them; execution stays in HV (§5.1 HV-OP, the method of \[15\]).
    HvOp,
    /// Passive multistore tuning: opportunistic views LRU-retained in HV,
    /// transferred working sets LRU-retained in DW (§5.3 MS-LRU).
    MsLru,
    /// One-shot offline tuning with the whole workload known up-front
    /// (§5.3 MS-OFF).
    MsOff,
    /// Online MISO tuning (the paper's system, MS-MISO).
    MsMiso,
    /// MISO tuning with the *actual* future window instead of the decayed
    /// history (§5.3 MS-ORA, the oracle reference point).
    MsOra,
}

impl Variant {
    /// All variants, in the paper's presentation order.
    pub const ALL: [Variant; 8] = [
        Variant::HvOnly,
        Variant::DwOnly,
        Variant::MsBasic,
        Variant::HvOp,
        Variant::MsLru,
        Variant::MsOff,
        Variant::MsMiso,
        Variant::MsOra,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::HvOnly => "HV-ONLY",
            Variant::DwOnly => "DW-ONLY",
            Variant::MsBasic => "MS-BASIC",
            Variant::HvOp => "HV-OP",
            Variant::MsLru => "MS-LRU",
            Variant::MsOff => "MS-OFF",
            Variant::MsMiso => "MS-MISO",
            Variant::MsOra => "MS-ORA",
        }
    }

    /// Whether queries may split across both stores.
    pub fn is_multistore(&self) -> bool {
        !matches!(self, Variant::HvOnly | Variant::DwOnly | Variant::HvOp)
    }

    /// Whether HV retains opportunistic views between queries.
    pub fn retains_hv_views(&self) -> bool {
        matches!(
            self,
            Variant::HvOp | Variant::MsLru | Variant::MsMiso | Variant::MsOra
        )
    }

    /// Whether LRU eviction (rather than a tuner) bounds retained views.
    pub fn lru_managed(&self) -> bool {
        matches!(self, Variant::HvOp | Variant::MsLru)
    }

    /// Whether the MISO tuner runs reorganization phases.
    pub fn uses_miso_tuner(&self) -> bool {
        matches!(self, Variant::MsMiso | Variant::MsOra)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Variant::MsMiso.name(), "MS-MISO");
        assert_eq!(Variant::HvOnly.to_string(), "HV-ONLY");
    }

    #[test]
    fn flags_are_consistent() {
        assert!(!Variant::HvOnly.is_multistore());
        assert!(!Variant::HvOp.is_multistore());
        assert!(Variant::MsBasic.is_multistore());
        assert!(!Variant::MsBasic.retains_hv_views());
        assert!(Variant::HvOp.retains_hv_views() && Variant::HvOp.lru_managed());
        assert!(Variant::MsMiso.uses_miso_tuner() && !Variant::MsMiso.lru_managed());
        assert!(Variant::MsOra.uses_miso_tuner());
        assert_eq!(Variant::ALL.len(), 8);
    }
}
