//! The multidimensional 0-1 knapsack (M-KNAPSACK) of paper §4.4.
//!
//! Each packing has two dimensions: a storage budget (`B_d` or `B_h`) and
//! the reorganization transfer budget (`B_t`). An item consumes transfer
//! capacity only if placing it requires moving it (paper Case 1 vs Case 2):
//! packing DW, HV-resident views consume `B_t`; packing HV, DW-evicted views
//! consume what remains of `B_t`.
//!
//! Budgets are discretized at factor `d` (1 GiB in the paper, configurable
//! here); the DP is `O(|V| · B_s/d · B_t/d)` exactly as the paper states.

/// One independent packable item (a view, or a positively-interacting view
/// group merged by sparsification).
#[derive(Debug, Clone, PartialEq)]
pub struct PackItem {
    /// Canonical view names contained in this item.
    pub views: Vec<String>,
    /// Storage consumption in discretized units (rounded up).
    pub storage_units: u64,
    /// Transfer consumption in discretized units **if the item must move**
    /// into the target store (member views already resident contribute 0).
    pub transfer_units: u64,
    /// Decay-weighted benefit (`bn(v)`).
    pub benefit: f64,
}

/// The result of one M-KNAPSACK packing.
#[derive(Debug, Clone, PartialEq)]
pub struct PackResult {
    /// Indexes (into the input item slice) of chosen items.
    pub chosen: Vec<usize>,
    /// Total benefit of the chosen items.
    pub benefit: f64,
    /// Storage units consumed.
    pub storage_used: u64,
    /// Transfer units consumed.
    pub transfer_used: u64,
}

/// Solves the two-dimensional 0-1 knapsack by dynamic programming.
///
/// Implements the recurrence of §4.4.1: an item is skipped if it exceeds the
/// remaining transfer budget (when it needs transfer) or the remaining
/// storage budget; otherwise the DP takes the max of skipping and packing.
pub fn m_knapsack(items: &[PackItem], storage_budget: u64, transfer_budget: u64) -> PackResult {
    let mut obs = miso_obs::span("knapsack.pack");
    let s_dim = (storage_budget + 1) as usize;
    let t_dim = (transfer_budget + 1) as usize;
    let cells = s_dim * t_dim;
    let mut dp_cells = 0u64;
    // dp[s * t_dim + t] = best benefit with s storage and t transfer left
    // after considering a prefix of items; `take` records decisions for
    // backtracking.
    let mut dp = vec![0.0f64; cells];
    let mut take = vec![false; items.len() * cells];

    for (k, item) in items.iter().enumerate() {
        // In-place 0-1 knapsack: iterate capacities downward.
        let su = item.storage_units as usize;
        let tu = item.transfer_units as usize;
        if su >= s_dim || tu >= t_dim {
            continue; // can never fit
        }
        dp_cells += ((s_dim - su) * (t_dim - tu)) as u64;
        for s in (su..s_dim).rev() {
            for t in (tu..t_dim).rev() {
                let with = dp[(s - su) * t_dim + (t - tu)] + item.benefit;
                let without = dp[s * t_dim + t];
                if with > without {
                    dp[s * t_dim + t] = with;
                    take[k * cells + s * t_dim + t] = true;
                }
            }
        }
        // `take` for item k is only valid at the states where packing k
        // improved; backtracking below handles the rest.
    }

    // Backtrack from the full-budget cell. Because the in-place update
    // overwrites states across items, recompute decisions by replaying items
    // in reverse with the recorded flags.
    let mut chosen = Vec::new();
    let mut s = storage_budget as usize;
    let mut t = transfer_budget as usize;
    for k in (0..items.len()).rev() {
        if take[k * cells + s * t_dim + t] {
            chosen.push(k);
            s -= items[k].storage_units as usize;
            t -= items[k].transfer_units as usize;
        }
    }
    chosen.reverse();
    // The in-place DP with per-item take flags can over-approximate when a
    // later state was improved by an earlier item snapshot; recompute the
    // achieved totals from the chosen set for exactness.
    let benefit: f64 = chosen.iter().map(|&k| items[k].benefit).sum();
    let storage_used: u64 = chosen.iter().map(|&k| items[k].storage_units).sum();
    let transfer_used: u64 = chosen.iter().map(|&k| items[k].transfer_units).sum();
    debug_assert!(storage_used <= storage_budget);
    debug_assert!(transfer_used <= transfer_budget);
    miso_obs::count("knapsack.dp_cells", dp_cells);
    if obs.is_active() {
        obs.push_field("items", miso_obs::FieldValue::U64(items.len() as u64));
        obs.push_field("chosen", miso_obs::FieldValue::U64(chosen.len() as u64));
        obs.push_field("dp_cells", miso_obs::FieldValue::U64(dp_cells));
        obs.push_field("benefit", miso_obs::FieldValue::F64(benefit));
        miso_obs::observe("knapsack.items", items.len() as u64);
    }
    PackResult {
        chosen,
        benefit,
        storage_used,
        transfer_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(name: &str, storage: u64, transfer: u64, benefit: f64) -> PackItem {
        PackItem {
            views: vec![name.to_string()],
            storage_units: storage,
            transfer_units: transfer,
            benefit,
        }
    }

    #[test]
    fn empty_inputs() {
        let r = m_knapsack(&[], 10, 10);
        assert!(r.chosen.is_empty());
        assert_eq!(r.benefit, 0.0);
        let r2 = m_knapsack(&[item("a", 1, 1, 5.0)], 0, 0);
        assert!(r2.chosen.is_empty());
    }

    #[test]
    fn picks_best_single_dimension() {
        // Classic knapsack: capacity 5; items (3, $6), (3, $5), (2, $5).
        let items = vec![
            item("a", 3, 0, 6.0),
            item("b", 3, 0, 5.0),
            item("c", 2, 0, 5.0),
        ];
        let r = m_knapsack(&items, 5, 100);
        assert_eq!(r.benefit, 11.0);
        assert_eq!(r.chosen, vec![0, 2]);
        assert_eq!(r.storage_used, 5);
    }

    #[test]
    fn transfer_budget_constrains() {
        // Both items fit in storage but only one transfer fits.
        let items = vec![item("a", 1, 3, 10.0), item("b", 1, 3, 9.0)];
        let r = m_knapsack(&items, 10, 3);
        assert_eq!(r.chosen, vec![0]);
        assert_eq!(r.transfer_used, 3);
    }

    #[test]
    fn resident_items_skip_transfer_budget() {
        // "b" is already resident (transfer 0) so both fit despite B_t = 3.
        let items = vec![item("a", 1, 3, 10.0), item("b", 1, 0, 9.0)];
        let r = m_knapsack(&items, 10, 3);
        assert_eq!(r.chosen, vec![0, 1]);
        assert_eq!(r.benefit, 19.0);
        assert_eq!(r.transfer_used, 3);
    }

    #[test]
    fn oversized_items_are_skipped() {
        let items = vec![item("big", 100, 0, 1000.0), item("ok", 1, 0, 1.0)];
        let r = m_knapsack(&items, 10, 10);
        assert_eq!(r.chosen, vec![1]);
    }

    #[test]
    fn two_dimensional_tradeoff() {
        // Storage 4, transfer 4.
        // a: s2 t2 $10; b: s2 t2 $10; c: s4 t0 $15.
        // {a,b} = $20 uses (4,4); {c} = $15; {a,c}/{b,c} don't fit storage.
        let items = vec![
            item("a", 2, 2, 10.0),
            item("b", 2, 2, 10.0),
            item("c", 4, 0, 15.0),
        ];
        let r = m_knapsack(&items, 4, 4);
        assert_eq!(r.benefit, 20.0);
        assert_eq!(r.chosen, vec![0, 1]);
    }

    #[test]
    fn exhaustive_cross_check_small_instances() {
        // Brute-force all subsets and compare optimal benefit.
        let items = vec![
            item("a", 2, 1, 7.0),
            item("b", 3, 2, 9.0),
            item("c", 1, 1, 3.0),
            item("d", 4, 0, 11.0),
            item("e", 2, 3, 8.0),
        ];
        for (sb, tb) in [(5u64, 3u64), (6, 4), (10, 2), (3, 0), (0, 5), (12, 12)] {
            let dp = m_knapsack(&items, sb, tb);
            let mut best = 0.0f64;
            for mask in 0u32..(1 << items.len()) {
                let mut s = 0;
                let mut t = 0;
                let mut b = 0.0;
                for (i, it) in items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        s += it.storage_units;
                        t += it.transfer_units;
                        b += it.benefit;
                    }
                }
                if s <= sb && t <= tb && b > best {
                    best = b;
                }
            }
            assert_eq!(dp.benefit, best, "budgets ({sb},{tb})");
        }
    }

    #[test]
    fn zero_size_items_always_pack_if_beneficial() {
        let items = vec![item("free", 0, 0, 1.0)];
        let r = m_knapsack(&items, 0, 0);
        assert_eq!(r.chosen, vec![0]);
    }
}
