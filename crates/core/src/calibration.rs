//! Predicted-vs-actual cost drift tracking (the feedback half of miso-xray).
//!
//! Every split execution compares the optimizer's [`CostBreakdown`]
//! prediction with the cost the stores actually charged. Both sides are
//! *simulated* durations — the "actual" is computed by the same cost models
//! over the **real executed sizes** instead of the optimizer's estimates —
//! so drift measures exactly the component the tuner can get wrong:
//! cardinality and size estimation error. That also keeps every number here
//! deterministic: no wall clocks, no thread-count sensitivity.
//!
//! The accumulator aggregates per store (HV / transfer / DW) and per
//! operator class (estimated vs actual output rows) across an epoch;
//! [`CalibrationAccumulator::epoch_report`] drains it into a
//! [`CalibrationReport`] at each reorganization boundary. The live ratios
//! are exported as `xray.cost_drift_{hv,dw,transfer}` gauges.
//!
//! When `SystemConfig::calibrate_costs` is on (default **off**), the system
//! feeds each epoch's fitted per-store scale factor back into the cost
//! models. With the flag off the models are never touched, so planning,
//! tuning, and every design decision are byte-identical to a build without
//! this module — the design-identity tests in `tests/xray.rs` pin that.

use miso_common::SimDuration;
use miso_data::Value;
use miso_optimizer::CostBreakdown;
use miso_plan::Operator;
use std::collections::BTreeMap;

/// Stable class name for an operator (drift is aggregated per class, not
/// per instance).
pub fn op_class(op: &Operator) -> &'static str {
    match op {
        Operator::ScanLog { .. } => "scan_log",
        Operator::ScanView { .. } => "scan_view",
        Operator::Filter { .. } => "filter",
        Operator::Project { .. } => "project",
        Operator::Join { .. } => "join",
        Operator::Aggregate { .. } => "aggregate",
        Operator::Udf { .. } => "udf",
        Operator::Sort { .. } => "sort",
        Operator::Limit { .. } => "limit",
    }
}

/// Accumulated (predicted, actual) mass for one store component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreDrift {
    /// Summed predicted seconds.
    pub pred_s: f64,
    /// Summed actual (simulated) seconds.
    pub act_s: f64,
    /// Number of queries that contributed.
    pub samples: u64,
}

impl StoreDrift {
    fn record(&mut self, pred: SimDuration, act: SimDuration) {
        self.pred_s += pred.as_secs_f64();
        self.act_s += act.as_secs_f64();
        self.samples += 1;
    }

    /// actual/predicted ratio; `1.0` (perfectly calibrated) when there is
    /// no predicted mass to compare against.
    pub fn ratio(&self) -> f64 {
        if self.pred_s > 0.0 {
            self.act_s / self.pred_s
        } else {
            1.0
        }
    }
}

/// Accumulated cardinality drift for one operator class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassDrift {
    /// Summed estimated output rows.
    pub est_rows: f64,
    /// Summed actual output rows.
    pub act_rows: u64,
    /// Operator instances that contributed.
    pub samples: u64,
}

impl ClassDrift {
    /// actual/estimated row ratio; `1.0` when nothing was estimated.
    pub fn ratio(&self) -> f64 {
        if self.est_rows > 0.0 {
            self.act_rows as f64 / self.est_rows
        } else {
            1.0
        }
    }
}

/// Per-epoch drift accumulator (lives on the system, drained each reorg).
#[derive(Debug, Clone, Default)]
pub struct CalibrationAccumulator {
    hv: StoreDrift,
    transfer: StoreDrift,
    dw: StoreDrift,
    classes: BTreeMap<&'static str, ClassDrift>,
}

impl CalibrationAccumulator {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed query's store-level (predicted, actual) pair
    /// and refreshes the `xray.cost_drift_*` gauges.
    pub fn record_query(&mut self, predicted: &CostBreakdown, actual: &CostBreakdown) {
        self.hv.record(predicted.hv, actual.hv);
        self.transfer.record(predicted.transfer, actual.transfer);
        self.dw.record(predicted.dw, actual.dw);
        miso_obs::gauge("xray.cost_drift_hv", self.hv.ratio());
        miso_obs::gauge("xray.cost_drift_transfer", self.transfer.ratio());
        miso_obs::gauge("xray.cost_drift_dw", self.dw.ratio());
    }

    /// Records one operator instance's estimated vs actual output rows.
    pub fn record_rows(&mut self, class: &'static str, est_rows: f64, act_rows: u64) {
        let c = self.classes.entry(class).or_default();
        c.est_rows += est_rows;
        c.act_rows += act_rows;
        c.samples += 1;
    }

    /// Current store-level drift (hv, transfer, dw) without draining.
    pub fn store_drift(&self) -> (StoreDrift, StoreDrift, StoreDrift) {
        (self.hv, self.transfer, self.dw)
    }

    /// Drains the epoch's accumulation into a report.
    pub fn epoch_report(&mut self, epoch: usize) -> CalibrationReport {
        let report = CalibrationReport {
            epoch,
            hv: self.hv,
            transfer: self.transfer,
            dw: self.dw,
            classes: self
                .classes
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        };
        *self = CalibrationAccumulator::new();
        report
    }
}

/// One epoch's calibration summary.
#[derive(Debug, Clone, Default)]
pub struct CalibrationReport {
    /// Reorganization epoch index (queries-so-far / reorg_every).
    pub epoch: usize,
    /// HV execution drift.
    pub hv: StoreDrift,
    /// Dump+wire+load drift.
    pub transfer: StoreDrift,
    /// DW execution drift.
    pub dw: StoreDrift,
    /// Cardinality drift per operator class, sorted by class name.
    pub classes: Vec<(String, ClassDrift)>,
}

impl CalibrationReport {
    /// Fitted per-store scale factor: the actual/predicted ratio clamped to
    /// `[0.5, 2.0]` so one bad epoch can never swing the models by more
    /// than 2× (and repeated epochs converge geometrically). Returns `1.0`
    /// for components that saw no traffic.
    pub fn scale(&self, d: &StoreDrift) -> f64 {
        if d.samples == 0 {
            1.0
        } else {
            d.ratio().clamp(0.5, 2.0)
        }
    }

    /// JSON form for bench reports.
    pub fn to_value(&self) -> Value {
        let store = |d: &StoreDrift| {
            Value::object(vec![
                ("pred_s".into(), Value::Float(d.pred_s)),
                ("act_s".into(), Value::Float(d.act_s)),
                ("samples".into(), Value::Int(d.samples as i64)),
                ("ratio".into(), Value::Float(d.ratio())),
            ])
        };
        let classes = self
            .classes
            .iter()
            .map(|(name, c)| {
                Value::object(vec![
                    ("class".into(), Value::str(name)),
                    ("est_rows".into(), Value::Float(c.est_rows)),
                    ("act_rows".into(), Value::Int(c.act_rows as i64)),
                    ("samples".into(), Value::Int(c.samples as i64)),
                    ("ratio".into(), Value::Float(c.ratio())),
                ])
            })
            .collect();
        Value::object(vec![
            ("epoch".into(), Value::Int(self.epoch as i64)),
            ("hv".into(), store(&self.hv)),
            ("transfer".into(), store(&self.transfer)),
            ("dw".into(), store(&self.dw)),
            ("classes".into(), Value::Array(classes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(hv: f64, transfer: f64, dw: f64) -> CostBreakdown {
        CostBreakdown {
            hv: SimDuration::from_secs_f64(hv),
            transfer: SimDuration::from_secs_f64(transfer),
            dw: SimDuration::from_secs_f64(dw),
        }
    }

    #[test]
    fn ratios_track_accumulated_mass() {
        let mut acc = CalibrationAccumulator::new();
        acc.record_query(&bd(100.0, 10.0, 1.0), &bd(150.0, 10.0, 2.0));
        acc.record_query(&bd(100.0, 0.0, 1.0), &bd(150.0, 0.0, 2.0));
        let (hv, tr, dw) = acc.store_drift();
        assert!((hv.ratio() - 1.5).abs() < 1e-9);
        assert!((tr.ratio() - 1.0).abs() < 1e-9);
        assert!((dw.ratio() - 2.0).abs() < 1e-9);
        assert_eq!(hv.samples, 2);
    }

    #[test]
    fn empty_components_report_unit_ratio() {
        let d = StoreDrift::default();
        assert_eq!(d.ratio(), 1.0);
        let report = CalibrationAccumulator::new().epoch_report(0);
        assert_eq!(report.scale(&report.hv), 1.0);
    }

    #[test]
    fn epoch_report_drains() {
        let mut acc = CalibrationAccumulator::new();
        acc.record_query(&bd(1.0, 1.0, 1.0), &bd(2.0, 2.0, 2.0));
        acc.record_rows("filter", 10.0, 5);
        let report = acc.epoch_report(3);
        assert_eq!(report.epoch, 3);
        assert_eq!(report.hv.samples, 1);
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.classes[0].0, "filter");
        assert!((report.classes[0].1.ratio() - 0.5).abs() < 1e-9);
        let (hv, _, _) = acc.store_drift();
        assert_eq!(hv.samples, 0, "drained");
    }

    #[test]
    fn scale_is_clamped() {
        let mut acc = CalibrationAccumulator::new();
        acc.record_query(&bd(1.0, 1.0, 1.0), &bd(100.0, 0.1, 1.0));
        let report = acc.epoch_report(0);
        assert_eq!(report.scale(&report.hv), 2.0);
        assert_eq!(report.scale(&report.transfer), 0.5);
        assert_eq!(report.scale(&report.dw), 1.0);
    }

    #[test]
    fn report_json_round_trips() {
        let mut acc = CalibrationAccumulator::new();
        acc.record_query(&bd(10.0, 1.0, 0.5), &bd(12.0, 1.0, 0.5));
        acc.record_rows("join", 100.0, 80);
        let v = acc.epoch_report(1).to_value();
        let text = miso_data::json::to_json(&v);
        let back = miso_data::json::parse_json(&text).unwrap();
        assert_eq!(back.get_field("epoch"), Some(&Value::Int(1)));
        assert!(back.get_field("hv").unwrap().get_field("ratio").is_some());
    }
}
