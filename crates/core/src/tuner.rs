//! The MISO tuner — Algorithm 1 of the paper.
//!
//! ```text
//! function MISO_TUNE(⟨Vh, Vd⟩, W, Bh, Bd, Bt)
//!     V       ← Vh ∪ Vd
//!     P       ← COMPUTE-INTERACTING-SETS(V)
//!     Vcands  ← SPARSIFY-SETS(P)
//!     Vd_new  ← M-KNAPSACK(Vcands, Bd, Bt)
//!     Bt_rem  ← Bt − Σ sz(v) for v ∈ Vh ∩ Vd_new
//!     Vh_new  ← M-KNAPSACK(Vcands − Vd_new, Bh, Bt_rem)
//!     return ⟨Vh_new, Vd_new⟩
//! ```
//!
//! DW is packed first ("it can offer superior execution performance when the
//! right views are present"); whatever transfer budget remains pays for
//! moving DW-evicted views back to HV; `V_h ∩ V_d = ∅` by construction.
//!
//! Benefits are probed through the multistore optimizer's what-if mode,
//! decay-weighted over the recent history window (see `miso_views`).

use crate::knapsack::{m_knapsack, PackItem};
use miso_common::{Budgets, ByteSize};
use miso_dw::DwCostModel;
use miso_hv::HvCostModel;
use miso_optimizer::cost::TransferModel;
use miso_optimizer::optimize::{what_if_cost, Design, OptimizerEnv};
use miso_plan::estimate::MapStats;
use miso_plan::fingerprint::{fingerprint_plan, fnv1a_str, fnv1a_words, parse_view_fingerprint};
use miso_plan::LogicalPlan;
use miso_views::{analyze_candidates, decay_weights, AnalysisConfig, ViewCatalog, ViewInfo};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

/// Tuner parameters.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// View storage and transfer budgets (with discretization).
    pub budgets: Budgets,
    /// History window length in queries (paper experiments: 6).
    pub history_len: usize,
    /// Epoch length in queries for benefit decay (paper experiments: 3).
    pub epoch_len: usize,
    /// Per-epoch decay factor.
    pub decay: f64,
    /// doi significance threshold (simulated seconds).
    pub doi_threshold: f64,
}

impl TunerConfig {
    /// The paper's experiment settings with the given budgets.
    pub fn paper_default(budgets: Budgets) -> Self {
        TunerConfig {
            budgets,
            history_len: 6,
            epoch_len: 3,
            decay: 0.5,
            doi_threshold: 1.0,
        }
    }
}

/// The tuner's output: the new multistore design `M_new = ⟨V_h, V_d⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewDesign {
    /// Views that should reside in HV.
    pub hv: BTreeSet<String>,
    /// Views that should reside in DW.
    pub dw: BTreeSet<String>,
}

/// Chooses a discretization unit keeping a DP dimension small.
fn effective_unit(base: ByteSize, budget: ByteSize) -> ByteSize {
    const MAX_UNITS: u64 = 128;
    let needed = budget.as_bytes().div_ceil(MAX_UNITS).max(1);
    if base.as_bytes() >= needed {
        base
    } else {
        ByteSize::from_bytes(needed)
    }
}

/// Whether `MISO_TUNER_DEBUG` is set — read once per process (one
/// `OnceLock` load per `tune()` call, matching the chaos/integrity gates).
fn tuner_debug() -> bool {
    static DEBUG: OnceLock<bool> = OnceLock::new();
    *DEBUG.get_or_init(|| std::env::var_os("MISO_TUNER_DEBUG").is_some())
}

/// Cross-epoch memo of what-if probe results.
///
/// Keys are `(plan fingerprint, view-set digest)` — both stable semantic
/// identities (`miso_plan::fingerprint`), so a probe cached in one epoch
/// serves every later epoch whose sliding window still contains the same
/// query, regardless of how the candidate universe was renumbered. The
/// `stamp` folds every input a probe's value depends on (stats, catalog,
/// cost models, transfer model); when any of them changes the whole memo is
/// flushed before use, so a stale cost can never be served.
#[derive(Debug, Default)]
struct WhatIfCache {
    /// Digest of the probe-relevant tuner inputs the memo was filled under.
    stamp: u64,
    /// `(plan fingerprint, view-set digest) → what-if cost (secs)`.
    costs: HashMap<(u64, u64), f64>,
}

/// The MISO tuner.
///
/// Cloning shares the cross-epoch what-if cache (it is a memo of pure
/// probe results, so sharing is always sound).
#[derive(Debug, Clone)]
pub struct MisoTuner {
    /// Configuration.
    pub config: TunerConfig,
    /// Cross-epoch what-if memo, shared across clones.
    whatif: Arc<Mutex<WhatIfCache>>,
    /// Master switch for the cross-epoch memo (the per-epoch memo inside
    /// `analyze_candidates` is always on).
    cache_enabled: bool,
}

impl MisoTuner {
    /// Creates a tuner (cross-epoch what-if caching on).
    pub fn new(config: TunerConfig) -> Self {
        MisoTuner {
            config,
            whatif: Arc::new(Mutex::new(WhatIfCache::default())),
            cache_enabled: true,
        }
    }

    /// Enables or disables the cross-epoch what-if cache (builder style).
    /// The serial baseline of `tunerbench` and the equivalence tests use
    /// this to compare cached and uncached tuning.
    pub fn with_whatif_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        if !enabled {
            self.whatif.lock().unwrap().costs.clear();
        }
        self
    }

    /// Number of cross-epoch cached probe results (for tests and benches).
    pub fn whatif_cache_len(&self) -> usize {
        self.whatif.lock().unwrap().costs.len()
    }

    /// Computes a new multistore design.
    ///
    /// * `current_hv`, `current_dw` — the views presently in each store;
    /// * `catalog` — metadata (sizes) for every candidate view;
    /// * `history` — the recent query window `W` (raw, un-rewritten plans),
    ///   oldest first;
    /// * `stats` — true log/view sizes for what-if costing;
    /// * cost models — shared with the execution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn tune(
        &self,
        current_hv: &BTreeSet<String>,
        current_dw: &BTreeSet<String>,
        catalog: &ViewCatalog,
        history: &[LogicalPlan],
        stats: &MapStats,
        hv_cost: &HvCostModel,
        dw_cost: &DwCostModel,
        transfer: &TransferModel,
    ) -> NewDesign {
        self.tune_with_maintenance(
            current_hv,
            current_dw,
            catalog,
            history,
            stats,
            hv_cost,
            dw_cost,
            transfer,
            &HashMap::new(),
        )
    }

    /// [`MisoTuner::tune`], with a per-view *maintenance cost* term
    /// (simulated seconds per history window, estimated by the caller from
    /// its growth schedule). Keeping a view is only worth its benefit
    /// minus what it will cost to keep current, so each candidate item's
    /// benefit is charged the summed maintenance cost of its views before
    /// the knapsack phases — delta-maintainable views (cheap upkeep)
    /// thereby out-compete full-recompute views of equal query benefit.
    /// An empty map reproduces `tune` exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn tune_with_maintenance(
        &self,
        current_hv: &BTreeSet<String>,
        current_dw: &BTreeSet<String>,
        catalog: &ViewCatalog,
        history: &[LogicalPlan],
        stats: &MapStats,
        hv_cost: &HvCostModel,
        dw_cost: &DwCostModel,
        transfer: &TransferModel,
        maint_cost: &HashMap<String, f64>,
    ) -> NewDesign {
        let mut obs = miso_obs::span("tuner.tune");
        let budgets = &self.config.budgets;
        // Per-dimension discretization: at least the configured unit, but
        // coarse enough to keep each DP dimension ≤ MAX_UNITS cells (the
        // paper's d = 1 GB plays the same role against TB-scale budgets).
        let dw_unit = effective_unit(budgets.discretization, budgets.dw_storage);
        let hv_unit = effective_unit(budgets.discretization, budgets.hv_storage);
        let tu_unit = effective_unit(budgets.discretization, budgets.transfer);

        // V = Vh ∪ Vd, with sizes from the catalog.
        let mut names: Vec<String> = current_hv.union(current_dw).cloned().collect();
        names.sort();
        names.retain(|n| catalog.contains(n));
        if names.is_empty() || history.is_empty() {
            return NewDesign {
                hv: current_hv.clone(),
                dw: current_dw.clone(),
            };
        }
        let infos: Vec<ViewInfo> = names
            .iter()
            .map(|n| ViewInfo {
                name: n.clone(),
                size: catalog.get(n).unwrap().size,
            })
            .collect();

        // Decay weights over the history window.
        let window: Vec<&LogicalPlan> = history
            .iter()
            .rev()
            .take(self.config.history_len)
            .rev()
            .collect();
        let weights = decay_weights(window.len(), self.config.epoch_len, self.config.decay);

        // What-if probe: hypothetical design with the subset available in
        // both stores (a view's benefit is dominated by its best placement;
        // the knapsack phases decide the actual store).
        let env = OptimizerEnv {
            stats,
            hv: hv_cost,
            dw: dw_cost,
            transfer,
            catalog: Some(catalog),
        };
        // Cross-epoch memo: flush if any probe-relevant input changed, then
        // serve repeat probes (the sliding window advances by a few queries
        // per epoch, so most of it was already probed last epoch).
        let cache_enabled = self.cache_enabled;
        if cache_enabled {
            let stamp = inputs_stamp(stats, catalog, hv_cost, dw_cost, transfer);
            let mut cache = self.whatif.lock().unwrap();
            if cache.stamp != stamp {
                cache.costs.clear();
                cache.stamp = stamp;
            }
        }
        let plan_fps: Vec<u64> = window.iter().map(|p| fingerprint_plan(p).0).collect();
        let whatif = &self.whatif;
        let cost_fn = |q: usize, set: &BTreeSet<String>| -> f64 {
            miso_obs::count("tuner.whatif_calls", 1);
            let key = (plan_fps[q], view_set_digest(set));
            if cache_enabled {
                if let Some(&v) = whatif.lock().unwrap().costs.get(&key) {
                    miso_obs::count("tuner.whatif_cache_hits", 1);
                    return v;
                }
            }
            let design = Design {
                hv_views: set.iter().cloned().collect(),
                dw_views: set.iter().cloned().collect(),
            };
            let v = what_if_cost(window[q], &design, &env).as_secs_f64();
            if cache_enabled {
                whatif.lock().unwrap().costs.insert(key, v);
            }
            v
        };
        let analysis_cfg = AnalysisConfig {
            doi_threshold: self.config.doi_threshold,
            max_part_size: Some(4),
        };
        let items = analyze_candidates(&infos, &weights, &cost_fn, &analysis_cfg);
        if tuner_debug() {
            eprintln!(
                "[tuner] candidates={} -> items={}",
                infos.len(),
                items.len()
            );
            for item in &items {
                eprintln!(
                    "[tuner]   item {:?} size={} benefit={:.1}",
                    item.views, item.size, item.benefit
                );
            }
        }

        // Phase 1: pack DW. HV-resident members consume B_t (Case 1).
        let size_of =
            |v: &str| -> ByteSize { catalog.get(v).map(|d| d.size).unwrap_or(ByteSize::ZERO) };
        // Charge each item's benefit with the maintenance cost of keeping
        // its views current over the window. The `> 0.0` guard keeps the
        // no-growth path bit-identical (no float round-trip at all).
        let charged = |views: &BTreeSet<String>, benefit: f64| -> f64 {
            let penalty: f64 = views
                .iter()
                .map(|v| maint_cost.get(v).copied().unwrap_or(0.0))
                .sum();
            if penalty > 0.0 {
                (benefit - penalty).max(0.0)
            } else {
                benefit
            }
        };
        let dw_items: Vec<PackItem> = items
            .iter()
            .map(|item| {
                let storage: ByteSize = item.views.iter().map(|v| size_of(v)).sum();
                let transfer_bytes: ByteSize = item
                    .views
                    .iter()
                    .filter(|v| !current_dw.contains(*v))
                    .map(|v| size_of(v))
                    .sum();
                PackItem {
                    views: item.views.iter().cloned().collect(),
                    storage_units: storage.units_ceil(dw_unit),
                    transfer_units: transfer_bytes.units_ceil(tu_unit),
                    benefit: charged(&item.views, item.benefit),
                }
            })
            .collect();
        let dw_pack = m_knapsack(
            &dw_items,
            budgets.dw_storage.as_bytes() / dw_unit.as_bytes(),
            budgets.transfer.as_bytes() / tu_unit.as_bytes(),
        );
        let dw_new: BTreeSet<String> = dw_pack
            .chosen
            .iter()
            .flat_map(|&k| dw_items[k].views.iter().cloned())
            .collect();

        // Remaining transfer budget after phase 1 (exact bytes consumed by
        // views that actually move HV→DW).
        let moved_to_dw: ByteSize = dw_new
            .iter()
            .filter(|v| !current_dw.contains(*v))
            .map(|v| size_of(v))
            .sum();
        let bt_rem_units = (budgets.transfer.as_bytes() / tu_unit.as_bytes())
            .saturating_sub(moved_to_dw.units_ceil(tu_unit));

        // Phase 2: pack HV from the leftovers. DW-evicted members consume
        // B_t^rem (they must move back); HV-resident members don't.
        let evicted: HashSet<&String> =
            current_dw.iter().filter(|v| !dw_new.contains(*v)).collect();
        let hv_items: Vec<PackItem> = items
            .iter()
            .filter(|item| item.views.iter().all(|v| !dw_new.contains(v)))
            .map(|item| {
                let storage: ByteSize = item.views.iter().map(|v| size_of(v)).sum();
                let transfer_bytes: ByteSize = item
                    .views
                    .iter()
                    .filter(|v| evicted.contains(*v))
                    .map(|v| size_of(v))
                    .sum();
                PackItem {
                    views: item.views.iter().cloned().collect(),
                    storage_units: storage.units_ceil(hv_unit),
                    transfer_units: transfer_bytes.units_ceil(tu_unit),
                    benefit: charged(&item.views, item.benefit),
                }
            })
            .collect();
        let hv_pack = m_knapsack(
            &hv_items,
            budgets.hv_storage.as_bytes() / hv_unit.as_bytes(),
            bt_rem_units,
        );
        let hv_new: BTreeSet<String> = hv_pack
            .chosen
            .iter()
            .flat_map(|&k| hv_items[k].views.iter().cloned())
            .collect();

        debug_assert!(hv_new.is_disjoint(&dw_new), "V_h ∩ V_d must be empty");
        if obs.is_active() {
            obs.push_field("candidates", miso_obs::FieldValue::U64(infos.len() as u64));
            obs.push_field("items", miso_obs::FieldValue::U64(items.len() as u64));
            obs.push_field("dw_views", miso_obs::FieldValue::U64(dw_new.len() as u64));
            obs.push_field("hv_views", miso_obs::FieldValue::U64(hv_new.len() as u64));
            obs.push_field("history", miso_obs::FieldValue::U64(window.len() as u64));
        }
        NewDesign {
            hv: hv_new,
            dw: dw_new,
        }
    }
}

/// Stable identity of one view for cache keys: canonical `v_<fp>` names
/// carry their defining fingerprint; anything else (ETL tables, tests)
/// digests by name.
fn view_identity(name: &str) -> u64 {
    parse_view_fingerprint(name).unwrap_or_else(|| fnv1a_str(name))
}

/// Digest of a hypothetical view set (sorted names → sorted identities).
fn view_set_digest(set: &BTreeSet<String>) -> u64 {
    fnv1a_words(std::iter::once(set.len() as u64).chain(set.iter().map(|name| view_identity(name))))
}

/// Digest of every input a what-if probe's value depends on. The window
/// itself is *not* part of the stamp — each probe is keyed by its query's
/// plan fingerprint, so a sliding window reuses overlapping entries.
fn inputs_stamp(
    stats: &MapStats,
    catalog: &ViewCatalog,
    hv: &HvCostModel,
    dw: &DwCostModel,
    transfer: &TransferModel,
) -> u64 {
    let mut words: Vec<u64> = Vec::new();
    words.push(stats.digest());
    // Catalog: definitions drive containment rewriting; sizes drive
    // knapsack weights and estimates; quarantine changes which views are
    // offered at all.
    words.push(catalog.len() as u64);
    for def in catalog.defs() {
        words.push(def.fingerprint.0);
        words.push(def.size.as_bytes());
        words.push(def.rows);
        words.push(u64::from(catalog.is_quarantined(&def.name)));
    }
    // Cost and transfer models.
    words.push(hv.nodes as u64);
    words.push(hv.job_startup.as_secs_f64().to_bits());
    words.push(hv.read_secs_per_byte.to_bits());
    words.push(hv.write_secs_per_byte.to_bits());
    words.push(hv.cpu_secs_per_row.to_bits());
    words.push(hv.dump_secs_per_byte.to_bits());
    words.push(dw.nodes as u64);
    words.push(dw.query_startup.as_secs_f64().to_bits());
    words.push(dw.read_secs_per_byte.to_bits());
    words.push(dw.cpu_secs_per_row.to_bits());
    words.push(dw.load_secs_per_byte.to_bits());
    words.push(transfer.network_secs_per_byte.to_bits());
    fnv1a_words(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_common::ids::QueryId;
    use miso_lang::{compile, Catalog};
    use miso_plan::Operator;
    use miso_views::ViewDef;

    fn budgets(gib: u64) -> Budgets {
        Budgets::new(
            ByteSize::from_gib(gib),
            ByteSize::from_gib(gib),
            ByteSize::from_gib(gib),
        )
        .with_discretization(ByteSize::from_kib(64))
    }

    fn stats() -> MapStats {
        let mut s = MapStats::new();
        s.set_log("twitter", 40_000.0, 40_000.0 * 280.0);
        s.set_log("foursquare", 24_000.0, 24_000.0 * 160.0);
        s.set_log("landmarks", 900.0, 900.0 * 190.0);
        s
    }

    /// Builds a query plan plus a view over its filter subtree.
    fn plan_and_view(sql: &str, size: ByteSize) -> (LogicalPlan, ViewDef) {
        let plan = compile(sql, &Catalog::standard()).unwrap();
        let filt = plan
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap()
            .id;
        let sub = plan.subplan(filt);
        let def = ViewDef::from_plan(sub, size, 1_000, QueryId(0));
        (plan, def)
    }

    #[test]
    fn beneficial_view_lands_in_dw() {
        let (plan, view) = plan_and_view(
            "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 1000 GROUP BY t.city",
            ByteSize::from_kib(200),
        );
        let mut catalog = ViewCatalog::new();
        let name = view.name.clone();
        catalog.register(view);
        let mut s = stats();
        s.set_view(name.clone(), 1_000.0, 200.0 * 1024.0);

        let tuner = MisoTuner::new(TunerConfig::paper_default(budgets(1)));
        let hv: BTreeSet<String> = [name.clone()].into_iter().collect();
        let dw = BTreeSet::new();
        let design = tuner.tune(
            &hv,
            &dw,
            &catalog,
            &[plan],
            &s,
            &HvCostModel::paper_default(),
            &DwCostModel::paper_default(),
            &TransferModel::paper_default(),
        );
        assert!(design.dw.contains(&name), "useful view should move to DW");
        assert!(!design.hv.contains(&name), "designs must be disjoint");
    }

    #[test]
    fn zero_transfer_budget_freezes_dw() {
        let (plan, view) = plan_and_view(
            "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 1000 GROUP BY t.city",
            ByteSize::from_kib(200),
        );
        let mut catalog = ViewCatalog::new();
        let name = view.name.clone();
        catalog.register(view);
        let mut s = stats();
        s.set_view(name.clone(), 1_000.0, 200.0 * 1024.0);

        let b = Budgets::new(ByteSize::from_gib(1), ByteSize::from_gib(1), ByteSize::ZERO)
            .with_discretization(ByteSize::from_kib(64));
        let tuner = MisoTuner::new(TunerConfig::paper_default(b));
        let hv: BTreeSet<String> = [name.clone()].into_iter().collect();
        let design = tuner.tune(
            &hv,
            &BTreeSet::new(),
            &catalog,
            &[plan],
            &s,
            &HvCostModel::paper_default(),
            &DwCostModel::paper_default(),
            &TransferModel::paper_default(),
        );
        assert!(design.dw.is_empty(), "no transfer budget, nothing moves");
        assert!(design.hv.contains(&name), "view stays in HV");
    }

    #[test]
    fn empty_history_keeps_current_design() {
        let tuner = MisoTuner::new(TunerConfig::paper_default(budgets(1)));
        let hv: BTreeSet<String> = ["v_x".to_string()].into_iter().collect();
        let dw: BTreeSet<String> = ["v_y".to_string()].into_iter().collect();
        let design = tuner.tune(
            &hv,
            &dw,
            &ViewCatalog::new(),
            &[],
            &stats(),
            &HvCostModel::paper_default(),
            &DwCostModel::paper_default(),
            &TransferModel::paper_default(),
        );
        assert_eq!(design.hv, hv);
        assert_eq!(design.dw, dw);
    }

    #[test]
    fn dw_storage_budget_limits_design() {
        // Two beneficial views but DW budget only fits one.
        let (p1, v1) = plan_and_view(
            "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 1000 GROUP BY t.city",
            ByteSize::from_kib(200),
        );
        let (p2, v2) = plan_and_view(
            "SELECT f.city AS c, COUNT(*) AS n FROM foursquare f \
             WHERE f.likes > 10 GROUP BY f.city",
            ByteSize::from_kib(200),
        );
        let mut catalog = ViewCatalog::new();
        let (n1, n2) = (v1.name.clone(), v2.name.clone());
        catalog.register(v1);
        catalog.register(v2);
        let mut s = stats();
        s.set_view(n1.clone(), 1_000.0, 200.0 * 1024.0);
        s.set_view(n2.clone(), 1_000.0, 200.0 * 1024.0);

        // DW budget: 256 KiB (one 200 KiB view, discretized at 64 KiB ->
        // 4 units each... 200KiB = 4 units ceil; budget 4 units).
        let b = Budgets::new(
            ByteSize::from_gib(1),
            ByteSize::from_kib(256),
            ByteSize::from_gib(1),
        )
        .with_discretization(ByteSize::from_kib(64));
        let tuner = MisoTuner::new(TunerConfig::paper_default(b));
        let hv: BTreeSet<String> = [n1.clone(), n2.clone()].into_iter().collect();
        let design = tuner.tune(
            &hv,
            &BTreeSet::new(),
            &catalog,
            &[p1, p2],
            &s,
            &HvCostModel::paper_default(),
            &DwCostModel::paper_default(),
            &TransferModel::paper_default(),
        );
        assert_eq!(design.dw.len(), 1, "storage fits exactly one view");
        assert_eq!(design.hv.len(), 1, "the other stays in HV");
        assert!(design.hv.is_disjoint(&design.dw));
    }
}
