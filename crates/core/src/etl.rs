//! Up-front ETL for the DW-ONLY variant.
//!
//! DW-ONLY (paper §5.1) loads "the subset of the log data accessed by the
//! queries using HV as an ETL engine" before any query runs; UDFs that DW
//! cannot execute are applied during ETL. The paper measures this one-time
//! phase at ~348,000 s — dominating DW-ONLY's TTI.
//!
//! Mechanically: for every base log the workload touches we extract **all**
//! cataloged fields with an HV job and load the result into DW permanent
//! space as `etl_<log>`; for every `APPLY(udf, log)` in the workload we run
//! the UDF over the full log and load `etl_<udf>_<log>`. Queries are then
//! rewritten to scan these relations ([`rewrite_for_dw`]).
//!
//! The charged time is `(HV extraction + DW load) × overhead`, where the
//! multiplier stands in for the full Extract-Transform pipeline the paper's
//! ETL performs (cleansing, normalization, constraint checks, index builds —
//! "the high cost of an ETL process"; QoX \[21\]) that our two-step
//! extract+load does not otherwise model. See DESIGN.md §5.

use miso_common::{DetRng, MisoError, Result, RetryPolicy, SimDuration};
use miso_data::DataType;
use miso_dw::{DwStore, TableSpace};
use miso_exec::UdfRegistry;
use miso_hv::{HvRun, HvStore};
use miso_lang::Catalog;
use miso_plan::{Expr, LogicalPlan, Operator, PlanBuilder};

/// Default Extract-Transform overhead multiplier (see module docs).
pub const DEFAULT_ETL_OVERHEAD: f64 = 9.0;

/// What ETL produced.
#[derive(Debug, Clone, Default)]
pub struct EtlManifest {
    /// `(log name, DW table name)` for plain extractions.
    pub logs: Vec<(String, String)>,
    /// `((udf, log), DW table name)` for UDF applications.
    pub udfs: Vec<((String, String), String)>,
    /// Total charged ETL time.
    pub cost: SimDuration,
}

/// Runs ETL for `workload` into `dw`, using `hv` as the ETL engine.
pub fn run_etl(
    workload: &[LogicalPlan],
    lang_catalog: &Catalog,
    hv: &HvStore,
    dw: &mut DwStore,
    udfs: &UdfRegistry,
    overhead: f64,
) -> Result<EtlManifest> {
    let mut manifest = EtlManifest::default();
    let mut raw_cost = SimDuration::ZERO;
    // ETL jobs are long-running HV jobs: transient failures restart the
    // failed extraction with backoff charged to ETL time. The RNG is only
    // consulted when a fault actually fires, so fault-free runs are
    // byte-identical.
    let retry = RetryPolicy::standard();
    let mut retry_rng = DetRng::new(0xE71_0001);

    // Which logs and (udf, log) pairs does the workload touch?
    let mut logs: Vec<String> = Vec::new();
    let mut udf_pairs: Vec<(String, String)> = Vec::new();
    for plan in workload {
        for log in plan.base_logs() {
            if !logs.contains(&log) {
                logs.push(log);
            }
        }
        for node in plan.nodes() {
            if let Operator::Udf { name, .. } = &node.op {
                let input = plan.node(node.inputs[0]);
                if let Operator::ScanLog { log } = &input.op {
                    let pair = (name.clone(), log.clone());
                    if !udf_pairs.contains(&pair) {
                        udf_pairs.push(pair);
                    }
                }
            }
        }
    }
    logs.sort();
    udf_pairs.sort();

    // Full-field extraction per log.
    for log in &logs {
        let plan = full_extraction_plan(log, lang_catalog)?;
        let run = etl_job(hv, &plan, udfs, &retry, &mut retry_rng, &mut raw_cost)?;
        raw_cost += run.cost;
        let root = plan.root();
        let out = run
            .materialized
            .iter()
            .find(|m| m.node == root)
            .ok_or_else(|| MisoError::Execution("ETL produced no output".into()))?;
        let table = format!("etl_{log}");
        let (_, load) = dw.load_view(
            &table,
            out.schema.clone(),
            out.rows.clone(),
            TableSpace::Permanent,
        );
        raw_cost += load;
        manifest.logs.push((log.clone(), table));
    }

    // UDF application per (udf, log).
    for (udf, log) in &udf_pairs {
        let mut b = PlanBuilder::new();
        let scan = b.add(Operator::ScanLog { log: log.clone() }, vec![])?;
        let output = lang_catalog
            .udf_output(udf)
            .ok_or_else(|| MisoError::Analysis(format!("unknown UDF `{udf}`")))?
            .clone();
        let u = b.add(
            Operator::Udf {
                name: udf.clone(),
                output,
            },
            vec![scan],
        )?;
        let plan = b.finish(u)?;
        let run = etl_job(hv, &plan, udfs, &retry, &mut retry_rng, &mut raw_cost)?;
        raw_cost += run.cost;
        let root = plan.root();
        let out = run
            .materialized
            .iter()
            .find(|m| m.node == root)
            .ok_or_else(|| MisoError::Execution("ETL UDF produced no output".into()))?;
        let table = format!("etl_{udf}_{log}");
        let (_, load) = dw.load_view(
            &table,
            out.schema.clone(),
            out.rows.clone(),
            TableSpace::Permanent,
        );
        raw_cost += load;
        manifest.udfs.push(((udf.clone(), log.clone()), table));
    }

    manifest.cost = raw_cost * overhead.max(1.0);
    Ok(manifest)
}

/// Runs one ETL extraction job in HV, polling the `etl.run` fail point and
/// retrying transient failures (injected there or inside `hv.execute`) with
/// exponential backoff charged to `raw_cost`. Crashes propagate so the
/// caller's recovery path runs instead.
fn etl_job(
    hv: &HvStore,
    plan: &LogicalPlan,
    udfs: &UdfRegistry,
    policy: &RetryPolicy,
    rng: &mut DetRng,
    raw_cost: &mut SimDuration,
) -> Result<HvRun> {
    let mut attempt = 0u32;
    loop {
        let mut slow = 1.0f64;
        let injected = match miso_chaos::hit("etl.run") {
            miso_chaos::Action::Proceed => None,
            miso_chaos::Action::Fail => {
                Some(MisoError::transient("etl", "injected ETL job failure"))
            }
            miso_chaos::Action::Crash => return Err(MisoError::crash("etl", "etl.run")),
            miso_chaos::Action::Delay(f) => {
                slow = f;
                None
            }
            // ETL is an offline bulk load with no per-query deadline or
            // budget: a stall is just an extreme slowdown, a hog a no-op.
            miso_chaos::Action::Stall => {
                slow = miso_chaos::STALL_FACTOR;
                None
            }
            miso_chaos::Action::Hog(_) => None,
            // ETL re-reads the source log on every run, so a corrupt
            // extraction is indistinguishable from a transient failure:
            // treat it as one and let the retry loop re-run the job.
            miso_chaos::Action::Corrupt => Some(MisoError::transient(
                "etl",
                "injected ETL output corruption",
            )),
        };
        let result = match injected {
            Some(e) => Err(e),
            None => hv.execute(plan, None, udfs),
        };
        match result {
            Ok(mut run) => {
                if slow != 1.0 {
                    run.cost = run.cost * slow;
                }
                return Ok(run);
            }
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                *raw_cost += policy.backoff(attempt, rng);
                miso_obs::count("store.retries", 1);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Builds `scan(log) → project(all cataloged fields)`.
fn full_extraction_plan(log: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let fields = catalog_fields(log, catalog)?;
    let mut b = PlanBuilder::new();
    let scan = b.add(
        Operator::ScanLog {
            log: log.to_string(),
        },
        vec![],
    )?;
    let exprs: Vec<(String, Expr)> = fields
        .iter()
        .map(|(f, ty)| {
            let e = Expr::col(0).get(f.clone());
            let e = if *ty != DataType::Json {
                e.cast(*ty)
            } else {
                e
            };
            (f.clone(), e)
        })
        .collect();
    let proj = b.add(Operator::Project { exprs }, vec![scan])?;
    b.finish(proj)
}

/// The cataloged fields of a log, sorted by name.
fn catalog_fields(log: &str, catalog: &Catalog) -> Result<Vec<(String, DataType)>> {
    // The lang catalog doesn't expose iteration; probe the known field set
    // via the standard schemas. To stay decoupled we reconstruct from the
    // three known logs plus any query-specific hints.
    let known: &[&str] = match log {
        "twitter" => &[
            "tweet_id",
            "user_id",
            "ts",
            "text",
            "hashtags",
            "retweets",
            "followers",
            "lang",
            "city",
            "sentiment",
        ],
        "foursquare" => &[
            "checkin_id",
            "user_id",
            "venue_id",
            "ts",
            "likes",
            "with_friends",
            "city",
        ],
        "landmarks" => &[
            "venue_id",
            "name",
            "category",
            "city",
            "lat",
            "lon",
            "rating",
            "price_tier",
        ],
        other => {
            return Err(MisoError::Analysis(format!(
                "ETL does not know the field set of log `{other}`"
            )))
        }
    };
    Ok(known
        .iter()
        .map(|f| {
            (
                f.to_string(),
                catalog.field_hint(log, f).unwrap_or(DataType::Json),
            )
        })
        .collect())
}

/// Rewrites a query plan to run entirely in DW over the ETL relations:
/// every extraction `Project` over a `ScanLog` becomes a `Project` over the
/// corresponding `etl_<log>` view; every `Udf` over a `ScanLog` becomes a
/// scan of `etl_<udf>_<log>`.
pub fn rewrite_for_dw(
    plan: &LogicalPlan,
    lang_catalog: &Catalog,
    dw: &DwStore,
) -> Result<LogicalPlan> {
    let mut b = PlanBuilder::new();
    let mut mapping = std::collections::HashMap::new();
    for node in plan.nodes() {
        // Skip raw scans: they are folded into their consumers below.
        if matches!(node.op, Operator::ScanLog { .. }) {
            continue;
        }
        let new_id = match &node.op {
            Operator::Udf { name, .. }
                if matches!(plan.node(node.inputs[0]).op, Operator::ScanLog { .. }) =>
            {
                let Operator::ScanLog { log } = &plan.node(node.inputs[0]).op else {
                    unreachable!()
                };
                let table = format!("etl_{name}_{log}");
                let schema = dw
                    .view_schema(&table)
                    .ok_or_else(|| MisoError::Store(format!("ETL table `{table}` missing")))?
                    .clone();
                b.add(
                    Operator::ScanView {
                        view: table,
                        schema,
                    },
                    vec![],
                )?
            }
            Operator::Project { exprs }
                if matches!(plan.node(node.inputs[0]).op, Operator::ScanLog { .. }) =>
            {
                let Operator::ScanLog { log } = &plan.node(node.inputs[0]).op else {
                    unreachable!()
                };
                let table = format!("etl_{log}");
                let schema = dw
                    .view_schema(&table)
                    .ok_or_else(|| MisoError::Store(format!("ETL table `{table}` missing")))?
                    .clone();
                let fields = catalog_fields(log, lang_catalog)?;
                let sv = b.add(
                    Operator::ScanView {
                        view: table,
                        schema,
                    },
                    vec![],
                )?;
                // Rebuild each extraction expression as a column reference
                // into the full-extraction relation.
                let new_exprs: Vec<(String, Expr)> = exprs
                    .iter()
                    .map(|(name, e)| {
                        let col = extraction_field(e)
                            .and_then(|f| fields.iter().position(|(name, _)| *name == f));
                        match col {
                            Some(idx) => Ok((name.clone(), Expr::Column(idx))),
                            None => Err(MisoError::Plan(format!(
                                "extraction expression `{e}` is not a plain field access"
                            ))),
                        }
                    })
                    .collect::<Result<_>>()?;
                b.add(Operator::Project { exprs: new_exprs }, vec![sv])?
            }
            other => {
                let inputs: Vec<_> = node
                    .inputs
                    .iter()
                    .map(|i| {
                        mapping.get(i).copied().ok_or_else(|| {
                            MisoError::Plan(
                                "DW rewrite requires extraction projections over scans".into(),
                            )
                        })
                    })
                    .collect::<Result<_>>()?;
                b.add(other.clone(), inputs)?
            }
        };
        mapping.insert(node.id, new_id);
    }
    b.finish(mapping[&plan.root()])
}

/// Recognizes `CAST($0->'field' AS _)` / `$0->'field'` and returns the field.
fn extraction_field(e: &Expr) -> Option<String> {
    match e {
        Expr::Cast { input, .. } => extraction_field(input),
        Expr::FieldGet { input, key } => match **input {
            Expr::Column(0) => Some(key.clone()),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::logs::{Corpus, LogsConfig};
    use miso_lang::compile;

    fn setup() -> (HvStore, DwStore, Catalog, UdfRegistry) {
        let corpus = Corpus::generate(&LogsConfig::tiny());
        let mut hv = HvStore::new();
        hv.add_log(corpus.twitter);
        hv.add_log(corpus.foursquare);
        hv.add_log(corpus.landmarks);
        (hv, DwStore::new(), Catalog::standard(), UdfRegistry::new())
    }

    #[test]
    fn etl_loads_touched_logs_only() {
        let (hv, mut dw, catalog, udfs) = setup();
        let q = compile(
            "SELECT t.city AS c FROM twitter t WHERE t.followers > 5",
            &catalog,
        )
        .unwrap();
        let manifest = run_etl(&[q], &catalog, &hv, &mut dw, &udfs, 1.0).unwrap();
        assert_eq!(manifest.logs.len(), 1);
        assert!(dw.has_view("etl_twitter"));
        assert!(!dw.has_view("etl_foursquare"));
        assert!(manifest.cost > SimDuration::ZERO);
    }

    #[test]
    fn overhead_multiplies_cost() {
        let (hv, mut dw, catalog, udfs) = setup();
        let q = compile("SELECT t.city AS c FROM twitter t", &catalog).unwrap();
        let base = run_etl(std::slice::from_ref(&q), &catalog, &hv, &mut dw, &udfs, 1.0)
            .unwrap()
            .cost;
        let mut dw2 = DwStore::new();
        let heavy = run_etl(&[q], &catalog, &hv, &mut dw2, &udfs, 10.0)
            .unwrap()
            .cost;
        let ratio = heavy.as_secs_f64() / base.as_secs_f64();
        assert!((9.9..10.1).contains(&ratio));
    }

    #[test]
    fn rewritten_query_matches_hv_execution() {
        let (hv, mut dw, catalog, udfs) = setup();
        let q = compile(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city ORDER BY n DESC",
            &catalog,
        )
        .unwrap();
        run_etl(std::slice::from_ref(&q), &catalog, &hv, &mut dw, &udfs, 1.0).unwrap();
        let dw_plan = rewrite_for_dw(&q, &catalog, &dw).unwrap();
        assert!(dw_plan.base_logs().is_empty(), "no raw scans remain");
        let hv_run = hv.execute(&q, None, &udfs).unwrap();
        let dw_run = dw
            .execute(&dw_plan, None, Default::default(), &udfs)
            .unwrap();
        assert_eq!(
            hv_run.execution.root_rows().unwrap(),
            dw_run.execution.root_rows().unwrap(),
            "DW-ONLY must compute identical results"
        );
        assert!(dw_run.cost < hv_run.cost, "post-ETL queries are fast");
    }

    #[test]
    fn join_query_rewrites_and_matches() {
        let (hv, mut dw, catalog, udfs) = setup();
        let q = compile(
            "SELECT l.category AS cat, COUNT(*) AS n \
             FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
             WHERE f.likes > 1 GROUP BY l.category",
            &catalog,
        )
        .unwrap();
        run_etl(std::slice::from_ref(&q), &catalog, &hv, &mut dw, &udfs, 1.0).unwrap();
        let dw_plan = rewrite_for_dw(&q, &catalog, &dw).unwrap();
        let hv_run = hv.execute(&q, None, &udfs).unwrap();
        let dw_run = dw
            .execute(&dw_plan, None, Default::default(), &udfs)
            .unwrap();
        assert_eq!(
            hv_run.execution.root_rows().unwrap(),
            dw_run.execution.root_rows().unwrap()
        );
    }

    #[test]
    fn udf_queries_get_etl_tables() {
        use std::sync::Arc;
        let (hv, mut dw, mut catalog, mut udfs) = setup();
        let out_schema = miso_data::Schema::new(vec![
            miso_data::Field::new("user_id", DataType::Int),
            miso_data::Field::new("buzz", DataType::Float),
        ]);
        catalog.add_udf("buzz_score", out_schema.clone());
        udfs.register(miso_exec::Udf::new(
            "buzz_score",
            out_schema,
            Arc::new(|row: &miso_data::Row| {
                let rec = row.get(0);
                let uid = rec.get_field("user_id").and_then(miso_data::Value::as_i64);
                let rts = rec.get_field("retweets").and_then(miso_data::Value::as_f64);
                match (uid, rts) {
                    (Some(u), Some(r)) => Ok(vec![miso_data::Row::new(vec![
                        miso_data::Value::Int(u),
                        miso_data::Value::Float(r.ln_1p()),
                    ])]),
                    _ => Ok(vec![]),
                }
            }),
        ));
        let q = compile(
            "SELECT b.user_id AS uid, b.buzz AS buzz FROM APPLY(buzz_score, twitter) b \
             WHERE b.buzz > 1.0",
            &catalog,
        )
        .unwrap();
        let manifest =
            run_etl(std::slice::from_ref(&q), &catalog, &hv, &mut dw, &udfs, 1.0).unwrap();
        assert_eq!(manifest.udfs.len(), 1);
        assert!(dw.has_view("etl_buzz_score_twitter"));
        let dw_plan = rewrite_for_dw(&q, &catalog, &dw).unwrap();
        let hv_run = hv.execute(&q, None, &udfs).unwrap();
        let dw_run = dw
            .execute(&dw_plan, None, Default::default(), &udfs)
            .unwrap();
        assert_eq!(
            hv_run.execution.root_rows().unwrap(),
            dw_run.execution.root_rows().unwrap()
        );
    }
}
