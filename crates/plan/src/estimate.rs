//! Cardinality and byte-size estimation.
//!
//! The multistore optimizer costs candidate splits *before* execution, so it
//! needs per-node estimates of row counts and working-set bytes. Estimates
//! use the classic textbook heuristics (constant selectivities, fanout-capped
//! joins, sub-linear group counts); **actual** sizes recorded at
//! materialization time always take precedence — base logs and existing views
//! report their true statistics through the [`StatsSource`].
//!
//! This imprecision is faithful to the paper's setting: its optimizer also
//! estimates working-set sizes and only discovers true costs at execution.

use crate::expr::{BinOp, Expr, UnaryOp};
use crate::op::Operator;
use crate::plan::LogicalPlan;
use miso_common::ids::NodeId;
use miso_data::DataType;
use std::collections::HashMap;

/// Row/byte estimate for one node's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output bytes.
    pub bytes: f64,
}

impl SizeEstimate {
    /// Average row width implied by the estimate.
    pub fn avg_row_bytes(&self) -> f64 {
        if self.rows <= 0.0 {
            0.0
        } else {
            self.bytes / self.rows
        }
    }
}

/// Supplies true statistics for leaves: base logs and materialized views.
///
/// `Sync` is part of the contract: the tuner's what-if probes fan out
/// across the miso-par worker pool, and every probe reads stats through a
/// shared reference.
pub trait StatsSource: Sync {
    /// Rows and bytes for base log `log`, if known.
    fn log_stats(&self, log: &str) -> Option<SizeEstimate>;
    /// Rows and bytes for view `view`, if known.
    fn view_stats(&self, view: &str) -> Option<SizeEstimate>;
}

/// A [`StatsSource`] backed by hash maps — used by tests and by the stores,
/// which register sizes as data is ingested/materialized.
#[derive(Debug, Clone, Default)]
pub struct MapStats {
    logs: HashMap<String, SizeEstimate>,
    views: HashMap<String, SizeEstimate>,
}

impl MapStats {
    /// An empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base log's true size.
    pub fn set_log(&mut self, log: impl Into<String>, rows: f64, bytes: f64) {
        self.logs.insert(log.into(), SizeEstimate { rows, bytes });
    }

    /// Registers a view's true size.
    pub fn set_view(&mut self, view: impl Into<String>, rows: f64, bytes: f64) {
        self.views.insert(view.into(), SizeEstimate { rows, bytes });
    }

    /// Stable FNV-1a/64 digest of every registered statistic, in sorted
    /// name order. The tuner's cross-epoch what-if cache folds this into
    /// its invalidation stamp: any stats change — new view, refreshed
    /// size, grown log — produces a new digest and flushes cached probes.
    pub fn digest(&self) -> u64 {
        let mut words: Vec<u64> = Vec::with_capacity(2 + 3 * (self.logs.len() + self.views.len()));
        for (tag, map) in [(1u64, &self.logs), (2u64, &self.views)] {
            let mut names: Vec<&String> = map.keys().collect();
            names.sort();
            words.push(tag);
            words.push(names.len() as u64);
            for name in names {
                let est = &map[name];
                words.push(crate::fingerprint::fnv1a_str(name));
                words.push(est.rows.to_bits());
                words.push(est.bytes.to_bits());
            }
        }
        crate::fingerprint::fnv1a_words(words)
    }
}

impl StatsSource for MapStats {
    fn log_stats(&self, log: &str) -> Option<SizeEstimate> {
        self.logs.get(log).copied()
    }

    fn view_stats(&self, view: &str) -> Option<SizeEstimate> {
        self.views.get(view).copied()
    }
}

/// Default selectivities (see module docs).
mod sel {
    pub const EQ: f64 = 0.08;
    pub const RANGE: f64 = 1.0 / 3.0;
    pub const LIKE: f64 = 0.25;
    pub const MEMBER: f64 = 0.15;
    pub const NULLNESS: f64 = 0.9;
    pub const UNKNOWN: f64 = 0.5;
    pub const FLOOR: f64 = 1e-4;
    /// Join fanout multiplier over the FK-style `min(|L|,|R|)` base.
    pub const JOIN_FANOUT: f64 = 1.2;
    /// Grouped-aggregate output exponent: `rows^GROUP_EXP` per group column.
    pub const GROUP_EXP: f64 = 0.75;
}

/// Estimated serialized width of a value of the given static type.
fn type_width(ty: DataType) -> f64 {
    match ty {
        DataType::Bool => 1.0,
        DataType::Int | DataType::Float => 8.0,
        DataType::Str => 24.0,
        DataType::Json => 64.0,
    }
}

/// Estimates sizes for every node of `plan`, bottom-up.
pub fn estimate_plan(plan: &LogicalPlan, stats: &dyn StatsSource) -> HashMap<NodeId, SizeEstimate> {
    let mut out: HashMap<NodeId, SizeEstimate> = HashMap::with_capacity(plan.len());
    for node in plan.nodes() {
        let est = match &node.op {
            Operator::ScanLog { log } => stats.log_stats(log).unwrap_or(SizeEstimate {
                rows: 1_000_000.0,
                bytes: 1_000_000.0 * 200.0,
            }),
            Operator::ScanView { view, schema } => stats.view_stats(view).unwrap_or_else(|| {
                let width: f64 = schema.fields().iter().map(|f| type_width(f.ty)).sum();
                SizeEstimate {
                    rows: 10_000.0,
                    bytes: 10_000.0 * width.max(8.0),
                }
            }),
            Operator::Filter { predicate } => {
                let input = out[&node.inputs[0]];
                let s = predicate_selectivity(predicate);
                SizeEstimate {
                    rows: (input.rows * s).max(1.0),
                    bytes: (input.bytes * s).max(8.0),
                }
            }
            Operator::Project { exprs } => {
                let input = out[&node.inputs[0]];
                let in_schema = &plan.node(node.inputs[0]).schema;
                let out_width: f64 = exprs
                    .iter()
                    .map(|(_, e)| type_width(e.infer_type(in_schema)))
                    .sum::<f64>()
                    .max(1.0);
                SizeEstimate {
                    rows: input.rows,
                    bytes: input.rows * out_width,
                }
            }
            Operator::Join { .. } => {
                let l = out[&node.inputs[0]];
                let r = out[&node.inputs[1]];
                let rows = (l.rows.min(r.rows) * sel::JOIN_FANOUT).max(1.0);
                let width = l.avg_row_bytes() + r.avg_row_bytes();
                SizeEstimate {
                    rows,
                    bytes: rows * width.max(8.0),
                }
            }
            Operator::Aggregate { group_by, aggs } => {
                let input = out[&node.inputs[0]];
                let rows = if group_by.is_empty() {
                    1.0
                } else {
                    // More group columns → more groups, capped at input rows.
                    let exp =
                        sel::GROUP_EXP.powi(1i32.max(group_by.len() as i32) - 1) * sel::GROUP_EXP;
                    input.rows.powf(exp.min(1.0)).min(input.rows).max(1.0)
                };
                let in_schema = &plan.node(node.inputs[0]).schema;
                let width: f64 = group_by
                    .iter()
                    .map(|&g| type_width(in_schema.field_at(g).ty))
                    .sum::<f64>()
                    + aggs.len() as f64 * 8.0;
                SizeEstimate {
                    rows,
                    bytes: rows * width.max(8.0),
                }
            }
            Operator::Udf { output, .. } => {
                // UDFs are opaque; assume row-preserving with declared width.
                let input = out[&node.inputs[0]];
                let width: f64 = output.fields().iter().map(|f| type_width(f.ty)).sum();
                SizeEstimate {
                    rows: input.rows,
                    bytes: input.rows * width.max(8.0),
                }
            }
            Operator::Sort { .. } => out[&node.inputs[0]],
            Operator::Limit { n } => {
                let input = out[&node.inputs[0]];
                let rows = input.rows.min(*n as f64);
                SizeEstimate {
                    rows,
                    bytes: rows * input.avg_row_bytes().max(8.0),
                }
            }
        };
        out.insert(node.id, est);
    }
    out
}

/// Combined selectivity of a (possibly conjunctive) predicate.
pub fn predicate_selectivity(predicate: &Expr) -> f64 {
    predicate
        .conjuncts()
        .iter()
        .map(|c| factor_selectivity(c))
        .product::<f64>()
        .max(sel::FLOOR)
}

fn factor_selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Binary { op, left, right } => match op {
            BinOp::Eq => sel::EQ,
            BinOp::Ne => 1.0 - sel::EQ,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => sel::RANGE,
            BinOp::Or => {
                // Union bound, capped.
                let l = factor_selectivity(left);
                let r = factor_selectivity(right);
                (l + r - l * r).min(1.0)
            }
            BinOp::And => factor_selectivity(left) * factor_selectivity(right),
            _ => sel::UNKNOWN,
        },
        Expr::Unary { op, input } => match op {
            UnaryOp::Not => (1.0 - factor_selectivity(input)).max(sel::FLOOR),
            UnaryOp::IsNull => 1.0 - sel::NULLNESS,
            UnaryOp::IsNotNull => sel::NULLNESS,
            UnaryOp::Neg => sel::UNKNOWN,
        },
        Expr::Func { name, .. } => match name.as_str() {
            "contains" | "like" => sel::LIKE,
            "array_contains" => sel::MEMBER,
            _ => sel::UNKNOWN,
        },
        Expr::Literal(v) if v.is_true() => 1.0,
        Expr::Literal(_) => sel::FLOOR,
        _ => sel::UNKNOWN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, AggFunc};
    use crate::plan::PlanBuilder;

    fn stats() -> MapStats {
        let mut s = MapStats::new();
        s.set_log("twitter", 100_000.0, 100_000.0 * 300.0);
        s.set_log("foursquare", 50_000.0, 50_000.0 * 150.0);
        s
    }

    fn linear() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        (
                            "uid".into(),
                            Expr::col(0).get("user_id").cast(DataType::Int),
                        ),
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(1i64)),
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![1],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![filt],
            )
            .unwrap();
        b.finish(agg).unwrap()
    }

    #[test]
    fn leaf_uses_registered_stats() {
        let p = linear();
        let est = estimate_plan(&p, &stats());
        assert_eq!(est[&NodeId(0)].rows, 100_000.0);
        assert_eq!(est[&NodeId(0)].bytes, 100_000.0 * 300.0);
    }

    #[test]
    fn working_set_shrinks_down_the_plan() {
        // The "little data" effect: bytes drop at projection, filter, agg.
        let p = linear();
        let est = estimate_plan(&p, &stats());
        let scan = est[&NodeId(0)].bytes;
        let proj = est[&NodeId(1)].bytes;
        let filt = est[&NodeId(2)].bytes;
        let agg = est[&NodeId(3)].bytes;
        assert!(proj < scan);
        assert!(filt < proj);
        assert!(agg < filt);
    }

    #[test]
    fn filter_applies_eq_selectivity() {
        let p = linear();
        let est = estimate_plan(&p, &stats());
        let ratio = est[&NodeId(2)].rows / est[&NodeId(1)].rows;
        assert!((ratio - 0.08).abs() < 1e-9);
    }

    #[test]
    fn join_estimate_is_fk_style() {
        let mut b = PlanBuilder::new();
        let t = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let f = b
            .add(
                Operator::ScanLog {
                    log: "foursquare".into(),
                },
                vec![],
            )
            .unwrap();
        let j = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![t, f])
            .unwrap();
        let p = b.finish(j).unwrap();
        let est = estimate_plan(&p, &stats());
        assert!((est[&NodeId(2)].rows - 50_000.0 * 1.2).abs() < 1e-6);
    }

    #[test]
    fn global_aggregate_is_one_row() {
        let mut b = PlanBuilder::new();
        let t = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let a = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![t],
            )
            .unwrap();
        let p = b.finish(a).unwrap();
        let est = estimate_plan(&p, &stats());
        assert_eq!(est[&NodeId(1)].rows, 1.0);
    }

    #[test]
    fn limit_caps_rows() {
        let mut b = PlanBuilder::new();
        let t = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let l = b.add(Operator::Limit { n: 10 }, vec![t]).unwrap();
        let p = b.finish(l).unwrap();
        let est = estimate_plan(&p, &stats());
        assert_eq!(est[&NodeId(1)].rows, 10.0);
    }

    #[test]
    fn view_stats_override_defaults() {
        let mut s = stats();
        s.set_view("v_x", 42.0, 4200.0);
        let mut b = PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "v_x".into(),
                    schema: miso_data::Schema::new(vec![miso_data::Field::new("a", DataType::Int)]),
                },
                vec![],
            )
            .unwrap();
        let p = b.finish(sv).unwrap();
        let est = estimate_plan(&p, &s);
        assert_eq!(est[&NodeId(0)].rows, 42.0);
        assert_eq!(est[&NodeId(0)].bytes, 4200.0);
    }

    #[test]
    fn selectivity_combinators() {
        let eq = Expr::col(0).eq(Expr::lit(1i64));
        assert!((predicate_selectivity(&eq) - 0.08).abs() < 1e-12);
        let both = eq.clone().and(eq.clone());
        assert!((predicate_selectivity(&both) - 0.08 * 0.08).abs() < 1e-12);
        let or = Expr::Binary {
            op: BinOp::Or,
            left: Box::new(eq.clone()),
            right: Box::new(eq.clone()),
        };
        let expect = 0.08 + 0.08 - 0.08 * 0.08;
        assert!((predicate_selectivity(&or) - expect).abs() < 1e-12);
        let not = Expr::Unary {
            op: UnaryOp::Not,
            input: Box::new(eq),
        };
        assert!((predicate_selectivity(&not) - 0.92).abs() < 1e-12);
    }

    #[test]
    fn selectivity_never_hits_zero() {
        let mut pred = Expr::col(0).eq(Expr::lit(1i64));
        for _ in 0..10 {
            pred = pred.and(Expr::col(0).eq(Expr::lit(1i64)));
        }
        assert!(predicate_selectivity(&pred) >= 1e-4);
    }
}
