//! Logical query plans for the MISO reproduction.
//!
//! Queries arrive as HiveQL text (`miso-lang`), are lowered to the logical
//! plan DAGs defined here, and are then executed by the store engines
//! (`miso-exec` drives the operators) or rewritten over materialized views
//! (`miso-views`). This crate also owns the plan-level analyses the
//! multistore machinery is built on:
//!
//! * [`fingerprint`] — canonical semantic fingerprints of sub-plans, the
//!   identity under which opportunistic views are deduplicated and matched;
//! * [`split`] — enumeration of the *split points* ("cuts in the plan graph
//!   whereby data and computation is migrated from one store to the other",
//!   paper §3.1);
//! * [`estimate`] — cardinality/byte estimates feeding the multistore cost
//!   model.

pub mod estimate;
pub mod expr;
pub mod fingerprint;
pub mod op;
pub mod plan;
pub mod split;

pub use expr::{AggExpr, AggFunc, BinOp, Expr, UnaryOp};
pub use fingerprint::Fingerprint;
pub use op::Operator;
pub use plan::{LogicalPlan, PlanBuilder, PlanNode};
pub use split::Split;
