//! Split-point enumeration.
//!
//! A multistore execution plan "may contain split points, denoting a cut in
//! the plan graph whereby data and computation is migrated from one store to
//! the other" (paper §3.1). Because DW only accelerates HV queries, data
//! moves in one direction: HV → DW.
//!
//! We model a split as the set of nodes evaluated in HV; the complement runs
//! in DW. Validity requires:
//!
//! * **downward closure** — if a node runs in HV, so do all its inputs
//!   (otherwise data would flow DW → HV);
//! * **UDF pinning** — `Udf` nodes, and hence their subtrees, run in HV;
//! * **base-log pinning** — `ScanLog` reads HDFS and must be in HV.
//!   `ScanView` leaves may run on either side; whether the view is actually
//!   *present* in that store is a placement question the optimizer checks.
//!
//! The **cut** of a split is the set of HV nodes with at least one DW
//! consumer (plus the root when the whole plan runs in HV produces no cut);
//! their outputs are the working sets dumped, transferred, and loaded into
//! DW — the green/yellow bars of the paper's Figure 3.

use crate::plan::LogicalPlan;
use miso_common::ids::NodeId;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A candidate multistore split: which nodes execute in HV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    hv_nodes: BTreeSet<NodeId>,
}

impl Split {
    /// Builds a split from the HV-side node set. The caller must guarantee
    /// validity; use [`enumerate_splits`] for generated candidates or
    /// [`Split::validate`] to check.
    pub fn new(hv_nodes: BTreeSet<NodeId>) -> Self {
        Split { hv_nodes }
    }

    /// The split that executes everything in HV.
    pub fn all_hv(plan: &LogicalPlan) -> Self {
        Split {
            hv_nodes: plan.nodes().iter().map(|n| n.id).collect(),
        }
    }

    /// The split that executes everything in DW (valid only for plans with
    /// no base-log scans or UDFs).
    pub fn all_dw() -> Self {
        Split {
            hv_nodes: BTreeSet::new(),
        }
    }

    /// Nodes executing in HV.
    pub fn hv_nodes(&self) -> &BTreeSet<NodeId> {
        &self.hv_nodes
    }

    /// Whether `id` executes in HV.
    pub fn in_hv(&self, id: NodeId) -> bool {
        self.hv_nodes.contains(&id)
    }

    /// Whether every node executes in HV.
    pub fn is_hv_only(&self, plan: &LogicalPlan) -> bool {
        self.hv_nodes.len() == plan.len()
    }

    /// Whether every node executes in DW.
    pub fn is_dw_only(&self) -> bool {
        self.hv_nodes.is_empty()
    }

    /// The HV nodes whose outputs cross to DW (deduplicated, in plan order).
    ///
    /// Empty for HV-only plans (nothing crosses) and DW-only plans (nothing
    /// starts in HV).
    pub fn cut_nodes(&self, plan: &LogicalPlan) -> Vec<NodeId> {
        let mut cut = Vec::new();
        for node in plan.nodes() {
            if !self.in_hv(node.id) {
                continue;
            }
            let feeds_dw = consumers_of(plan, node.id).iter().any(|c| !self.in_hv(*c));
            if feeds_dw {
                cut.push(node.id);
            }
        }
        cut
    }

    /// Validates downward closure and operator pinning against `plan`.
    pub fn validate(&self, plan: &LogicalPlan) -> Result<(), String> {
        for node in plan.nodes() {
            if self.in_hv(node.id) {
                for input in &node.inputs {
                    if !self.in_hv(*input) {
                        return Err(format!(
                            "node {} in HV consumes {} in DW (reverse flow)",
                            node.id, input
                        ));
                    }
                }
            } else if node.op.hv_only() {
                return Err(format!("UDF node {} assigned to DW", node.id));
            } else if matches!(node.op, crate::op::Operator::ScanLog { .. }) {
                return Err(format!("base-log scan {} assigned to DW", node.id));
            }
        }
        Ok(())
    }
}

/// Consumers (parents) of `id` within `plan`.
pub fn consumers_of(plan: &LogicalPlan, id: NodeId) -> Vec<NodeId> {
    plan.nodes()
        .iter()
        .filter(|n| n.inputs.contains(&id))
        .map(|n| n.id)
        .collect()
}

/// Builds the consumer adjacency for all nodes at once.
pub fn consumer_map(plan: &LogicalPlan) -> HashMap<NodeId, Vec<NodeId>> {
    let mut map: HashMap<NodeId, Vec<NodeId>> =
        plan.nodes().iter().map(|n| (n.id, Vec::new())).collect();
    for node in plan.nodes() {
        for input in &node.inputs {
            map.get_mut(input).expect("input exists").push(node.id);
        }
    }
    map
}

/// Enumerates every valid split of `plan`.
///
/// For plans of ≤ `EXHAUSTIVE_LIMIT` nodes this is exhaustive over all
/// downward-closed node subsets (the paper's Figure 3 profiles "all possible
/// plans" of a query). Larger plans fall back to the topological-prefix
/// family, which always contains the HV-only split and the best
/// "late-single-cut" splits that the paper observes winning in practice.
pub fn enumerate_splits(plan: &LogicalPlan) -> Vec<Split> {
    const EXHAUSTIVE_LIMIT: usize = 14;
    let splits = if plan.len() <= EXHAUSTIVE_LIMIT {
        enumerate_exhaustive(plan)
    } else {
        enumerate_prefixes(plan)
    };
    miso_obs::count("plan.split_enumerations", 1);
    miso_obs::observe("plan.splits_per_plan", splits.len() as u64);
    splits
}

fn enumerate_exhaustive(plan: &LogicalPlan) -> Vec<Split> {
    let n = plan.len();
    // Bit i corresponds to NodeId(i); required bits = UDF subtrees + log scans.
    let mut required: u64 = 0;
    for node in plan.nodes() {
        if node.op.hv_only() {
            for d in plan.descendants(node.id) {
                required |= 1 << d.raw();
            }
        }
        if matches!(node.op, crate::op::Operator::ScanLog { .. }) {
            required |= 1 << node.id.raw();
        }
    }
    let mut out = Vec::new();
    'mask: for mask in 0u64..(1u64 << n) {
        if mask & required != required {
            continue;
        }
        // Downward closure: every HV node's inputs are HV.
        for node in plan.nodes() {
            if mask & (1 << node.id.raw()) != 0 {
                for input in &node.inputs {
                    if mask & (1 << input.raw()) == 0 {
                        continue 'mask;
                    }
                }
            }
        }
        let hv_nodes: BTreeSet<NodeId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| NodeId(i as u64))
            .collect();
        out.push(Split::new(hv_nodes));
    }
    out
}

fn enumerate_prefixes(plan: &LogicalPlan) -> Vec<Split> {
    // Arena order is topological, so every prefix is downward-closed.
    let ids: Vec<NodeId> = plan.nodes().iter().map(|n| n.id).collect();
    let min_prefix = minimum_hv_prefix(plan);
    let mut out = Vec::new();
    for k in min_prefix..=ids.len() {
        let hv_nodes: BTreeSet<NodeId> = ids[..k].iter().copied().collect();
        let split = Split::new(hv_nodes);
        if split.validate(plan).is_ok() {
            out.push(split);
        }
    }
    out
}

/// Smallest prefix length that covers all pinned nodes.
fn minimum_hv_prefix(plan: &LogicalPlan) -> usize {
    let mut pinned: HashSet<NodeId> = HashSet::new();
    for node in plan.nodes() {
        if node.op.hv_only() {
            pinned.extend(plan.descendants(node.id));
        }
        if matches!(node.op, crate::op::Operator::ScanLog { .. }) {
            pinned.insert(node.id);
        }
    }
    pinned
        .iter()
        .map(|id| id.raw() as usize + 1)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, AggFunc, Expr};
    use crate::op::Operator;
    use crate::plan::PlanBuilder;
    use miso_data::{DataType, Field, Schema};

    /// Linear plan: scan -> project -> filter -> aggregate.
    fn linear() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(1i64)),
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![filt],
            )
            .unwrap();
        b.finish(agg).unwrap()
    }

    #[test]
    fn linear_plan_has_one_split_per_prefix() {
        let p = linear();
        let splits = enumerate_splits(&p);
        // scan is pinned to HV, so valid HV sets are prefixes of length 1..=4.
        assert_eq!(splits.len(), 4);
        assert!(splits.iter().all(|s| s.validate(&p).is_ok()));
        assert_eq!(splits.iter().filter(|s| s.is_hv_only(&p)).count(), 1);
        assert!(!splits.iter().any(|s| s.is_dw_only()));
    }

    #[test]
    fn cut_nodes_identify_crossing_edges() {
        let p = linear();
        // HV = {scan, project}; cut = {project}.
        let split = Split::new([NodeId(0), NodeId(1)].into_iter().collect());
        assert!(split.validate(&p).is_ok());
        assert_eq!(split.cut_nodes(&p), vec![NodeId(1)]);
        // HV-only: no cut.
        assert!(Split::all_hv(&p).cut_nodes(&p).is_empty());
    }

    #[test]
    fn reverse_flow_is_invalid() {
        let p = linear();
        // HV = {scan, filter} without project: filter consumes project in DW.
        let split = Split::new([NodeId(0), NodeId(2)].into_iter().collect());
        assert!(split.validate(&p).is_err());
    }

    #[test]
    fn udf_pins_subtree_to_hv() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(Operator::ScanLog { log: "t".into() }, vec![])
            .unwrap();
        let udf = b
            .add(
                Operator::Udf {
                    name: "u".into(),
                    output: Schema::new(vec![Field::new("x", DataType::Int)]),
                },
                vec![scan],
            )
            .unwrap();
        let lim = b.add(Operator::Limit { n: 10 }, vec![udf]).unwrap();
        let p = b.finish(lim).unwrap();
        let splits = enumerate_splits(&p);
        // UDF (and its scan) must be in HV: only splits are {scan,udf} and all.
        assert_eq!(splits.len(), 2);
        assert!(splits.iter().all(|s| s.in_hv(NodeId(1))));
    }

    #[test]
    fn view_only_plan_allows_dw_only() {
        let mut b = PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "v_x".into(),
                    schema: Schema::new(vec![Field::new("a", DataType::Int)]),
                },
                vec![],
            )
            .unwrap();
        let lim = b.add(Operator::Limit { n: 1 }, vec![sv]).unwrap();
        let p = b.finish(lim).unwrap();
        let splits = enumerate_splits(&p);
        assert!(splits.iter().any(|s| s.is_dw_only()));
        assert_eq!(splits.len(), 3); // {}, {scan}, {scan, limit}
    }

    #[test]
    fn bushy_plan_enumerates_all_ideals() {
        // Two scan->project branches joined, then aggregated: 6 nodes.
        let mut b = PlanBuilder::new();
        let s1 = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let p1 = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![s1],
            )
            .unwrap();
        let s2 = b
            .add(
                Operator::ScanLog {
                    log: "foursquare".into(),
                },
                vec![],
            )
            .unwrap();
        let p2 = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![s2],
            )
            .unwrap();
        let j = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![p1, p2])
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![j],
            )
            .unwrap();
        let plan = b.finish(agg).unwrap();
        let splits = enumerate_splits(&plan);
        // Scans pinned; branches independent: HV sets are products of
        // per-branch prefixes plus join/agg tail choices.
        // Branch A: {s1} or {s1,p1}; Branch B: {s2} or {s2,p2} -> 4 bases;
        // join in HV requires both projects; agg requires join.
        // Valid sets: 4 (no join) + 1 (join) + 1 (join+agg) = 6.
        assert_eq!(splits.len(), 6);
        for s in &splits {
            assert!(s.validate(&plan).is_ok());
        }
        // A split cutting both branches transfers two working sets (the
        // paper's third panel in the §3.1 figure).
        let two_cut = Split::new(
            [NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
                .into_iter()
                .collect(),
        );
        assert_eq!(two_cut.cut_nodes(&plan).len(), 2);
    }

    #[test]
    fn consumer_map_matches_consumers_of() {
        let p = linear();
        let map = consumer_map(&p);
        for node in p.nodes() {
            assert_eq!(map[&node.id], consumers_of(&p, node.id));
        }
        assert_eq!(map[&NodeId(3)], Vec::<NodeId>::new());
    }

    #[test]
    fn prefix_fallback_used_for_large_plans() {
        // Build a 25-node chain to cross the exhaustive limit.
        let mut b = PlanBuilder::new();
        let mut prev = b
            .add(Operator::ScanLog { log: "t".into() }, vec![])
            .unwrap();
        for i in 0..24 {
            prev = b.add(Operator::Limit { n: 1000 - i }, vec![prev]).unwrap();
        }
        let p = b.finish(prev).unwrap();
        let splits = enumerate_splits(&p);
        assert_eq!(splits.len(), 25);
        assert!(splits.iter().all(|s| s.validate(&p).is_ok()));
    }
}
